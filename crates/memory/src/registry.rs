//! Process identities.
//!
//! The paper's system model (§2.1) is "n sequential processes denoted
//! p₁, p₂, …, pₙ; the integer i is the identity of pᵢ". The
//! starvation-freedom mechanism of Figure 3 indexes a `FLAG[1..n]`
//! array by process identity and rotates a `TURN` token round-robin
//! over `1..n`, so every participating thread must own a distinct
//! identity from a dense range.
//!
//! A [`ProcRegistry`] hands out identities `0..n` as RAII
//! [`ProcToken`]s; dropping a token returns its identity to the pool,
//! so thread pools can rotate through identities safely.

use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A pool of `n` process identities (`0..n`).
///
/// ```
/// use cso_memory::registry::ProcRegistry;
///
/// let registry = ProcRegistry::new(2);
/// let p0 = registry.register().unwrap();
/// let p1 = registry.register().unwrap();
/// assert!(registry.register().is_err()); // pool exhausted
/// assert_ne!(p0.id(), p1.id());
/// drop(p0);
/// let p0_again = registry.register().unwrap(); // identity recycled
/// assert_eq!(p0_again.n(), 2);
/// ```
#[derive(Debug)]
pub struct ProcRegistry {
    n: usize,
    free: Mutex<Vec<usize>>,
}

impl ProcRegistry {
    /// Creates a registry with identities `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Arc<ProcRegistry> {
        assert!(n > 0, "a process registry needs at least one identity");
        // Hand out low ids first: pop from the back of the freelist.
        let free = (0..n).rev().collect();
        Arc::new(ProcRegistry {
            n,
            free: Mutex::new(free),
        })
    }

    /// The number of identities this registry manages (the paper's `n`).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of identities currently available.
    #[must_use]
    pub fn available(&self) -> usize {
        self.free.lock().expect("registry freelist poisoned").len()
    }

    /// Claims an identity.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryFull`] if all `n` identities are in use.
    pub fn register(self: &Arc<ProcRegistry>) -> Result<ProcToken, RegistryFull> {
        let id = self
            .free
            .lock()
            .expect("registry freelist poisoned")
            .pop()
            .ok_or(RegistryFull { n: self.n })?;
        Ok(ProcToken {
            id,
            registry: Arc::clone(self),
        })
    }
}

/// Error returned by [`ProcRegistry::register`] when all identities are
/// taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryFull {
    n: usize,
}

impl fmt::Display for RegistryFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "all {} process identities are in use", self.n)
    }
}

impl Error for RegistryFull {}

/// An owned process identity; returns to the pool on drop.
///
/// The token is `Send` so it can be moved into the thread that will act
/// as process `pᵢ`.
#[derive(Debug)]
pub struct ProcToken {
    id: usize,
    registry: Arc<ProcRegistry>,
}

impl ProcToken {
    /// This process's identity `i ∈ 0..n`.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The `n` of the registry this identity belongs to.
    #[must_use]
    pub fn n(&self) -> usize {
        self.registry.n
    }
}

impl Drop for ProcToken {
    fn drop(&mut self) {
        if let Ok(mut free) = self.registry.free.lock() {
            free.push(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn identities_are_dense_and_distinct() {
        let registry = ProcRegistry::new(4);
        let tokens: Vec<_> = (0..4).map(|_| registry.register().unwrap()).collect();
        let ids: HashSet<usize> = tokens.iter().map(ProcToken::id).collect();
        assert_eq!(ids, (0..4).collect());
        assert_eq!(registry.available(), 0);
    }

    #[test]
    fn exhaustion_yields_error_with_message() {
        let registry = ProcRegistry::new(1);
        let _t = registry.register().unwrap();
        let err = registry.register().unwrap_err();
        assert_eq!(err.to_string(), "all 1 process identities are in use");
    }

    #[test]
    fn drop_recycles_identity() {
        let registry = ProcRegistry::new(2);
        let t0 = registry.register().unwrap();
        let id0 = t0.id();
        drop(t0);
        assert_eq!(registry.available(), 2);
        let again = registry.register().unwrap();
        // Low ids are handed out first, so the recycled id comes back.
        assert_eq!(again.id(), id0);
    }

    #[test]
    fn tokens_move_across_threads() {
        let registry = ProcRegistry::new(2);
        let token = registry.register().unwrap();
        let handle = std::thread::spawn(move || token.id());
        let id = handle.join().unwrap();
        assert!(id < 2);
        assert_eq!(registry.available(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one identity")]
    fn zero_sized_registry_panics() {
        let _ = ProcRegistry::new(0);
    }
}
