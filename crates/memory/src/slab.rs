//! A fixed-capacity concurrent slab with an ABA-safe array freelist.
//!
//! The paper's stack stores 32-bit values directly in registers. To
//! offer `Stack<T>` for arbitrary `T`, `cso-stack` and `cso-queue`
//! store each `T` in a slab slot and run the register algorithm on the
//! 32-bit *handle*. The slab therefore needs exactly two concurrent
//! operations — allocate-and-write and take-and-free — and both must be
//! safe against the ABA problem (§2.2 of the paper), which the freelist
//! head defeats with a tag counter, the same countermeasure the paper
//! applies to `STACK[x]`.
//!
//! Slab bookkeeping accesses are *not* recorded in
//! [`crate::counting`]: the paper's step-complexity claims concern the
//! stack algorithm itself, and experiment E1 measures the direct
//! (`u32`-valued) stack.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

const NONE: u32 = u32::MAX;

struct Slot<T> {
    occupied: AtomicBool,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A fixed-capacity concurrent slab handing out `u32` handles.
///
/// ```
/// use cso_memory::slab::Slab;
///
/// let slab: Slab<String> = Slab::new(8);
/// let h = slab.insert("hello".to_owned()).unwrap();
/// assert_eq!(slab.remove(h).as_deref(), Some("hello"));
/// assert_eq!(slab.remove(h), None); // a handle can be taken once
/// ```
pub struct Slab<T> {
    slots: Box<[Slot<T>]>,
    /// Freelist links: `next[i]` is the slot after `i` on the freelist.
    next: Box<[AtomicU32]>,
    /// Tagged freelist head: high 32 bits tag, low 32 bits slot index.
    head: AtomicU64,
    len: AtomicUsize,
}

// SAFETY: the slab moves owned `T` values between threads (insert on
// one thread, remove on another), which requires `T: Send`. The
// `occupied` flag guarantees exclusive access to a slot's value while
// it is being written or taken, so no `&T` is ever shared: `T: Sync`
// is not required.
unsafe impl<T: Send> Send for Slab<T> {}
unsafe impl<T: Send> Sync for Slab<T> {}

impl<T> Slab<T> {
    /// Creates a slab with room for `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `capacity >= u32::MAX`.
    #[must_use]
    pub fn new(capacity: usize) -> Slab<T> {
        assert!(capacity > 0, "slab capacity must be positive");
        assert!(
            (capacity as u64) < u64::from(u32::MAX),
            "slab capacity must fit in a u32 handle"
        );
        let slots = (0..capacity)
            .map(|_| Slot {
                occupied: AtomicBool::new(false),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        // Initially the freelist threads every slot: 0 → 1 → … → cap-1.
        let next = (0..capacity)
            .map(|i| {
                AtomicU32::new(if i + 1 == capacity {
                    NONE
                } else {
                    (i + 1) as u32
                })
            })
            .collect();
        Slab {
            slots,
            next,
            head: AtomicU64::new(pack(0, 0)),
            len: AtomicUsize::new(0),
        }
    }

    /// Maximum number of values the slab can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of values currently stored (racy snapshot).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// True when the slab holds no values (racy snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stores `value`, returning its handle.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` — handing the value back to the caller —
    /// when the slab is full.
    pub fn insert(&self, value: T) -> Result<u32, T> {
        let Some(idx) = self.alloc() else {
            return Err(value);
        };
        let slot = &self.slots[idx as usize];
        debug_assert!(
            !slot.occupied.load(Ordering::SeqCst),
            "allocated slot marked occupied"
        );
        // SAFETY: `alloc` grants exclusive ownership of slot `idx`
        // until it is freed, so writing the value is unaliased.
        unsafe { (*slot.value.get()).write(value) };
        slot.occupied.store(true, Ordering::SeqCst);
        self.len.fetch_add(1, Ordering::SeqCst);
        Ok(idx)
    }

    /// Takes the value stored under `handle`, if any.
    ///
    /// Each handle yields its value at most once, even when several
    /// threads race on the same handle; losers observe `None`.
    pub fn remove(&self, handle: u32) -> Option<T> {
        let slot = self.slots.get(handle as usize)?;
        if !slot.occupied.swap(false, Ordering::SeqCst) {
            return None;
        }
        // SAFETY: the winning swap above transfers exclusive ownership
        // of the initialized value to this thread; the slot is not on
        // the freelist, so no concurrent insert targets it.
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        self.len.fetch_sub(1, Ordering::SeqCst);
        self.free(handle);
        Some(value)
    }

    /// Pops a slot off the tagged freelist.
    fn alloc(&self) -> Option<u32> {
        loop {
            let head = self.head.load(Ordering::SeqCst);
            let (tag, idx) = unpack(head);
            if idx == NONE {
                return None;
            }
            let next = self.next[idx as usize].load(Ordering::SeqCst);
            // The tag makes a stale `next` harmless: if `idx` was
            // freed and reallocated meanwhile, the tag has moved on
            // and this CAS fails (the ABA countermeasure of §2.2).
            if self
                .head
                .compare_exchange(
                    head,
                    pack(tag.wrapping_add(1), next),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                return Some(idx);
            }
        }
    }

    /// Pushes a slot back onto the tagged freelist.
    fn free(&self, idx: u32) {
        loop {
            let head = self.head.load(Ordering::SeqCst);
            let (tag, old_idx) = unpack(head);
            self.next[idx as usize].store(old_idx, Ordering::SeqCst);
            if self
                .head
                .compare_exchange(
                    head,
                    pack(tag.wrapping_add(1), idx),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                return;
            }
        }
    }
}

impl<T> Drop for Slab<T> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            if slot.occupied.load(Ordering::SeqCst) {
                // SAFETY: `&mut self` means no concurrent access; the
                // occupied flag marks exactly the initialized slots.
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
        }
    }
}

impl<T> fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slab")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

fn pack(tag: u32, idx: u32) -> u64 {
    (u64::from(tag) << 32) | u64::from(idx)
}

fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_then_remove_round_trips() {
        let slab: Slab<Vec<u8>> = Slab::new(4);
        let h = slab.insert(vec![1, 2, 3]).unwrap();
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.remove(h), Some(vec![1, 2, 3]));
        assert!(slab.is_empty());
    }

    #[test]
    fn full_slab_returns_the_value() {
        let slab: Slab<u8> = Slab::new(2);
        let _a = slab.insert(1).unwrap();
        let _b = slab.insert(2).unwrap();
        assert_eq!(slab.insert(3), Err(3));
    }

    #[test]
    fn double_remove_yields_none() {
        let slab: Slab<u8> = Slab::new(2);
        let h = slab.insert(9).unwrap();
        assert_eq!(slab.remove(h), Some(9));
        assert_eq!(slab.remove(h), None);
        assert_eq!(slab.remove(42), None); // out-of-range handle
    }

    #[test]
    fn handles_recycle_after_free() {
        let slab: Slab<u32> = Slab::new(1);
        for i in 0..100 {
            let h = slab.insert(i).unwrap();
            assert_eq!(slab.remove(h), Some(i));
        }
    }

    #[test]
    fn drop_releases_outstanding_values() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let slab: Slab<Counted> = Slab::new(8);
            for _ in 0..5 {
                slab.insert(Counted).unwrap();
            }
            let h = slab.insert(Counted).unwrap();
            slab.remove(h); // 1 drop here
        } // 5 drops here
        assert_eq!(DROPS.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn concurrent_insert_remove_preserves_every_value() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 5_000;
        let slab: Arc<Slab<usize>> = Arc::new(Slab::new(64));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let slab = Arc::clone(&slab);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let v = t * PER_THREAD + i;
                        let h = loop {
                            match slab.insert(v) {
                                Ok(h) => break h,
                                Err(_) => std::thread::yield_now(),
                            }
                        };
                        let got = slab.remove(h).expect("own handle must still hold value");
                        assert_eq!(got, v);
                        total.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), THREADS * PER_THREAD);
        assert!(slab.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Slab::<u8>::new(0);
    }
}
