//! The runtime seam: which world do register accesses execute in?
//!
//! Every counted access in [`crate::reg`] — and every spin-wait in
//! [`crate::backoff`], every probabilistic chaos draw in
//! [`crate::chaos`] — funnels through the [`Runtime`] trait before
//! touching the underlying `std::sync::atomic`. Two implementations
//! exist:
//!
//! * [`StdRuntime`] — the default. Every hook is an empty inline
//!   function, so the compiled code is byte-identical to calling the
//!   atomics directly: zero cost, counted-access totals bit-for-bit
//!   unchanged (the `step_budget` regression tests pin this).
//! * [`ModelRuntime`] — selected by the `model` cargo feature. Every
//!   hook delegates to `cso-sched`'s controlled scheduler: a counted
//!   access becomes a *yield point* where the scheduler decides which
//!   thread performs the next shared-memory step, so exhaustive (or
//!   seeded-random, or replayed) interleavings of the *production*
//!   structures can be explored deterministically.
//!
//! The selection is a compile-time `cfg`, not dynamic dispatch: the
//! [`Active`] alias names whichever runtime the build uses, and the
//! hot paths in `reg` call `Active::before_access(..)` directly. With
//! the feature off there is no branch, no atomic, no function call —
//! nothing.
//!
//! Model hooks are no-ops on threads that are not inside a
//! `cso_sched::Explorer::explore` session, so a `model`-feature build
//! still runs ordinary (non-model) tests correctly — just slower.

use crate::counting::AccessKind;

/// The seam between the registers and the world they execute in.
///
/// Implementations must be zero-sized; the trait exists to give the
/// two worlds one signature, not to be stored or dispatched
/// dynamically.
pub trait Runtime {
    /// Called before every *counted* register access ([`AccessKind`]
    /// says which). Under the model runtime this is the yield point.
    fn before_access(kind: AccessKind);

    /// Called before every *uncounted* peek (`peek`, `write_lazy`).
    /// Uncounted accesses are free in the paper's cost model but still
    /// touch shared memory, so the model runtime schedules them too —
    /// otherwise racy peek-based code would be invisible to the
    /// explorer.
    fn before_peek();

    /// Called by spin loops ([`crate::backoff::Spinner`] and friends)
    /// once per wait iteration. Returns `true` if the runtime absorbed
    /// the wait (the caller should skip its real pause/yield/sleep);
    /// the model runtime marks the thread *yielded* so the scheduler
    /// runs someone else.
    fn spin_hint() -> bool;

    /// Resolves a probabilistic `one_in` chaos draw. `None` means the
    /// runtime has no opinion (std runtime, or a thread outside a
    /// model session) and the caller should use its own RNG; `Some`
    /// is a schedule-deterministic decision recorded in the replay
    /// trace.
    fn chaos_one_in(one_in: u64) -> Option<bool>;

    /// Replaces OS entropy for seeding thread-local RNGs
    /// ([`crate::backoff::XorShift64::from_entropy`]). `None` means
    /// use real entropy; `Some` is a deterministic seed derived from
    /// the model execution's seed and thread id, so replays reseed
    /// identically.
    fn entropy_seed() -> Option<u64>;

    /// A short name for assertions ("std" / "model").
    fn name() -> &'static str;
}

/// The production runtime: straight to `std::sync::atomic`, all hooks
/// compiled away.
pub struct StdRuntime;

impl Runtime for StdRuntime {
    #[inline(always)]
    fn before_access(_kind: AccessKind) {}

    #[inline(always)]
    fn before_peek() {}

    #[inline(always)]
    fn spin_hint() -> bool {
        false
    }

    #[inline(always)]
    fn chaos_one_in(_one_in: u64) -> Option<bool> {
        None
    }

    #[inline(always)]
    fn entropy_seed() -> Option<u64> {
        None
    }

    fn name() -> &'static str {
        "std"
    }
}

/// The model-checking runtime: every hook is a `cso-sched` scheduling
/// decision. Only compiled under the `model` feature.
#[cfg(feature = "model")]
pub struct ModelRuntime;

#[cfg(feature = "model")]
impl Runtime for ModelRuntime {
    #[inline]
    fn before_access(_kind: AccessKind) {
        cso_sched::yield_access();
    }

    #[inline]
    fn before_peek() {
        cso_sched::yield_access();
    }

    #[inline]
    fn spin_hint() -> bool {
        cso_sched::yield_spin()
    }

    #[inline]
    fn chaos_one_in(one_in: u64) -> Option<bool> {
        cso_sched::chaos_draw(one_in)
    }

    #[inline]
    fn entropy_seed() -> Option<u64> {
        cso_sched::entropy_seed()
    }

    fn name() -> &'static str {
        "model"
    }
}

/// The runtime this build uses: [`ModelRuntime`] when the `model`
/// feature is on, [`StdRuntime`] otherwise.
#[cfg(feature = "model")]
pub type Active = ModelRuntime;

/// The runtime this build uses: [`ModelRuntime`] when the `model`
/// feature is on, [`StdRuntime`] otherwise.
#[cfg(not(feature = "model"))]
pub type Active = StdRuntime;

/// The active runtime's name — lets tests assert which world they run
/// in (the `step_budget` suite pins `"std"` for default builds).
#[must_use]
pub fn active_name() -> &'static str {
    Active::name()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_runtime_hooks_are_inert() {
        StdRuntime::before_access(AccessKind::Read);
        StdRuntime::before_peek();
        assert!(!StdRuntime::spin_hint());
        assert_eq!(StdRuntime::chaos_one_in(7), None);
        assert_eq!(StdRuntime::entropy_seed(), None);
        assert_eq!(StdRuntime::name(), "std");
    }

    #[cfg(not(feature = "model"))]
    #[test]
    fn default_build_selects_std() {
        assert_eq!(active_name(), "std");
    }

    #[cfg(feature = "model")]
    #[test]
    fn model_build_selects_model() {
        assert_eq!(active_name(), "model");
        // Outside a session the model hooks fall back to inert.
        assert!(!ModelRuntime::spin_hint());
        assert_eq!(ModelRuntime::chaos_one_in(7), None);
    }
}
