//! Multi-field register words, packed into a single `u64`.
//!
//! The paper's stack uses two register shapes (§3):
//!
//! * `TOP` holds a triple `⟨index, value, seqnb⟩` — "an index (to
//!   address an entry of `STACK`), a value and a counter";
//! * each `STACK[x]` holds a pair `⟨val, sn⟩` — a value and the
//!   sequence number that defeats the ABA problem (§2.2).
//!
//! Hardware `Compare&Swap` operates on machine words, so these triples
//! are bit-packed: 16-bit index, 16-bit sequence tag, 32-bit value. The
//! queue sibling (`cso-queue`) adds `⟨count⟩` and `⟨count, sn, value⟩`
//! words with the same layout discipline.
//!
//! # Tag width
//!
//! A 16-bit tag wraps after 65 536 same-slot operations. An ABA
//! violation requires a thread to stall across *exactly* a multiple of
//! 2¹⁶ operations on one slot and then have its stale CAS win — the
//! classical bounded-tag caveat. The model checker in `cso-explore`
//! runs the same algorithms with unbounded tags, so the logic is
//! validated independently of tag width.
//!
//! # Layout
//!
//! ```text
//! bit 63........32 31........16 15.........0
//!     value (u32)  index (u16)  seq (u16)     TopWord / TailWord
//!     value (u32)  (zero)       seq (u16)     SlotWord
//!     (zero)       (zero)       count (u16)   HeadWord
//! ```

/// The paper's `TOP` register content: `⟨index, value, seqnb⟩`.
///
/// `index` addresses the `STACK` array entry currently at the top,
/// `value` is the element stored there, and `seq` is the sequence
/// number that the pending lazy write will install into
/// `STACK[index]` (§3, "the implementation is lazy").
///
/// ```
/// use cso_memory::packed::TopWord;
/// let w = TopWord { index: 3, value: 0xDEAD_BEEF, seq: 41 };
/// assert_eq!(TopWord::unpack(w.pack()), w);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TopWord {
    /// Index of the top entry in the `STACK` array (0 = empty stack).
    pub index: u16,
    /// Sequence number associated with the pending write of
    /// `STACK[index]`.
    pub seq: u16,
    /// The value at the top of the stack.
    pub value: u32,
}

impl TopWord {
    /// Packs the triple into one `u64` register word.
    #[inline]
    #[must_use]
    pub fn pack(self) -> u64 {
        (u64::from(self.value) << 32) | (u64::from(self.index) << 16) | u64::from(self.seq)
    }

    /// Unpacks a register word produced by [`TopWord::pack`].
    #[inline]
    #[must_use]
    pub fn unpack(word: u64) -> TopWord {
        TopWord {
            value: (word >> 32) as u32,
            index: ((word >> 16) & 0xFFFF) as u16,
            seq: (word & 0xFFFF) as u16,
        }
    }
}

impl From<TopWord> for u64 {
    fn from(w: TopWord) -> u64 {
        w.pack()
    }
}

impl From<u64> for TopWord {
    fn from(word: u64) -> TopWord {
        TopWord::unpack(word)
    }
}

/// A `STACK[x]` (or queue slot) register content: `⟨val, sn⟩`.
///
/// The sequence number `seq` is bumped on every write to the slot, so a
/// stale helper CAS (§3, `help` procedure, lines 15–16) can never
/// resurrect an old value: the ABA countermeasure of §2.2.
///
/// ```
/// use cso_memory::packed::SlotWord;
/// let s = SlotWord { value: 7, seq: 2 };
/// assert_eq!(SlotWord::unpack(s.pack()), s);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SlotWord {
    /// Sequence number of the last write to this slot.
    pub seq: u16,
    /// The value stored in the slot.
    pub value: u32,
}

impl SlotWord {
    /// Packs the pair into one `u64` register word.
    #[inline]
    #[must_use]
    pub fn pack(self) -> u64 {
        (u64::from(self.value) << 32) | u64::from(self.seq)
    }

    /// Unpacks a register word produced by [`SlotWord::pack`].
    #[inline]
    #[must_use]
    pub fn unpack(word: u64) -> SlotWord {
        SlotWord {
            value: (word >> 32) as u32,
            seq: (word & 0xFFFF) as u16,
        }
    }
}

impl From<SlotWord> for u64 {
    fn from(w: SlotWord) -> u64 {
        w.pack()
    }
}

impl From<u64> for SlotWord {
    fn from(word: u64) -> SlotWord {
        SlotWord::unpack(word)
    }
}

/// The queue's `HEAD` register content: a monotone dequeue counter.
///
/// The counter itself is the ABA tag: it increments on every successful
/// dequeue, so a stale CAS on `HEAD` can never succeed. The ring
/// position of the next element to dequeue is `count % capacity`
/// (capacity is a power of two, so the mapping stays consistent across
/// the 2¹⁶ wrap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HeadWord {
    /// Number of completed dequeues, modulo 2¹⁶.
    pub count: u16,
}

impl HeadWord {
    /// Packs the counter into one `u64` register word.
    #[inline]
    #[must_use]
    pub fn pack(self) -> u64 {
        u64::from(self.count)
    }

    /// Unpacks a register word produced by [`HeadWord::pack`].
    #[inline]
    #[must_use]
    pub fn unpack(word: u64) -> HeadWord {
        HeadWord {
            count: (word & 0xFFFF) as u16,
        }
    }
}

impl From<HeadWord> for u64 {
    fn from(w: HeadWord) -> u64 {
        w.pack()
    }
}

impl From<u64> for HeadWord {
    fn from(word: u64) -> HeadWord {
        HeadWord::unpack(word)
    }
}

/// The queue's `TAIL` register content: `⟨count, seq, value⟩`.
///
/// Mirrors [`TopWord`]: `count` is the monotone enqueue counter (ring
/// position `count % capacity` holds the *last enqueued* element),
/// `value` is that element, and `seq` is the sequence number the
/// pending lazy write will install into the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TailWord {
    /// Number of completed enqueues, modulo 2¹⁶.
    pub count: u16,
    /// Sequence number for the pending slot write.
    pub seq: u16,
    /// The value most recently enqueued.
    pub value: u32,
}

impl TailWord {
    /// Packs the triple into one `u64` register word.
    #[inline]
    #[must_use]
    pub fn pack(self) -> u64 {
        (u64::from(self.value) << 32) | (u64::from(self.count) << 16) | u64::from(self.seq)
    }

    /// Unpacks a register word produced by [`TailWord::pack`].
    #[inline]
    #[must_use]
    pub fn unpack(word: u64) -> TailWord {
        TailWord {
            value: (word >> 32) as u32,
            count: ((word >> 16) & 0xFFFF) as u16,
            seq: (word & 0xFFFF) as u16,
        }
    }
}

impl From<TailWord> for u64 {
    fn from(w: TailWord) -> u64 {
        w.pack()
    }
}

impl From<u64> for TailWord {
    fn from(word: u64) -> TailWord {
        TailWord::unpack(word)
    }
}

/// A deque slot: `⟨state, val, sn⟩` — the HLM obstruction-free deque
/// (the paper's ref \[8\]) distinguishes *left-null* (`LN`),
/// *right-null* (`RN`) and data slots, each carrying the usual
/// ABA-defeating sequence number.
///
/// Layout: bits 0–15 seq, bits 16–17 state, bits 32–63 value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DequeWord {
    /// The slot's role.
    pub state: DequeState,
    /// Sequence number of the last write to this slot.
    pub seq: u16,
    /// The value (meaningful only in `Data` slots).
    pub value: u32,
}

/// The role of a deque slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DequeState {
    /// Left null — belongs to the left sentinel block.
    #[default]
    LeftNull = 0,
    /// Right null — belongs to the right sentinel block.
    RightNull = 1,
    /// Holds a value.
    Data = 2,
}

impl DequeWord {
    /// Packs the triple into one `u64` register word.
    #[inline]
    #[must_use]
    pub fn pack(self) -> u64 {
        (u64::from(self.value) << 32) | ((self.state as u64) << 16) | u64::from(self.seq)
    }

    /// Unpacks a register word produced by [`DequeWord::pack`].
    #[inline]
    #[must_use]
    pub fn unpack(word: u64) -> DequeWord {
        let state = match (word >> 16) & 0b11 {
            0 => DequeState::LeftNull,
            1 => DequeState::RightNull,
            _ => DequeState::Data,
        };
        DequeWord {
            state,
            seq: (word & 0xFFFF) as u16,
            value: (word >> 32) as u32,
        }
    }

    /// The same word with the sequence number advanced by one —
    /// the HLM "bump" that serializes neighbouring operations.
    #[inline]
    #[must_use]
    pub fn bumped(self) -> DequeWord {
        DequeWord {
            seq: self.seq.wrapping_add(1),
            ..self
        }
    }
}

impl From<DequeWord> for u64 {
    fn from(w: DequeWord) -> u64 {
        w.pack()
    }
}

impl From<u64> for DequeWord {
    fn from(word: u64) -> DequeWord {
        DequeWord::unpack(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_word_round_trip_extremes() {
        for w in [
            TopWord {
                index: 0,
                seq: 0,
                value: 0,
            },
            TopWord {
                index: u16::MAX,
                seq: u16::MAX,
                value: u32::MAX,
            },
            TopWord {
                index: 1,
                seq: u16::MAX,
                value: 0,
            },
        ] {
            assert_eq!(TopWord::unpack(w.pack()), w);
        }
    }

    #[test]
    fn distinct_fields_occupy_distinct_bits() {
        let base = TopWord {
            index: 0,
            seq: 0,
            value: 0,
        }
        .pack();
        let only_index = TopWord {
            index: 1,
            seq: 0,
            value: 0,
        }
        .pack();
        let only_seq = TopWord {
            index: 0,
            seq: 1,
            value: 0,
        }
        .pack();
        let only_value = TopWord {
            index: 0,
            seq: 0,
            value: 1,
        }
        .pack();
        assert_eq!(base, 0);
        assert_eq!(only_index & only_seq, 0);
        assert_eq!(only_index & only_value, 0);
        assert_eq!(only_seq & only_value, 0);
    }

    #[test]
    fn u64_conversions_match_pack() {
        let w = TopWord {
            index: 9,
            seq: 8,
            value: 7,
        };
        assert_eq!(u64::from(w), w.pack());
        assert_eq!(TopWord::from(w.pack()), w);
        let s = SlotWord { seq: 3, value: 4 };
        assert_eq!(u64::from(s), s.pack());
        assert_eq!(SlotWord::from(s.pack()), s);
    }

    #[test]
    fn deque_word_round_trip_and_bump() {
        for state in [
            DequeState::LeftNull,
            DequeState::RightNull,
            DequeState::Data,
        ] {
            let w = DequeWord {
                state,
                seq: 41,
                value: 7,
            };
            assert_eq!(DequeWord::unpack(w.pack()), w);
            let b = w.bumped();
            assert_eq!(b.seq, 42);
            assert_eq!(b.state, state);
            assert_eq!(b.value, 7);
        }
        // seq wraps
        assert_eq!(
            DequeWord {
                state: DequeState::Data,
                seq: u16::MAX,
                value: 0
            }
            .bumped()
            .seq,
            0
        );
    }

    // Randomized round-trip checks, driven by the in-repo
    // deterministic generator (dependency-free, reproducible).
    const RANDOM_CASES: usize = 2_000;

    fn rng() -> crate::backoff::XorShift64 {
        crate::backoff::XorShift64::new(0xD06F_00D5_EED5)
    }

    #[test]
    fn random_deque_word_round_trip() {
        let mut rng = rng();
        for _ in 0..RANDOM_CASES {
            let state = match rng.next_below(3) {
                0 => DequeState::LeftNull,
                1 => DequeState::RightNull,
                _ => DequeState::Data,
            };
            let w = DequeWord {
                state,
                seq: rng.next_u64() as u16,
                value: rng.next_u64() as u32,
            };
            assert_eq!(DequeWord::unpack(w.pack()), w);
        }
    }

    #[test]
    fn random_top_word_round_trip() {
        let mut rng = rng();
        for _ in 0..RANDOM_CASES {
            let w = TopWord {
                index: rng.next_u64() as u16,
                seq: rng.next_u64() as u16,
                value: rng.next_u64() as u32,
            };
            assert_eq!(TopWord::unpack(w.pack()), w);
        }
    }

    #[test]
    fn random_slot_word_round_trip() {
        let mut rng = rng();
        for _ in 0..RANDOM_CASES {
            let w = SlotWord {
                seq: rng.next_u64() as u16,
                value: rng.next_u64() as u32,
            };
            assert_eq!(SlotWord::unpack(w.pack()), w);
        }
    }

    #[test]
    fn random_tail_word_round_trip() {
        let mut rng = rng();
        for _ in 0..RANDOM_CASES {
            let w = TailWord {
                count: rng.next_u64() as u16,
                seq: rng.next_u64() as u16,
                value: rng.next_u64() as u32,
            };
            assert_eq!(TailWord::unpack(w.pack()), w);
        }
    }

    #[test]
    fn random_head_word_round_trip() {
        let mut rng = rng();
        for _ in 0..RANDOM_CASES {
            let w = HeadWord {
                count: rng.next_u64() as u16,
            };
            assert_eq!(HeadWord::unpack(w.pack()), w);
        }
    }

    #[test]
    fn random_packing_is_injective() {
        let mut rng = rng();
        for _ in 0..RANDOM_CASES {
            let wa = TopWord {
                index: rng.next_u64() as u16,
                seq: rng.next_u64() as u16,
                value: rng.next_u64() as u32,
            };
            // Mix fresh values with near-collisions (sharing fields).
            let wb = match rng.next_below(4) {
                0 => wa,
                1 => TopWord {
                    index: rng.next_u64() as u16,
                    ..wa
                },
                2 => TopWord {
                    seq: rng.next_u64() as u16,
                    ..wa
                },
                _ => TopWord {
                    index: rng.next_u64() as u16,
                    seq: rng.next_u64() as u16,
                    value: rng.next_u64() as u32,
                },
            };
            assert_eq!(wa.pack() == wb.pack(), wa == wb);
        }
    }
}
