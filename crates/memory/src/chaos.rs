//! Fault injection: named fail points threaded through the hot paths.
//!
//! §5 of the paper concedes that the Figure 3 algorithms survive
//! crashes only "if no process crashes while holding the lock". This
//! module is the workbench for probing exactly that class of adverse
//! event in the *real* (threaded) implementations, not just the model
//! checker: hot paths declare named **fail points**
//! (`cso_memory::fail_point!("cs::locked")`), and a test or chaos
//! harness arms them at run time with a [`Fault`]:
//!
//! * [`Fault::Delay`] — sleep, widening race windows;
//! * [`Fault::Yield`] — yield the OS thread, perturbing schedules;
//! * [`Fault::SpuriousAbort`] — make an abortable fast path return ⊥,
//!   simulating pathological contention;
//! * [`Fault::Panic`] — panic mid-operation, simulating a process
//!   crash at the injection site;
//! * [`Fault::StallForever`] — block until [`reset`], simulating the
//!   §5 nightmare: a process that stops while holding the lock.
//!
//! # Cost when disabled
//!
//! The module only exists under the `chaos` cargo feature; without it
//! the [`fail_point!`](crate::fail_point) macro expands to nothing and
//! release builds carry zero overhead. With the feature compiled in
//! but no site armed, a fail point is one relaxed atomic load.
//!
//! # Concurrency semantics
//!
//! Arming, disarming and firing are globally serialized behind a
//! mutex (fail points are a test facility; the fast path above keeps
//! the common case cheap). [`StallForever`] parks *outside* the mutex
//! and re-checks a generation counter, so [`reset`] reliably releases
//! stalled threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::backoff::XorShift64;
use crate::runtime::{Active, Runtime};

/// What an armed fail point injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Sleep for the given duration.
    Delay(Duration),
    /// Yield the OS thread once.
    Yield,
    /// Ask the call site to behave as if the operation aborted (⊥).
    /// Only honored by sites wired with the two-argument form of
    /// [`fail_point!`](crate::fail_point); unit sites ignore it.
    SpuriousAbort,
    /// Panic, unwinding out of the injection site.
    Panic,
    /// Park the calling thread until [`reset`] (or [`disarm`] of this
    /// site). Models a crashed/descheduled-forever process.
    StallForever,
}

/// What the call site should do after a fail point returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Proceed normally.
    Continue,
    /// Behave as if the operation aborted with no effect.
    Abort,
}

/// A full injection plan: the fault plus firing discipline.
#[derive(Debug, Clone, Copy)]
pub struct Plan {
    /// The fault to inject.
    pub fault: Fault,
    /// Skip the first `after` hits of the site.
    pub after: u64,
    /// Fire on one in `one_in` eligible hits (1 = every hit),
    /// pseudo-randomly (deterministic per [`arm_plan`] call order).
    pub one_in: u64,
    /// Disarm the site automatically after this many fires
    /// (`u64::MAX` = unlimited).
    pub max_fires: u64,
}

impl Plan {
    /// Fires on every hit, forever.
    #[must_use]
    pub fn always(fault: Fault) -> Plan {
        Plan {
            fault,
            after: 0,
            one_in: 1,
            max_fires: u64::MAX,
        }
    }

    /// Fires exactly once, on the first hit.
    #[must_use]
    pub fn once(fault: Fault) -> Plan {
        Plan {
            fault,
            after: 0,
            one_in: 1,
            max_fires: 1,
        }
    }

    /// Fires on roughly one in `n` hits, forever.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn one_in(fault: Fault, n: u64) -> Plan {
        assert!(n > 0, "one_in needs a positive ratio");
        Plan {
            fault,
            after: 0,
            one_in: n,
            max_fires: u64::MAX,
        }
    }
}

#[derive(Debug)]
struct Site {
    plan: Plan,
    hits: u64,
    fires: u64,
    rng: XorShift64,
}

#[derive(Debug, Default)]
struct RegistryState {
    sites: HashMap<&'static str, Site>,
    /// Lifetime counters, kept after disarm so tests can assert.
    hits: HashMap<&'static str, u64>,
    fires: HashMap<&'static str, u64>,
    /// When true, every hit is recorded even with no site armed
    /// (coverage tracing).
    tracing: bool,
}

/// Number of armed sites + tracing flag; the fail-point fast path.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Bumped by [`reset`]/[`disarm`]; stalled threads watch it.
static GENERATION: AtomicU64 = AtomicU64::new(0);

static REGISTRY: Mutex<Option<RegistryState>> = Mutex::new(None);

/// Observer invoked (outside the registry lock, before the fault is
/// applied) each time a fail point **fires**. Installed by tracing
/// layers — see `cso_trace::install_chaos_hook` — so a trace can show
/// which fail point caused each poisoning.
static FIRE_HOOK: Mutex<Option<fn(&'static str)>> = Mutex::new(None);

/// Installs (or, with `None`, removes) the global fire observer.
///
/// The hook runs on the firing thread after the plan decides to fire
/// and before the fault is applied, so a `Panic`/`StallForever` fault
/// is still preceded by its hook call. Keep hooks cheap and
/// non-reentrant (they must not hit fail points themselves).
pub fn set_fire_hook(hook: Option<fn(&'static str)>) {
    *FIRE_HOOK.lock().unwrap_or_else(|e| e.into_inner()) = hook;
}

fn with_registry<R>(f: impl FnOnce(&mut RegistryState) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(RegistryState::default))
}

/// Arms `site` with a [`Plan::always`] plan for `fault`.
pub fn arm(site: &'static str, fault: Fault) {
    arm_plan(site, Plan::always(fault));
}

/// Arms `site` with an explicit plan, replacing any previous plan.
pub fn arm_plan(site: &'static str, plan: Plan) {
    with_registry(|reg| {
        let seed = 0xC4A0_5E11 ^ (reg.sites.len() as u64 + 1);
        if reg
            .sites
            .insert(
                site,
                Site {
                    plan,
                    hits: 0,
                    fires: 0,
                    rng: XorShift64::new(seed),
                },
            )
            .is_none()
        {
            ACTIVE.fetch_add(1, Ordering::SeqCst);
        }
    });
}

/// Disarms `site` (stalled threads parked on it resume).
pub fn disarm(site: &'static str) {
    with_registry(|reg| {
        if reg.sites.remove(site).is_some() {
            ACTIVE.fetch_sub(1, Ordering::SeqCst);
        }
    });
    GENERATION.fetch_add(1, Ordering::SeqCst);
}

/// Disarms every site, releases every stalled thread, and clears the
/// lifetime counters. Call between chaos scenarios.
pub fn reset() {
    with_registry(|reg| {
        let armed = reg.sites.len();
        reg.sites.clear();
        reg.hits.clear();
        reg.fires.clear();
        if reg.tracing {
            reg.tracing = false;
            ACTIVE.fetch_sub(1, Ordering::SeqCst);
        }
        ACTIVE.fetch_sub(armed, Ordering::SeqCst);
    });
    GENERATION.fetch_add(1, Ordering::SeqCst);
}

/// Enables/disables coverage tracing: while on, every fail point hit
/// is recorded in the lifetime counters even if the site is not armed.
pub fn set_tracing(on: bool) {
    with_registry(|reg| {
        if reg.tracing != on {
            reg.tracing = on;
            if on {
                ACTIVE.fetch_add(1, Ordering::SeqCst);
            } else {
                ACTIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
    });
}

/// Lifetime hit count of `site` (survives [`disarm`], cleared by
/// [`reset`]).
#[must_use]
pub fn hits(site: &str) -> u64 {
    with_registry(|reg| reg.hits.get(site).copied().unwrap_or(0))
}

/// Lifetime fire count of `site`.
#[must_use]
pub fn fires(site: &str) -> u64 {
    with_registry(|reg| reg.fires.get(site).copied().unwrap_or(0))
}

/// Every site name recorded so far (tracing or armed hits), sorted.
#[must_use]
pub fn seen_sites() -> Vec<&'static str> {
    with_registry(|reg| {
        let mut names: Vec<&'static str> = reg.hits.keys().copied().collect();
        names.sort_unstable();
        names
    })
}

/// The entry point the [`fail_point!`](crate::fail_point) macro calls.
/// Executes the armed fault (if any) and reports what the call site
/// should do.
pub fn hit(site: &'static str) -> Action {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return Action::Continue;
    }
    let fault = with_registry(|reg| {
        if reg.tracing || reg.sites.contains_key(site) {
            *reg.hits.entry(site).or_insert(0) += 1;
        }
        let s = reg.sites.get_mut(site)?;
        s.hits += 1;
        if s.hits <= s.plan.after {
            return None;
        }
        if s.plan.one_in > 1 {
            // Under the model runtime the fire/skip draw is a recorded
            // schedule decision (deterministic, replayable); otherwise
            // it falls back to the site's thread-agnostic RNG.
            let fired = match Active::chaos_one_in(s.plan.one_in) {
                Some(fired) => fired,
                None => s.rng.next_below(s.plan.one_in) == 0,
            };
            if !fired {
                return None;
            }
        }
        s.fires += 1;
        *reg.fires.entry(site).or_insert(0) += 1;
        let fault = s.plan.fault;
        if s.fires >= s.plan.max_fires {
            reg.sites.remove(site);
            ACTIVE.fetch_sub(1, Ordering::SeqCst);
        }
        Some(fault)
    });
    let Some(fault) = fault else {
        return Action::Continue;
    };
    if let Some(hook) = *FIRE_HOOK.lock().unwrap_or_else(|e| e.into_inner()) {
        hook(site);
    }
    match fault {
        Fault::Delay(d) => {
            // Inside a model session a wall-clock sleep is meaningless
            // (and harmful: it stalls the serialized schedule); one
            // spin-hint yields the same "someone else runs first"
            // effect deterministically.
            if !Active::spin_hint() {
                std::thread::sleep(d);
            }
            Action::Continue
        }
        Fault::Yield => {
            if !Active::spin_hint() {
                std::thread::yield_now();
            }
            Action::Continue
        }
        Fault::SpuriousAbort => Action::Abort,
        Fault::Panic => panic!("chaos: injected panic at fail point `{site}`"),
        Fault::StallForever => {
            let generation = GENERATION.load(Ordering::SeqCst);
            while GENERATION.load(Ordering::SeqCst) == generation {
                if !Active::spin_hint() {
                    std::thread::park_timeout(Duration::from_micros(200));
                }
            }
            Action::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests in this module must not
    // run concurrently with each other. Serialize them.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unarmed_site_is_a_noop() {
        let _serial = serial();
        reset();
        assert_eq!(hit("chaos-test::nothing"), Action::Continue);
        assert_eq!(hits("chaos-test::nothing"), 0);
    }

    #[test]
    fn spurious_abort_fires_and_counts() {
        let _serial = serial();
        reset();
        arm("chaos-test::abort", Fault::SpuriousAbort);
        assert_eq!(hit("chaos-test::abort"), Action::Abort);
        assert_eq!(hit("chaos-test::abort"), Action::Abort);
        assert_eq!(hits("chaos-test::abort"), 2);
        assert_eq!(fires("chaos-test::abort"), 2);
        disarm("chaos-test::abort");
        assert_eq!(hit("chaos-test::abort"), Action::Continue);
        // Lifetime counters survive disarm.
        assert_eq!(fires("chaos-test::abort"), 2);
        reset();
    }

    #[test]
    fn once_plan_self_disarms() {
        let _serial = serial();
        reset();
        arm_plan("chaos-test::once", Plan::once(Fault::SpuriousAbort));
        assert_eq!(hit("chaos-test::once"), Action::Abort);
        assert_eq!(hit("chaos-test::once"), Action::Continue);
        assert_eq!(fires("chaos-test::once"), 1);
        reset();
    }

    #[test]
    fn after_skips_early_hits() {
        let _serial = serial();
        reset();
        arm_plan(
            "chaos-test::after",
            Plan {
                fault: Fault::SpuriousAbort,
                after: 2,
                one_in: 1,
                max_fires: u64::MAX,
            },
        );
        assert_eq!(hit("chaos-test::after"), Action::Continue);
        assert_eq!(hit("chaos-test::after"), Action::Continue);
        assert_eq!(hit("chaos-test::after"), Action::Abort);
        reset();
    }

    #[test]
    fn one_in_fires_a_fraction() {
        let _serial = serial();
        reset();
        arm_plan("chaos-test::ratio", Plan::one_in(Fault::SpuriousAbort, 4));
        let mut aborts = 0;
        for _ in 0..4_000 {
            if hit("chaos-test::ratio") == Action::Abort {
                aborts += 1;
            }
        }
        assert!(
            (500..=1_500).contains(&aborts),
            "one_in(4) fired {aborts}/4000 times"
        );
        reset();
    }

    #[test]
    fn panic_fault_panics_at_the_site() {
        let _serial = serial();
        reset();
        arm_plan("chaos-test::panic", Plan::once(Fault::Panic));
        let result = std::panic::catch_unwind(|| hit("chaos-test::panic"));
        assert!(result.is_err());
        // Self-disarmed after one fire: safe to hit again.
        assert_eq!(hit("chaos-test::panic"), Action::Continue);
        reset();
    }

    #[test]
    fn stall_forever_is_released_by_reset() {
        let _serial = serial();
        reset();
        arm("chaos-test::stall", Fault::StallForever);
        let stalled = std::thread::spawn(|| {
            hit("chaos-test::stall");
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!stalled.is_finished(), "thread must be stalled");
        reset();
        stalled.join().expect("reset must release the stall");
    }

    #[test]
    fn fire_hook_sees_fires_not_mere_hits() {
        let _serial = serial();
        reset();
        static HOOKED: AtomicU64 = AtomicU64::new(0);
        set_fire_hook(Some(|site| {
            assert_eq!(site, "chaos-test::hooked");
            HOOKED.fetch_add(1, Ordering::SeqCst);
        }));
        arm_plan(
            "chaos-test::hooked",
            Plan {
                fault: Fault::Yield,
                after: 1,
                one_in: 1,
                max_fires: u64::MAX,
            },
        );
        let _ = hit("chaos-test::hooked"); // skipped by `after`
        let _ = hit("chaos-test::hooked"); // fires
        assert_eq!(HOOKED.load(Ordering::SeqCst), 1);
        set_fire_hook(None);
        let _ = hit("chaos-test::hooked");
        assert_eq!(HOOKED.load(Ordering::SeqCst), 1, "hook removed");
        reset();
    }

    #[test]
    fn tracing_records_unarmed_hits() {
        let _serial = serial();
        reset();
        set_tracing(true);
        let _ = hit("chaos-test::traced");
        assert_eq!(hits("chaos-test::traced"), 1);
        assert!(seen_sites().contains(&"chaos-test::traced"));
        reset();
    }
}
