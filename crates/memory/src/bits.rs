//! Values storable directly in the paper's packed registers.
//!
//! The `value` field of [`crate::packed::TopWord`] / `SlotWord` /
//! `TailWord` is 32 bits; [`Bits32`] is the lossless encoding contract
//! for payloads stored there. `cso-stack` re-exports it as
//! `Bits32` and `cso-queue` as `QueueValue`.

/// A value that fits in the 32-bit `value` field of the paper's
/// packed registers (`TOP`, `STACK[x]`, `TAIL`; see [`crate::packed`]).
///
/// # Law
///
/// `from_bits(to_bits(v)) == v` for every `v` — the encoding must be
/// lossless. The property tests in this module check it for all
/// provided implementations.
///
/// For payloads that do not fit (boxes, strings, structs), use the
/// indirect containers (`cso_stack::IndirectStack`,
/// `cso_queue::IndirectQueue`), which store the payload in a
/// [`crate::slab::Slab`] and run the register algorithm on the 32-bit
/// handle.
///
/// ```
/// use cso_memory::bits::Bits32;
/// assert_eq!(i32::from_bits((-5i32).to_bits()), -5);
/// ```
pub trait Bits32: Copy + Send + Sync + 'static {
    /// Encodes the value into the register's 32-bit payload field.
    fn to_bits(self) -> u32;

    /// Decodes a value previously produced by [`Bits32::to_bits`].
    fn from_bits(bits: u32) -> Self;
}

impl Bits32 for u32 {
    fn to_bits(self) -> u32 {
        self
    }

    fn from_bits(bits: u32) -> u32 {
        bits
    }
}

impl Bits32 for i32 {
    fn to_bits(self) -> u32 {
        self as u32
    }

    fn from_bits(bits: u32) -> i32 {
        bits as i32
    }
}

impl Bits32 for u16 {
    fn to_bits(self) -> u32 {
        u32::from(self)
    }

    fn from_bits(bits: u32) -> u16 {
        bits as u16
    }
}

impl Bits32 for i16 {
    fn to_bits(self) -> u32 {
        self as u16 as u32
    }

    fn from_bits(bits: u32) -> i16 {
        bits as u16 as i16
    }
}

impl Bits32 for u8 {
    fn to_bits(self) -> u32 {
        u32::from(self)
    }

    fn from_bits(bits: u32) -> u8 {
        bits as u8
    }
}

impl Bits32 for i8 {
    fn to_bits(self) -> u32 {
        self as u8 as u32
    }

    fn from_bits(bits: u32) -> i8 {
        bits as u8 as i8
    }
}

impl Bits32 for bool {
    fn to_bits(self) -> u32 {
        u32::from(self)
    }

    fn from_bits(bits: u32) -> bool {
        bits != 0
    }
}

impl Bits32 for char {
    fn to_bits(self) -> u32 {
        self as u32
    }

    fn from_bits(bits: u32) -> char {
        // Bits produced by `to_bits` are always a valid scalar value;
        // tolerate foreign bits by mapping to the replacement char.
        char::from_u32(bits).unwrap_or(char::REPLACEMENT_CHARACTER)
    }
}

impl Bits32 for f32 {
    fn to_bits(self) -> u32 {
        f32::to_bits(self)
    }

    fn from_bits(bits: u32) -> f32 {
        f32::from_bits(bits)
    }
}

impl Bits32 for () {
    fn to_bits(self) -> u32 {
        0
    }

    fn from_bits(_bits: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trips<V: Bits32 + PartialEq + std::fmt::Debug>(v: V) {
        assert_eq!(V::from_bits(v.to_bits()), v);
    }

    #[test]
    fn extremes_round_trip() {
        round_trips(u32::MAX);
        round_trips(i32::MIN);
        round_trips(i32::MAX);
        round_trips(u16::MAX);
        round_trips(i16::MIN);
        round_trips(u8::MAX);
        round_trips(i8::MIN);
        round_trips(true);
        round_trips(false);
        round_trips('\u{10FFFF}');
        round_trips(f32::NEG_INFINITY);
        round_trips(());
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let nan = f32::NAN;
        assert_eq!(
            f32::from_bits(Bits32::to_bits(nan)).to_bits(),
            nan.to_bits()
        );
    }

    #[test]
    fn random_values_round_trip() {
        let mut rng = crate::backoff::XorShift64::new(0xB175);
        for _ in 0..2_000 {
            let raw = rng.next_u64() as u32;
            round_trips(raw);
            round_trips(raw as i32);
            round_trips(raw as u16 as i16);
            round_trips(raw as u8);
            if let Some(c) = char::from_u32(raw % 0x11_0000) {
                round_trips(c);
            }
            let f = f32::from_bits(raw);
            if !f.is_nan() {
                round_trips(f);
            }
        }
    }
}
