//! Spin/backoff helpers for retry loops and contention managers.
//!
//! The paper's Figure 2 turns the abortable stack into a non-blocking
//! one with a bare `repeat … until res ≠ ⊥` loop. A practical
//! implementation inserts backoff between retries to reduce CAS
//! contention; `cso-core`'s contention managers are built from the
//! pieces here.

use std::hint;
use std::thread;
use std::time::{Duration, Instant};

use crate::runtime::{Active, Runtime};

/// A point in time a wait loop must not spin past.
///
/// The paper's waits (Figure 3 line 05, the line-08 retry loop, every
/// lock acquisition) are unbounded: if the awaited process stalls
/// forever — the §5 crash caveat — so does the waiter. A `Deadline`
/// bounds that: deadline-aware loops poll [`Deadline::expired`] and
/// bail out with a timeout the caller can handle.
///
/// ```
/// use cso_memory::backoff::Deadline;
/// use std::time::Duration;
///
/// let d = Deadline::after(Duration::from_millis(5));
/// assert!(!d.expired() || d.remaining().is_none());
/// assert!(Deadline::NEVER.remaining().is_none() || true);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    /// `None` = never expires.
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires (waits degrade to unbounded).
    pub const NEVER: Deadline = Deadline { at: None };

    /// A deadline `timeout` from now.
    #[must_use]
    pub fn after(timeout: Duration) -> Deadline {
        Deadline {
            at: Instant::now().checked_add(timeout),
        }
    }

    /// A deadline at an absolute instant.
    #[must_use]
    pub fn at(instant: Instant) -> Deadline {
        Deadline { at: Some(instant) }
    }

    /// Whether the deadline has passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        match self.at {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// Time left, or `None` when unbounded; `Some(ZERO)` once expired.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

/// A deterministic xorshift64* pseudo-random generator.
///
/// Used for backoff jitter and for the elimination stack's slot
/// selection. Not cryptographic; deliberately dependency-free so the
/// core crates stay `std`-only.
///
/// ```
/// use cso_memory::backoff::XorShift64;
/// let mut rng = XorShift64::new(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// assert!(rng.next_below(10) < 10);
/// ```
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (a zero seed is remapped to a
    /// fixed non-zero constant, since xorshift has a fixed point at 0).
    #[must_use]
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Creates a generator seeded from the current thread and time —
    /// or, inside a model-runtime session, from the session's
    /// deterministic entropy (so replayed schedules reseed
    /// identically).
    #[must_use]
    pub fn from_entropy() -> XorShift64 {
        if let Some(seed) = Active::entropy_seed() {
            return XorShift64::new(seed);
        }
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        let mut hasher = RandomState::new().build_hasher();
        hasher.write_u64(0xC0FF_EE00);
        XorShift64::new(hasher.finish())
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a pseudo-random value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

/// Exponential spin backoff with an eventual yield to the scheduler.
///
/// Modeled on the classical TTAS backoff: spin `2^k` pause
/// instructions, doubling up to a cap, then start yielding the OS
/// thread so oversubscribed runs still make progress.
///
/// ```
/// use cso_memory::backoff::Backoff;
/// let mut b = Backoff::new();
/// for _ in 0..4 {
///     b.spin(); // grows 1, 2, 4, 8 pauses
/// }
/// b.reset();
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Spins below this exponent; yields the thread at or above it.
    pub const YIELD_THRESHOLD: u32 = 10;
    /// The exponent stops growing here (2¹⁶ pauses max — with yields).
    pub const MAX_STEP: u32 = 16;

    /// Creates a fresh backoff at the shortest delay.
    #[must_use]
    pub fn new() -> Backoff {
        Backoff { step: 0 }
    }

    /// Resets to the shortest delay (call after a successful operation).
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// True once the backoff has escalated to yielding the thread.
    #[must_use]
    pub fn is_yielding(&self) -> bool {
        self.step >= Self::YIELD_THRESHOLD
    }

    /// Waits for the current delay and doubles it (up to the cap).
    pub fn spin(&mut self) {
        if Active::spin_hint() {
            // A model session absorbed the wait (and marked this
            // thread as busy-waiting); the delay still escalates so
            // `is_yielding` behaves identically.
            if self.step < Self::MAX_STEP {
                self.step += 1;
            }
            return;
        }
        if self.step < Self::YIELD_THRESHOLD {
            for _ in 0..(1u32 << self.step) {
                hint::spin_loop();
            }
        } else {
            thread::yield_now();
        }
        if self.step < Self::MAX_STEP {
            self.step += 1;
        }
    }

    /// Like [`Backoff::spin`] but randomizes the spin count in
    /// `[1, 2^step]`, decorrelating threads that failed together.
    pub fn spin_jittered(&mut self, rng: &mut XorShift64) {
        if Active::spin_hint() {
            if self.step < Self::MAX_STEP {
                self.step += 1;
            }
            return;
        }
        if self.step < Self::YIELD_THRESHOLD {
            let max = 1u64 << self.step;
            for _ in 0..=rng.next_below(max) {
                hint::spin_loop();
            }
        } else {
            thread::yield_now();
        }
        if self.step < Self::MAX_STEP {
            self.step += 1;
        }
    }
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff::new()
    }
}

/// A cooperative wait-loop helper: busy-spins a handful of iterations
/// (cheap when the awaited condition flips quickly on another core),
/// then starts yielding the OS thread (essential when cores are scarce
/// — a pure spinner would burn its whole quantum while the thread it
/// waits for is descheduled).
///
/// Use one `Spinner` per wait loop:
///
/// ```
/// use cso_memory::backoff::Spinner;
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// let ready = AtomicBool::new(true);
/// let mut spinner = Spinner::new();
/// while !ready.load(Ordering::Acquire) {
///     spinner.spin();
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Spinner {
    count: u32,
}

impl Spinner {
    /// Busy-spin iterations before the first yield.
    pub const SPIN_LIMIT: u32 = 64;

    /// Creates a fresh spinner.
    #[must_use]
    pub fn new() -> Spinner {
        Spinner { count: 0 }
    }

    /// Waits one step: a pause instruction for the first
    /// [`Spinner::SPIN_LIMIT`] calls, a `thread::yield_now` after.
    pub fn spin(&mut self) {
        if Active::spin_hint() {
            return;
        }
        if self.count < Self::SPIN_LIMIT {
            self.count += 1;
            hint::spin_loop();
        } else {
            thread::yield_now();
        }
    }

    /// Deadline-aware wait step: like [`Spinner::spin`], but returns
    /// `false` — without waiting — once `deadline` has expired.
    /// Checking *before* waiting keeps the first call of an
    /// already-expired deadline from burning a yield.
    ///
    /// ```
    /// use cso_memory::backoff::{Deadline, Spinner};
    /// use std::time::Duration;
    ///
    /// let deadline = Deadline::after(Duration::from_millis(1));
    /// let mut spinner = Spinner::new();
    /// while spinner.spin_deadline(deadline) {
    ///     // ... re-check the awaited condition ...
    /// }
    /// assert!(deadline.expired());
    /// ```
    pub fn spin_deadline(&mut self, deadline: Deadline) -> bool {
        if deadline.expired() {
            return false;
        }
        self.spin();
        true
    }
}

impl Default for Spinner {
    fn default() -> Spinner {
        Spinner::new()
    }
}

/// A failure-history-driven CAS contention manager, after Dice,
/// Hendler & Mirsky's *Lightweight Contention Management for Efficient
/// Compare-and-Swap Operations*.
///
/// Unlike [`Backoff`], which forgets everything once its loop ends, a
/// `CasBackoff` is meant to live across operations (one per thread):
/// its *level* is a running estimate of how contended this thread's
/// CAS targets have recently been. Each failure raises the level
/// (multiplicative increase in the waiting window), each success
/// lowers it by one step (slow decay — the history is the point), and
/// [`CasBackoff::wait`] sleeps a jittered interval drawn from the
/// current window **before** the next attempt, so threads that failed
/// together don't collide again. At high levels the wait yields the
/// OS thread once first, keeping oversubscribed runs live.
///
/// ```
/// use cso_memory::backoff::CasBackoff;
/// let mut cm = CasBackoff::new(42);
/// cm.wait(); // level 0: free
/// cm.on_failure();
/// cm.on_failure();
/// assert_eq!(cm.level(), 2);
/// cm.wait(); // a jittered 1..=4 pause window
/// cm.on_success();
/// assert_eq!(cm.level(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CasBackoff {
    level: u32,
    rng: XorShift64,
}

impl CasBackoff {
    /// The level (and thus the window, `2^level` pauses) stops growing
    /// here.
    pub const MAX_LEVEL: u32 = 10;
    /// At or above this level, [`CasBackoff::wait`] yields the OS
    /// thread once before spinning.
    pub const YIELD_LEVEL: u32 = 8;

    /// A manager with empty history, seeded for jitter.
    #[must_use]
    pub fn new(seed: u64) -> CasBackoff {
        CasBackoff {
            level: 0,
            rng: XorShift64::new(seed),
        }
    }

    /// A manager with empty history, jitter-seeded from entropy —
    /// the per-thread constructor.
    #[must_use]
    pub fn from_entropy() -> CasBackoff {
        CasBackoff {
            level: 0,
            rng: XorShift64::from_entropy(),
        }
    }

    /// The current contention estimate (0 = uncontended).
    #[must_use]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Records a failed CAS (or aborted weak operation): the next
    /// [`CasBackoff::wait`] window doubles, up to the cap.
    pub fn on_failure(&mut self) {
        self.level = (self.level + 1).min(Self::MAX_LEVEL);
    }

    /// Records a successful CAS: the window halves one step. The decay
    /// is deliberately slower than [`Backoff::reset`] — a thread that
    /// just fought for a line will likely fight for it again.
    pub fn on_success(&mut self) {
        self.level = self.level.saturating_sub(1);
    }

    /// Waits a jittered interval in `[1, 2^level]` pause instructions
    /// (free at level 0), yielding once first at high levels. Call
    /// *before* retrying the CAS.
    pub fn wait(&mut self) {
        // Model sessions hint unconditionally — the manager's level is
        // per-thread state that survives across explored schedules, so
        // a level-dependent yield would make replays of the same
        // schedule prefix diverge.
        if Active::spin_hint() {
            return;
        }
        if self.level == 0 {
            return;
        }
        if self.level >= Self::YIELD_LEVEL {
            thread::yield_now();
        }
        let window = 1u64 << self.level;
        for _ in 0..=self.rng.next_below(window) {
            hint::spin_loop();
        }
    }

    /// Forgets the failure history (level back to 0).
    pub fn reset(&mut self) {
        self.level = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xorshift_zero_seed_is_remapped() {
        let mut rng = XorShift64::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = XorShift64::new(123);
        for bound in [1u64, 2, 3, 17, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn xorshift_covers_residues() {
        // Sanity: over 1000 draws mod 8, every residue appears.
        let mut rng = XorShift64::new(99);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[(rng.next_u64() % 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn backoff_escalates_to_yield_and_caps() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..Backoff::YIELD_THRESHOLD {
            b.spin();
        }
        assert!(b.is_yielding());
        for _ in 0..40 {
            b.spin(); // must not overflow past MAX_STEP
        }
        b.reset();
        assert!(!b.is_yielding());
    }

    #[test]
    fn deadline_expires_and_reports_remaining() {
        let d = Deadline::after(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert!(!Deadline::NEVER.expired());
        assert_eq!(Deadline::NEVER.remaining(), None);
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn spin_deadline_refuses_after_expiry() {
        let expired = Deadline::at(Instant::now());
        let mut spinner = Spinner::new();
        assert!(!spinner.spin_deadline(expired));
        let mut spins = 0u32;
        let live = Deadline::after(Duration::from_millis(2));
        let mut spinner = Spinner::new();
        while spinner.spin_deadline(live) {
            spins += 1;
            assert!(spins < 100_000_000, "deadline never fired");
        }
        assert!(live.expired());
    }

    #[test]
    fn cas_backoff_tracks_failure_history() {
        let mut cm = CasBackoff::new(9);
        assert_eq!(cm.level(), 0);
        cm.wait(); // level 0 must be free (returns immediately)
        for _ in 0..3 {
            cm.on_failure();
        }
        assert_eq!(cm.level(), 3);
        cm.wait();
        // Slow decay: one success undoes one failure, not all of them.
        cm.on_success();
        assert_eq!(cm.level(), 2);
        for _ in 0..100 {
            cm.on_failure();
        }
        assert_eq!(cm.level(), CasBackoff::MAX_LEVEL, "level must cap");
        cm.wait(); // yield-level wait still terminates promptly
        cm.reset();
        assert_eq!(cm.level(), 0);
    }

    #[test]
    fn jittered_backoff_advances() {
        let mut b = Backoff::new();
        let mut rng = XorShift64::new(5);
        for _ in 0..20 {
            b.spin_jittered(&mut rng);
        }
        assert!(b.is_yielding());
    }
}
