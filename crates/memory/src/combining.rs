//! Publication records for a flat-combining slow path.
//!
//! Flat combining (Hendler, Incze, Shavit & Tzafrir) replaces the
//! one-at-a-time lock queue with a *publication list*: a contended
//! operation writes a request into its own cache-padded record and
//! spins locally; whichever thread wins the lock becomes the
//! **combiner** and applies every pending request in one lock tenure,
//! writing results back through the records. This module provides the
//! record and its handoff protocol; the combining loop itself lives in
//! `cso-core`.
//!
//! # The handoff protocol
//!
//! Each record is owned by exactly one posting process and moves
//! through a small status machine:
//!
//! ```text
//!           post                try_claim            complete
//! EMPTY ──────────▶ POSTED ──────────────▶ CLAIMED ──────────▶ DONE
//!   ▲                  │                      │                  │
//!   │   try_retract    │                      │ poison           │ take_response
//!   ◀──────────────────┘                      ▼                  │
//!   ▲                                     POISONED               │
//!   │              reclaim_poisoned           │                  │
//!   ◀─────────────────────────────────────────┴──────────────────┘
//! ```
//!
//! * the **owner** performs `post`, `try_retract`, `take_response` and
//!   `reclaim_poisoned`;
//! * the **combiner** (any thread holding the slow-path lock) performs
//!   `try_claim`, then exactly one of `complete` or `poison`.
//!
//! `POISONED` is the crash-mid-batch story: a combiner that unwinds
//! while a claim is in flight marks the record poisoned *before*
//! releasing the lock, so the owner — who cannot tell a slow combiner
//! from a dead one — observes a terminal state, reclaims the record,
//! and retries cleanly. The poisoned operation was never applied.
//!
//! `TOMBSTONE` is the crash-*of-the-owner* story, the dual of
//! `POISONED`: a combiner that finds a `POSTED` record whose owner is
//! suspected dead (see [`crate::liveness`]) retires it with
//! [`PubRecord::try_tombstone_posted`] **without applying it**, so a
//! dead process's request can never be applied with nobody to receive
//! the response. Tombstone-without-apply is what keeps exactly-once
//! intact under *false* suspicion: a live owner that was merely slow
//! observes `TOMBSTONE` (a terminal state), reclaims the record with
//! [`PubRecord::reclaim_tombstone`], and reposts — its operation was
//! applied zero times so far, never two.
//!
//! # Memory safety
//!
//! The record stores the operation as a raw pointer into the owner's
//! stack frame. This is sound because the owner's `post` is `unsafe`
//! with the contract that the owner does not exit the frame until the
//! record reaches a terminal state it consumes (`DONE` via
//! [`PubRecord::take_response`], `POISONED` via
//! [`PubRecord::reclaim_poisoned`], or a successful
//! [`PubRecord::try_retract`]). All status transitions publish with
//! `Release` and observe with `Acquire`, so the pointer write is
//! visible to the claimer and the response write is visible to the
//! owner.
//!
//! Statuses live in plain (uncounted) atomics: the publication list is
//! an engineering substrate, not part of the paper's shared-memory
//! footprint, so it must not perturb the step-count experiments the
//! [`crate::reg`] registers feed.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};

const EMPTY: u32 = 0;
const POSTED: u32 = 1;
const CLAIMED: u32 = 2;
const DONE: u32 = 3;
const POISONED: u32 = 4;
const TOMBSTONE: u32 = 5;

/// Pads and aligns `T` to 128 bytes so adjacent values never share a
/// cache line (128 covers the spatial-prefetcher pairs on x86 and the
/// 128-byte lines of some arm64 parts).
///
/// Publication records are written by their owner and scanned by the
/// combiner; without padding, one waiter's local spin would false-share
/// with its neighbours' handoffs.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// The externally observable status of a [`PubRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordState {
    /// Owned by the poster; no request pending.
    Empty,
    /// A request is published and waiting for a combiner.
    Posted,
    /// A combiner holds the claim and is applying the request.
    Claimed,
    /// The response is ready for the owner.
    Done,
    /// The claiming combiner unwound before applying the request; the
    /// owner must reclaim and retry.
    Poisoned,
    /// A combiner retired the request *unapplied* because the owner
    /// was suspected dead. A falsely suspected owner reclaims with
    /// [`PubRecord::reclaim_tombstone`] and reposts.
    Tombstone,
}

/// The helper stamp a fresh [`PubRecord`] carries: "nobody". Matches
/// `cso_trace::NO_TID` so the value flows straight into causal-edge
/// probe payloads (this crate cannot depend on cso-trace — the chaos
/// hook points the other way — so the sentinel is duplicated here).
pub const NO_HELPER: u32 = u32::MAX;

/// One publication record: a single-producer mailbox through which a
/// contended operation is handed to a combiner and its response handed
/// back. See the module docs for the protocol and its safety argument.
#[derive(Debug)]
pub struct PubRecord<Op, Resp> {
    status: AtomicU32,
    /// Trace thread id of the combiner that last completed this
    /// record, [`NO_HELPER`] initially. An uncounted engineering-side
    /// stamp (like `status`): never part of the paper's step budgets.
    helper: AtomicU32,
    op: UnsafeCell<*const Op>,
    resp: UnsafeCell<Option<Resp>>,
}

// SAFETY: the status machine hands exclusive access around — the owner
// touches `op`/`resp` only in EMPTY/DONE/POISONED, the claimer only in
// CLAIMED — and every transition pairs a Release store with an Acquire
// load. The claimer dereferences the posted `&Op` on its own thread
// (`Op: Sync`) and moves the response across to the owner
// (`Resp: Send`).
unsafe impl<Op: Sync, Resp: Send> Send for PubRecord<Op, Resp> {}
// SAFETY: as above.
unsafe impl<Op: Sync, Resp: Send> Sync for PubRecord<Op, Resp> {}

impl<Op, Resp> PubRecord<Op, Resp> {
    /// Creates an empty record.
    #[must_use]
    pub fn new() -> PubRecord<Op, Resp> {
        PubRecord {
            status: AtomicU32::new(EMPTY),
            helper: AtomicU32::new(NO_HELPER),
            op: UnsafeCell::new(std::ptr::null()),
            resp: UnsafeCell::new(None),
        }
    }

    /// The current status (an `Acquire` load, so a `Done` observation
    /// licenses [`PubRecord::take_response`]).
    #[must_use]
    pub fn state(&self) -> RecordState {
        match self.status.load(Ordering::Acquire) {
            EMPTY => RecordState::Empty,
            POSTED => RecordState::Posted,
            CLAIMED => RecordState::Claimed,
            DONE => RecordState::Done,
            TOMBSTONE => RecordState::Tombstone,
            _ => RecordState::Poisoned,
        }
    }

    /// Publishes a request (owner side): `EMPTY → POSTED`.
    ///
    /// # Safety
    ///
    /// The caller must be the record's owner, the record must be
    /// `EMPTY`, and `op` must stay valid until the caller consumes a
    /// terminal state: a successful [`PubRecord::try_retract`], or a
    /// [`PubRecord::take_response`] / [`PubRecord::reclaim_poisoned`]
    /// after observing `Done` / `Poisoned`. In practice: post a
    /// reference to a local, then block in this frame until then.
    ///
    /// # Panics
    ///
    /// Panics if the record is not `EMPTY` (a protocol violation).
    pub unsafe fn post(&self, op: *const Op) {
        assert_eq!(
            self.status.load(Ordering::Relaxed),
            EMPTY,
            "post on a non-empty publication record"
        );
        // SAFETY: EMPTY means no claimer can touch the cell, and the
        // caller guarantees owner-exclusivity.
        unsafe { *self.op.get() = op };
        self.status.store(POSTED, Ordering::Release);
    }

    /// Attempts to withdraw an unclaimed request (owner side):
    /// `POSTED → EMPTY`. Returns `false` if a combiner got there first
    /// — the owner must then wait for a terminal state.
    pub fn try_retract(&self) -> bool {
        self.status
            .compare_exchange(POSTED, EMPTY, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Attempts to claim a pending request (combiner side):
    /// `POSTED → CLAIMED`. On success returns the posted operation
    /// pointer, which is valid to dereference until the claim is
    /// resolved by [`PubRecord::complete`] or [`PubRecord::poison`].
    #[must_use]
    pub fn try_claim(&self) -> Option<*const Op> {
        self.status
            .compare_exchange(POSTED, CLAIMED, Ordering::AcqRel, Ordering::Relaxed)
            .ok()?;
        // SAFETY: the successful CAS acquired the POSTED publication,
        // and CLAIMED grants this thread exclusive cell access.
        Some(unsafe { *self.op.get() })
    }

    /// Stamps the combiner's identity (a trace thread id) onto the
    /// record, to be read back by the owner after it observes `Done`.
    /// Call while holding the claim, before [`PubRecord::complete`]:
    /// the `Release` store in `complete` then publishes the stamp
    /// together with the response. A plain (uncounted) store — causal
    /// attribution must not perturb the step audit.
    pub fn stamp_helper(&self, tid: u32) {
        self.helper.store(tid, Ordering::Relaxed);
    }

    /// The identity stamped by the combiner that last completed this
    /// record ([`NO_HELPER`] if none ever did). Meaningful to the
    /// owner only after observing `Done` — the `Acquire` load in
    /// [`PubRecord::state`] makes the claimer's stamp visible.
    #[must_use]
    pub fn helper(&self) -> u32 {
        self.helper.load(Ordering::Relaxed)
    }

    /// Delivers the response (combiner side): `CLAIMED → DONE`.
    ///
    /// # Panics
    ///
    /// Panics if the record is not `CLAIMED` (a protocol violation).
    pub fn complete(&self, resp: Resp) {
        assert_eq!(
            self.status.load(Ordering::Relaxed),
            CLAIMED,
            "complete on an unclaimed publication record"
        );
        // SAFETY: CLAIMED grants the claimer exclusive cell access.
        unsafe { *self.resp.get() = Some(resp) };
        self.status.store(DONE, Ordering::Release);
    }

    /// Abandons a claim without applying it (combiner side, unwind
    /// path): `CLAIMED → POISONED`. The owner will reclaim and retry.
    ///
    /// # Panics
    ///
    /// Panics if the record is not `CLAIMED` (a protocol violation).
    pub fn poison(&self) {
        assert_eq!(
            self.status.load(Ordering::Relaxed),
            CLAIMED,
            "poison on an unclaimed publication record"
        );
        self.status.store(POISONED, Ordering::Release);
    }

    /// Takes the delivered response (owner side): `DONE → EMPTY`.
    /// Call only after [`PubRecord::state`] returned
    /// [`RecordState::Done`].
    ///
    /// # Panics
    ///
    /// Panics if the record is not `DONE` (a protocol violation).
    #[must_use]
    pub fn take_response(&self) -> Resp {
        assert_eq!(
            self.status.load(Ordering::Acquire),
            DONE,
            "take_response before completion"
        );
        // SAFETY: DONE returns exclusive cell access to the owner.
        let resp = unsafe { (*self.resp.get()).take() };
        self.status.store(EMPTY, Ordering::Release);
        resp.expect("DONE record carries a response")
    }

    /// Reclaims a poisoned record (owner side): `POISONED → EMPTY`.
    /// The request was **not** applied; the owner may repost it.
    ///
    /// # Panics
    ///
    /// Panics if the record is not `POISONED` (a protocol violation).
    pub fn reclaim_poisoned(&self) {
        assert_eq!(
            self.status.load(Ordering::Acquire),
            POISONED,
            "reclaim on an unpoisoned publication record"
        );
        self.status.store(EMPTY, Ordering::Release);
    }

    /// Retires a pending request **without applying it** (combiner
    /// side): `POSTED → TOMBSTONE`. For records whose owner is
    /// suspected dead — the combiner must not apply an operation whose
    /// poster may never collect the response, so the record is parked
    /// in a terminal state instead.
    ///
    /// Returns `false` if the record was no longer `POSTED` (the owner
    /// retracted, or another combiner claimed it) — suspicion raced
    /// with life, and the loser simply walks away. The CAS makes
    /// apply-then-tombstone impossible: a record is either claimed
    /// (and eventually applied exactly once) or tombstoned (applied
    /// zero times), never both.
    pub fn try_tombstone_posted(&self) -> bool {
        self.status
            .compare_exchange(POSTED, TOMBSTONE, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Reclaims a tombstoned record (owner side): `TOMBSTONE → EMPTY`.
    /// The request was **not** applied; a falsely suspected owner may
    /// repost it.
    ///
    /// # Panics
    ///
    /// Panics if the record is not `TOMBSTONE` (a protocol violation).
    pub fn reclaim_tombstone(&self) {
        assert_eq!(
            self.status.load(Ordering::Acquire),
            TOMBSTONE,
            "reclaim on an untombstoned publication record"
        );
        self.status.store(EMPTY, Ordering::Release);
    }
}

impl<Op, Resp> Default for PubRecord<Op, Resp> {
    fn default() -> PubRecord<Op, Resp> {
        PubRecord::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padding_separates_neighbours() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        let records: Vec<CachePadded<PubRecord<u32, u32>>> =
            (0..4).map(|_| CachePadded::new(PubRecord::new())).collect();
        let a = &*records[0] as *const _ as usize;
        let b = &*records[1] as *const _ as usize;
        assert!(b - a >= 128, "adjacent records share a cache line");
        let mut padded = CachePadded::new(5u32);
        *padded += 1;
        assert_eq!(padded.into_inner(), 6);
    }

    #[test]
    fn post_claim_complete_take_round_trip() {
        let rec: PubRecord<u32, u32> = PubRecord::new();
        assert_eq!(rec.state(), RecordState::Empty);
        let op = 7u32;
        // SAFETY: `op` outlives the protocol run below.
        unsafe { rec.post(&op) };
        assert_eq!(rec.state(), RecordState::Posted);
        let ptr = rec.try_claim().expect("posted record is claimable");
        // SAFETY: the claim licenses the dereference.
        assert_eq!(unsafe { *ptr }, 7);
        assert_eq!(rec.state(), RecordState::Claimed);
        assert!(rec.try_claim().is_none(), "double claim must fail");
        rec.complete(70);
        assert_eq!(rec.state(), RecordState::Done);
        assert_eq!(rec.take_response(), 70);
        assert_eq!(rec.state(), RecordState::Empty);
    }

    #[test]
    fn retract_races_with_claim_exactly_one_winner() {
        let rec: PubRecord<u32, u32> = PubRecord::new();
        let op = 1u32;
        // SAFETY: `op` outlives the protocol run below.
        unsafe { rec.post(&op) };
        assert!(rec.try_retract(), "unclaimed post retracts");
        assert_eq!(rec.state(), RecordState::Empty);
        assert!(!rec.try_retract(), "nothing left to retract");

        // SAFETY: as above.
        unsafe { rec.post(&op) };
        assert!(rec.try_claim().is_some());
        assert!(!rec.try_retract(), "claimed post cannot be retracted");
        rec.complete(2);
        assert_eq!(rec.take_response(), 2);
    }

    #[test]
    fn poison_reclaim_repost_retries_cleanly() {
        let rec: PubRecord<u32, u32> = PubRecord::new();
        let op = 9u32;
        // SAFETY: `op` outlives the protocol run below.
        unsafe { rec.post(&op) };
        let _ = rec.try_claim().expect("claimable");
        rec.poison();
        assert_eq!(rec.state(), RecordState::Poisoned);
        rec.reclaim_poisoned();
        assert_eq!(rec.state(), RecordState::Empty);
        // The owner retries: the full protocol still works.
        // SAFETY: as above.
        unsafe { rec.post(&op) };
        let _ = rec.try_claim().expect("claimable again");
        rec.complete(90);
        assert_eq!(rec.take_response(), 90);
    }

    #[test]
    fn tombstone_retires_a_post_without_applying_it() {
        let rec: PubRecord<u32, u32> = PubRecord::new();
        let op = 5u32;
        // SAFETY: `op` outlives the protocol run below.
        unsafe { rec.post(&op) };
        assert!(rec.try_tombstone_posted(), "posted record tombstones");
        assert_eq!(rec.state(), RecordState::Tombstone);
        // Terminal for both sides: no claim, no retract.
        assert!(rec.try_claim().is_none(), "tombstone is not claimable");
        assert!(!rec.try_retract(), "tombstone is not retractable");
        // A falsely suspected (live) owner reclaims and reposts.
        rec.reclaim_tombstone();
        assert_eq!(rec.state(), RecordState::Empty);
        // SAFETY: as above.
        unsafe { rec.post(&op) };
        let _ = rec.try_claim().expect("reposted record is claimable");
        rec.complete(50);
        assert_eq!(rec.take_response(), 50);
    }

    #[test]
    fn tombstone_loses_the_race_to_a_claim_or_retract() {
        let rec: PubRecord<u32, u32> = PubRecord::new();
        let op = 3u32;
        // Claimed first: tombstone must fail (the op will be applied
        // exactly once by the claimer).
        // SAFETY: `op` outlives the protocol run below.
        unsafe { rec.post(&op) };
        let _ = rec.try_claim().expect("claimable");
        assert!(!rec.try_tombstone_posted(), "claimed record survives");
        rec.complete(30);
        assert_eq!(rec.take_response(), 30);
        // Retracted first: nothing left to tombstone.
        // SAFETY: as above.
        unsafe { rec.post(&op) };
        assert!(rec.try_retract());
        assert!(!rec.try_tombstone_posted(), "empty record survives");
        assert_eq!(rec.state(), RecordState::Empty);
    }

    #[test]
    #[should_panic(expected = "untombstoned")]
    fn reclaim_tombstone_on_live_record_is_a_protocol_violation() {
        let rec: PubRecord<u32, u32> = PubRecord::new();
        rec.reclaim_tombstone();
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn double_post_is_a_protocol_violation() {
        let rec: PubRecord<u32, u32> = PubRecord::new();
        let op = 1u32;
        // SAFETY: `op` outlives both calls.
        unsafe {
            rec.post(&op);
            rec.post(&op);
        }
    }

    #[test]
    fn helper_stamp_rides_the_done_transition() {
        let rec: PubRecord<u32, u32> = PubRecord::new();
        assert_eq!(rec.helper(), NO_HELPER, "fresh record has no helper");
        let op = 4u32;
        // SAFETY: `op` outlives the protocol run below.
        unsafe { rec.post(&op) };
        let _ = rec.try_claim().expect("claimable");
        rec.stamp_helper(7);
        rec.complete(40);
        assert_eq!(rec.state(), RecordState::Done);
        assert_eq!(rec.helper(), 7, "owner reads the combiner's stamp");
        assert_eq!(rec.take_response(), 40);
    }

    #[test]
    fn cross_thread_handoff_delivers_the_response() {
        let rec: PubRecord<u64, u64> = PubRecord::new();
        let op = 21u64;
        // SAFETY: the scope below joins before `op` (and `rec`) drop.
        unsafe { rec.post(&op) };
        std::thread::scope(|s| {
            s.spawn(|| {
                // Combiner: spin until the post is visible, then serve.
                loop {
                    if let Some(ptr) = rec.try_claim() {
                        // SAFETY: the claim licenses the dereference.
                        let doubled = unsafe { *ptr } * 2;
                        rec.complete(doubled);
                        break;
                    }
                    std::hint::spin_loop();
                }
            });
            // Owner: local spin for the terminal state.
            loop {
                if rec.state() == RecordState::Done {
                    assert_eq!(rec.take_response(), 42);
                    break;
                }
                std::hint::spin_loop();
            }
        });
    }
}
