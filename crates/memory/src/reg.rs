//! Counted atomic registers.
//!
//! The paper's computation model (§2) provides atomic registers with
//! `read`, `write` and `Compare&Swap`. These wrappers implement that
//! model over `std::sync::atomic` with two deliberate choices:
//!
//! * **every access records itself** in the thread-local counters of
//!   [`crate::counting`], making step-complexity claims measurable;
//! * **all orderings are `SeqCst`** — the paper's registers are atomic
//!   in the sequential-consistency sense, and the point of the
//!   algorithms is their structure, not fence minimization. Baseline
//!   structures that traditionally use acquire/release live outside
//!   this module.
//!
//! # Uncounted validation peeks
//!
//! The `peek` / `cas_validated` / `write_lazy` members are the one
//! sanctioned exception to "every access records itself": they issue a
//! *plain relaxed load* that is **not** counted, in the spirit of
//! Dice, Hendler & Mirsky's read-validate-before-CAS — a doomed CAS
//! (or redundant store) costs an exclusive cache-line acquisition,
//! while a shared read does not. The accounting contract stays
//! honest because the peek can only *remove* counted accesses that
//! were about to happen (the skipped CAS/store), never add any: on
//! the contention-free paths the validation always passes and the
//! counted totals are bit-for-bit identical — which is what the
//! `step_budget` regression tests pin down.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::counting::{record, AccessKind};
use crate::runtime::{Active, Runtime};

/// One counted access: first a runtime scheduling hook (a yield point
/// under the `model` feature, nothing under the default [`Active`] =
/// `StdRuntime`), then the thread-local accounting.
#[inline(always)]
fn access(kind: AccessKind) {
    Active::before_access(kind);
    record(kind);
}

/// One uncounted peek: scheduled by the model runtime (racy peek-based
/// code must still be visible to the explorer), free otherwise.
#[inline(always)]
fn peek_point() {
    Active::before_peek();
}

/// A counted 64-bit atomic register.
///
/// This is the register type the paper's stack is built from: `TOP` and
/// every `STACK[x]` are multi-field words (see [`crate::packed`]) stored
/// in one `Reg64` so the whole word is read and CAS-ed atomically.
///
/// ```
/// use cso_memory::reg::Reg64;
/// let top = Reg64::new(0);
/// assert!(top.cas(0, 7));
/// assert!(!top.cas(0, 9));
/// assert_eq!(top.read(), 7);
/// ```
#[derive(Debug)]
pub struct Reg64 {
    cell: AtomicU64,
}

impl Reg64 {
    /// Creates a register holding `value`.
    #[must_use]
    pub fn new(value: u64) -> Reg64 {
        Reg64 {
            cell: AtomicU64::new(value),
        }
    }

    /// Atomically reads the register.
    #[inline]
    pub fn read(&self) -> u64 {
        access(AccessKind::Read);
        self.cell.load(Ordering::SeqCst)
    }

    /// Atomically writes `value` into the register.
    #[inline]
    pub fn write(&self, value: u64) {
        access(AccessKind::Write);
        self.cell.store(value, Ordering::SeqCst);
    }

    /// The paper's `X.C&S(old, new)` (§2.2): atomically, if the register
    /// holds `old`, replaces it with `new` and returns `true`;
    /// otherwise returns `false` and leaves the register unchanged.
    #[inline]
    pub fn cas(&self, old: u64, new: u64) -> bool {
        access(AccessKind::Cas);
        self.cell
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Like [`Reg64::cas`], but on failure returns the value observed,
    /// matching machines whose `Compare&Swap` "returned value is not a
    /// boolean, but the previous value of X" (§2.2).
    #[inline]
    pub fn cas_observe(&self, old: u64, new: u64) -> Result<(), u64> {
        access(AccessKind::Cas);
        self.cell
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .map(|_| ())
    }

    /// **Uncounted** relaxed load — an engineering-level peek used only
    /// to avoid doomed counted accesses (see the module docs). Never
    /// use it where the algorithm's correctness needs a counted read.
    #[inline]
    #[must_use]
    pub fn peek(&self) -> u64 {
        peek_point();
        self.cell.load(Ordering::Relaxed)
    }

    /// Read-validate-before-CAS: if an uncounted [`Reg64::peek`]
    /// already shows the register diverged from `old`, reports failure
    /// **without issuing the CAS** (zero counted accesses); otherwise
    /// performs the ordinary counted [`Reg64::cas`]. On uncontended
    /// paths the validation passes and the cost is exactly one counted
    /// CAS, so solo step budgets are unchanged.
    #[inline]
    pub fn cas_validated(&self, old: u64, new: u64) -> bool {
        peek_point();
        if self.cell.load(Ordering::Relaxed) != old {
            return false;
        }
        self.cas(old, new)
    }
}

/// A counted boolean atomic register (the paper's `CONTENTION` and
/// `FLAG[i]` registers).
///
/// ```
/// use cso_memory::reg::RegBool;
/// let contention = RegBool::new(false);
/// contention.write(true);
/// assert!(contention.read());
/// ```
#[derive(Debug)]
pub struct RegBool {
    cell: AtomicBool,
}

impl RegBool {
    /// Creates a register holding `value`.
    #[must_use]
    pub fn new(value: bool) -> RegBool {
        RegBool {
            cell: AtomicBool::new(value),
        }
    }

    /// Atomically reads the register.
    #[inline]
    pub fn read(&self) -> bool {
        access(AccessKind::Read);
        self.cell.load(Ordering::SeqCst)
    }

    /// Atomically writes `value`.
    #[inline]
    pub fn write(&self, value: bool) {
        access(AccessKind::Write);
        self.cell.store(value, Ordering::SeqCst);
    }

    /// Atomic `Compare&Swap`; returns whether the swap happened.
    #[inline]
    pub fn cas(&self, old: bool, new: bool) -> bool {
        access(AccessKind::Cas);
        self.cell
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Atomically replaces the value, returning the previous one.
    /// Counted as one CAS-class access (it is a read-modify-write).
    #[inline]
    pub fn swap(&self, value: bool) -> bool {
        access(AccessKind::Cas);
        self.cell.swap(value, Ordering::SeqCst)
    }

    /// **Uncounted** relaxed load — see the module docs and
    /// [`Reg64::peek`].
    #[inline]
    #[must_use]
    pub fn peek(&self) -> bool {
        peek_point();
        self.cell.load(Ordering::Relaxed)
    }

    /// Store-if-different: if an uncounted [`RegBool::peek`] already
    /// shows `value`, skips the store entirely (zero counted accesses,
    /// no cache-line invalidation) and returns `false`; otherwise
    /// performs the ordinary counted [`RegBool::write`] and returns
    /// `true`. On paths where the write is a real toggle the store
    /// always happens, so solo step budgets are unchanged.
    #[inline]
    pub fn write_lazy(&self, value: bool) -> bool {
        peek_point();
        if self.cell.load(Ordering::Relaxed) == value {
            return false;
        }
        self.write(value);
        true
    }
}

/// A counted `usize` atomic register (the paper's `TURN` register and
/// the ticket/queue lock counters).
///
/// ```
/// use cso_memory::reg::RegUsize;
/// let turn = RegUsize::new(0);
/// turn.write(3);
/// assert_eq!(turn.fetch_add(1), 3);
/// assert_eq!(turn.read(), 4);
/// ```
#[derive(Debug)]
pub struct RegUsize {
    cell: AtomicUsize,
}

impl RegUsize {
    /// Creates a register holding `value`.
    #[must_use]
    pub fn new(value: usize) -> RegUsize {
        RegUsize {
            cell: AtomicUsize::new(value),
        }
    }

    /// Atomically reads the register.
    #[inline]
    pub fn read(&self) -> usize {
        access(AccessKind::Read);
        self.cell.load(Ordering::SeqCst)
    }

    /// Atomically writes `value`.
    #[inline]
    pub fn write(&self, value: usize) {
        access(AccessKind::Write);
        self.cell.store(value, Ordering::SeqCst);
    }

    /// Atomic `Compare&Swap`; returns whether the swap happened.
    #[inline]
    pub fn cas(&self, old: usize, new: usize) -> bool {
        access(AccessKind::Cas);
        self.cell
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Atomically adds `delta`, returning the previous value.
    /// Counted as one CAS-class access.
    #[inline]
    pub fn fetch_add(&self, delta: usize) -> usize {
        access(AccessKind::Cas);
        self.cell.fetch_add(delta, Ordering::SeqCst)
    }

    /// Atomically replaces the value, returning the previous one.
    /// Counted as one CAS-class access.
    #[inline]
    pub fn swap(&self, value: usize) -> usize {
        access(AccessKind::Cas);
        self.cell.swap(value, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountScope;

    #[test]
    fn reg64_cas_semantics() {
        let r = Reg64::new(5);
        assert!(r.cas(5, 6));
        assert!(!r.cas(5, 7));
        assert_eq!(r.read(), 6);
        assert_eq!(r.cas_observe(9, 1), Err(6));
        assert_eq!(r.cas_observe(6, 1), Ok(()));
        assert_eq!(r.read(), 1);
    }

    #[test]
    fn reg64_counts_every_access() {
        let r = Reg64::new(0);
        let scope = CountScope::start();
        r.read();
        r.write(1);
        r.cas(1, 2);
        r.cas(1, 3); // failed CAS still counts: it touched shared memory
        let c = scope.take();
        assert_eq!((c.reads, c.writes, c.cas), (1, 1, 2));
    }

    #[test]
    fn peeks_and_validated_ops_are_uncounted_only_when_they_skip() {
        let r = Reg64::new(5);
        let scope = CountScope::start();
        assert_eq!(r.peek(), 5); // uncounted
        assert!(!r.cas_validated(9, 1)); // validation fails: no CAS issued
        assert_eq!(scope.take().total(), 0, "skipped accesses must not count");

        let scope = CountScope::start();
        assert!(r.cas_validated(5, 6)); // validation passes: one counted CAS
        let c = scope.take();
        assert_eq!((c.reads, c.writes, c.cas), (0, 0, 1));
        assert_eq!(r.read(), 6);
    }

    #[test]
    fn write_lazy_skips_redundant_stores() {
        let b = RegBool::new(false);
        let scope = CountScope::start();
        assert!(!b.write_lazy(false), "redundant store must be skipped");
        assert_eq!(scope.take().total(), 0);

        let scope = CountScope::start();
        assert!(b.write_lazy(true), "a real toggle must store");
        let c = scope.take();
        assert_eq!((c.reads, c.writes, c.cas), (0, 1, 0));
        assert!(b.read());
        assert!(b.peek());
    }

    #[test]
    fn regbool_swap_and_cas() {
        let b = RegBool::new(false);
        assert!(!b.swap(true));
        assert!(b.read());
        assert!(b.cas(true, false));
        assert!(!b.cas(true, false));
    }

    #[test]
    fn regusize_fetch_add_wraps_forward() {
        let u = RegUsize::new(10);
        assert_eq!(u.fetch_add(5), 10);
        assert_eq!(u.swap(0), 15);
        assert_eq!(u.read(), 0);
    }

    #[test]
    fn registers_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Reg64>();
        assert_send_sync::<RegBool>();
        assert_send_sync::<RegUsize>();
    }

    #[test]
    fn concurrent_cas_is_atomic() {
        use std::sync::Arc;
        let r = Arc::new(RegUsize::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        r.fetch_add(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.read(), 40_000);
    }
}
