//! Minimal epoch-based memory reclamation (EBR).
//!
//! The paper's array + sequence-number objects need no dynamic
//! reclamation at all — that is one of their selling points. The
//! *baselines* they are compared against (Treiber's stack, the
//! Michael–Scott queue, the elimination stack) allocate a node per
//! element and therefore do: a node unlinked by one thread may still be
//! traversed by another, so it cannot be freed immediately.
//!
//! This module is a small, dependency-free implementation of the
//! classical three-epoch scheme (Fraser 2004), API-compatible with the
//! subset of `crossbeam-epoch` the baselines use, so the workspace
//! builds fully offline:
//!
//! * threads [`pin`] themselves before touching shared nodes, recording
//!   the global epoch they observed;
//! * an unlinked node is retired with [`Guard::defer_destroy`], tagged
//!   with the epoch at retirement;
//! * the global epoch advances only when every pinned thread has caught
//!   up with it, so garbage from epoch `e` is freed once the global
//!   epoch reaches `e + 2` — by then no thread can still hold a
//!   reference from epoch `e`.
//!
//! Throughput trade-off: retirement buffers are thread-local but the
//! participant registry and the garbage pool are behind plain mutexes,
//! touched only every [`COLLECT_PERIOD`] pins. That is plenty for the
//! baseline role these structures play here; a production EBR would
//! shard the garbage pool.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A pinned thread flushes buffers and tries a collection every this
/// many pins.
const COLLECT_PERIOD: usize = 64;

/// Thread-local retirement buffer flushed to the global pool at this
/// size.
const FLUSH_THRESHOLD: usize = 32;

/// Participant status value meaning "not currently pinned".
const IDLE: usize = usize::MAX;

/// One registered thread.
struct Participant {
    /// [`IDLE`], or the global epoch the thread observed when pinning.
    status: AtomicUsize,
    /// The owning thread exited; scanners skip and eventually prune it.
    dead: AtomicBool,
}

/// A node whose destructor has been deferred: a type-erased owned
/// pointer plus the epoch at retirement.
struct Deferred {
    ptr: *mut (),
    drop_fn: unsafe fn(*mut ()),
    epoch: usize,
}

// SAFETY: a Deferred is an *owned* allocation in transit between the
// retiring thread and whichever thread eventually frees it; ownership
// transfer through the mutex-protected pool is exactly the Send
// contract.
unsafe impl Send for Deferred {}

impl Deferred {
    fn new<T>(ptr: *mut T, epoch: usize) -> Deferred {
        unsafe fn drop_box<T>(p: *mut ()) {
            // SAFETY: `p` was produced by `Box::into_raw::<T>` in
            // `Owned::new` and is dropped exactly once, here.
            drop(unsafe { Box::from_raw(p.cast::<T>()) });
        }
        Deferred {
            ptr: ptr.cast(),
            drop_fn: drop_box::<T>,
            epoch,
        }
    }

    /// Frees the allocation.
    fn execute(self) {
        // SAFETY: by construction `drop_fn` matches `ptr`'s type.
        unsafe { (self.drop_fn)(self.ptr) }
    }
}

/// The global epoch counter.
static GLOBAL_EPOCH: AtomicUsize = AtomicUsize::new(0);

/// All participants ever registered (dead ones are pruned lazily).
static REGISTRY: Mutex<Vec<Arc<Participant>>> = Mutex::new(Vec::new());

/// Retired allocations not yet known to be unreachable.
static GARBAGE: Mutex<Vec<Deferred>> = Mutex::new(Vec::new());

thread_local! {
    static HANDLE: Handle = Handle::register();
}

/// Per-thread pinning state.
struct Handle {
    participant: Arc<Participant>,
    /// Re-entrant pin depth (nested guards share one pinning).
    depth: Cell<usize>,
    /// Total pins, for periodic collection.
    pins: Cell<usize>,
    /// Local retirement buffer (flushed under the pool mutex).
    buffer: Cell<Vec<Deferred>>,
}

impl Handle {
    fn register() -> Handle {
        let participant = Arc::new(Participant {
            status: AtomicUsize::new(IDLE),
            dead: AtomicBool::new(false),
        });
        REGISTRY
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&participant));
        Handle {
            participant,
            depth: Cell::new(0),
            pins: Cell::new(0),
            buffer: Cell::new(Vec::new()),
        }
    }

    fn flush_buffer(&self) {
        let buf = self.buffer.take();
        if !buf.is_empty() {
            GARBAGE
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(buf);
        }
    }
}

impl Drop for Handle {
    fn drop(&mut self) {
        self.flush_buffer();
        self.participant.dead.store(true, Ordering::SeqCst);
        self.participant.status.store(IDLE, Ordering::SeqCst);
        // Give the orphaned garbage a chance to be freed promptly.
        try_collect();
    }
}

/// Tries to advance the global epoch, then frees every retirement old
/// enough to be unreachable (retired at `e`, freed once the global
/// epoch is `≥ e + 2`).
fn try_collect() {
    let global = GLOBAL_EPOCH.load(Ordering::SeqCst);
    let mut can_advance = true;
    {
        let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        registry.retain(|p| !(p.dead.load(Ordering::SeqCst) && Arc::strong_count(p) == 1));
        for p in registry.iter() {
            let status = p.status.load(Ordering::SeqCst);
            if status != IDLE && status != global {
                can_advance = false;
                break;
            }
        }
    }
    let horizon = if can_advance {
        // A lost race just means someone else advanced for us.
        let _ =
            GLOBAL_EPOCH.compare_exchange(global, global + 1, Ordering::SeqCst, Ordering::SeqCst);
        GLOBAL_EPOCH.load(Ordering::SeqCst)
    } else {
        global
    };
    let ready: Vec<Deferred> = {
        let mut garbage = GARBAGE.lock().unwrap_or_else(|e| e.into_inner());
        let mut ready = Vec::new();
        garbage.retain_mut(|d| {
            if horizon >= d.epoch + 2 {
                ready.push(Deferred {
                    ptr: d.ptr,
                    drop_fn: d.drop_fn,
                    epoch: d.epoch,
                });
                false
            } else {
                true
            }
        });
        ready
    };
    for d in ready {
        d.execute();
    }
}

/// Pins the current thread: while the returned [`Guard`] lives, no node
/// retired *after* the pin is freed, so loaded [`Shared`] pointers stay
/// dereferenceable.
#[must_use]
pub fn pin() -> Guard {
    HANDLE.with(|h| {
        if h.depth.get() == 0 {
            // Publish the epoch we observed, then re-check: if the
            // global moved between load and store, republish — the
            // collector must never see us parked on a stale epoch it
            // did not account for.
            loop {
                let e = GLOBAL_EPOCH.load(Ordering::SeqCst);
                h.participant.status.store(e, Ordering::SeqCst);
                if GLOBAL_EPOCH.load(Ordering::SeqCst) == e {
                    break;
                }
            }
            let pins = h.pins.get().wrapping_add(1);
            h.pins.set(pins);
            if pins % COLLECT_PERIOD == 0 {
                h.flush_buffer();
                try_collect();
            }
        }
        h.depth.set(h.depth.get() + 1);
    });
    Guard {
        unprotected: false,
        _not_send: PhantomData,
    }
}

/// Returns a guard that performs **no** protection: deferred destroys
/// run immediately.
///
/// # Safety
///
/// The caller must guarantee no other thread is concurrently accessing
/// the data structure (e.g. inside `Drop` with `&mut self`).
#[must_use]
pub unsafe fn unprotected() -> &'static Guard {
    struct SyncGuard(Guard);
    // SAFETY: the unprotected guard carries no thread-local state; the
    // !Send/!Sync marker exists only for pinned guards.
    unsafe impl Sync for SyncGuard {}
    static UNPROTECTED: SyncGuard = SyncGuard(Guard {
        unprotected: true,
        _not_send: PhantomData,
    });
    &UNPROTECTED.0
}

/// A pinning token (see [`pin`]).
pub struct Guard {
    unprotected: bool,
    _not_send: PhantomData<*mut ()>,
}

impl Guard {
    /// Retires the allocation behind `shared`: it is freed once every
    /// thread pinned at retirement time has unpinned.
    ///
    /// # Safety
    ///
    /// `shared` must point to a live allocation created by
    /// [`Owned::new`] that has been made unreachable to new readers,
    /// and must not be retired twice.
    pub unsafe fn defer_destroy<T>(&self, shared: Shared<'_, T>) {
        debug_assert!(!shared.is_null(), "cannot retire the null pointer");
        if self.unprotected {
            // SAFETY: caller guarantees exclusive access.
            drop(unsafe { Box::from_raw(shared.ptr) });
            return;
        }
        let epoch = GLOBAL_EPOCH.load(Ordering::SeqCst);
        HANDLE.with(|h| {
            let mut buf = h.buffer.take();
            buf.push(Deferred::new(shared.ptr, epoch));
            let full = buf.len() >= FLUSH_THRESHOLD;
            h.buffer.set(buf);
            if full {
                h.flush_buffer();
            }
        });
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.unprotected {
            return;
        }
        // Thread-local storage may already be gone during thread
        // teardown; the Handle's own Drop flushed everything then.
        let _ = HANDLE.try_with(|h| {
            let depth = h.depth.get();
            debug_assert!(depth > 0, "guard dropped while not pinned");
            h.depth.set(depth - 1);
            if depth == 1 {
                h.participant.status.store(IDLE, Ordering::SeqCst);
            }
        });
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Guard")
            .field("unprotected", &self.unprotected)
            .finish()
    }
}

/// An atomic nullable pointer to a heap node.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

impl<T> Atomic<T> {
    /// Creates a null pointer.
    #[must_use]
    pub fn null() -> Atomic<T> {
        Atomic {
            ptr: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Creates a pointer to a fresh allocation of `value`.
    #[must_use]
    pub fn new(value: T) -> Atomic<T> {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// Loads the current pointer; the guard keeps the pointee alive.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Stores `new` (a [`Shared`] or [`Owned`]).
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.ptr.store(new.into_ptr(), ord);
    }

    /// Compare-and-exchange: replaces `current` with `new`. On failure
    /// the error returns the actual value and hands `new` back so an
    /// [`Owned`] is not leaked.
    ///
    /// # Errors
    ///
    /// Returns [`CompareExchangeError`] when the stored pointer was not
    /// `current`.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'g, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_ptr = new.into_ptr();
        match self
            .ptr
            .compare_exchange(current.ptr, new_ptr, success, failure)
        {
            Ok(prev) => Ok(Shared {
                ptr: prev,
                _marker: PhantomData,
            }),
            Err(actual) => Err(CompareExchangeError {
                current: Shared {
                    ptr: actual,
                    _marker: PhantomData,
                },
                // SAFETY: `new_ptr` came from `new.into_ptr()` above
                // and was NOT installed, so ownership returns intact.
                new: unsafe { P::from_ptr(new_ptr) },
            }),
        }
    }
}

// SAFETY: same bounds as a `Box<T>` shared across threads behind
// atomics: the pointee must be Send (ownership moves at reclamation
// time) and Sync (it is read through shared references).
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Atomic({:p})", self.ptr.load(Ordering::Relaxed))
    }
}

/// The error of a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value actually stored.
    pub current: Shared<'g, T>,
    /// The candidate, returned so it can be reused or dropped.
    pub new: P,
}

/// A uniquely-owned heap node not yet published.
pub struct Owned<T> {
    ptr: *mut T,
}

impl<T> Owned<T> {
    /// Allocates `value`.
    #[must_use]
    pub fn new(value: T) -> Owned<T> {
        Owned {
            ptr: Box::into_raw(Box::new(value)),
        }
    }

    /// Converts into a [`Shared`], transferring the allocation to the
    /// data structure (it must eventually be retired or re-owned).
    #[must_use]
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let ptr = self.ptr;
        std::mem::forget(self);
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }

    /// Converts back into a plain [`Box`].
    #[must_use]
    pub fn into_box(self) -> Box<T> {
        let ptr = self.ptr;
        std::mem::forget(self);
        // SAFETY: `ptr` came from `Box::into_raw` and is uniquely owned.
        unsafe { Box::from_raw(ptr) }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: an un-consumed Owned still uniquely owns its box.
        drop(unsafe { Box::from_raw(self.ptr) });
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: uniquely owned, always valid.
        unsafe { &*self.ptr }
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: uniquely owned, always valid.
        unsafe { &mut *self.ptr }
    }
}

impl<T: fmt::Debug> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Owned").field(&**self).finish()
    }
}

// SAFETY: owning pointer — same story as Box<T>.
unsafe impl<T: Send> Send for Owned<T> {}

/// A pointer loaded under a [`Guard`]; valid for the guard's lifetime.
pub struct Shared<'g, T> {
    ptr: *mut T,
    _marker: PhantomData<(&'g Guard, *mut T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.ptr == other.ptr
    }
}
impl<T> Eq for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    #[must_use]
    pub fn null() -> Shared<'g, T> {
        Shared {
            ptr: ptr::null_mut(),
            _marker: PhantomData,
        }
    }

    /// Whether this is null.
    #[must_use]
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// Dereferences, returning `None` for null.
    ///
    /// # Safety
    ///
    /// Non-null pointers must come from a load on the same structure
    /// under the guard `'g` (or be otherwise known live).
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        // SAFETY: forwarded to the caller.
        unsafe { self.ptr.as_ref() }
    }

    /// Dereferences a known-non-null pointer.
    ///
    /// # Safety
    ///
    /// As [`Shared::as_ref`], plus the pointer must not be null.
    pub unsafe fn deref(&self) -> &'g T {
        debug_assert!(!self.is_null());
        // SAFETY: forwarded to the caller.
        unsafe { &*self.ptr }
    }

    /// Reclaims unique ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must be the unique owner (e.g. inside `Drop` after
    /// excluding all concurrent access).
    #[must_use]
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null());
        Owned { ptr: self.ptr }
    }
}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared({:p})", self.ptr)
    }
}

/// Pointer types storable in an [`Atomic`]: [`Owned`] and [`Shared`].
pub trait Pointer<T> {
    /// Extracts the raw pointer, giving up ownership bookkeeping.
    fn into_ptr(self) -> *mut T;

    /// Rebuilds from a raw pointer.
    ///
    /// # Safety
    ///
    /// `ptr` must carry whatever ownership the implementing type
    /// represents (unique for [`Owned`]).
    unsafe fn from_ptr(ptr: *mut T) -> Self;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        let ptr = self.ptr;
        std::mem::forget(self);
        ptr
    }

    unsafe fn from_ptr(ptr: *mut T) -> Owned<T> {
        Owned { ptr }
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_ptr(self) -> *mut T {
        self.ptr
    }

    unsafe fn from_ptr(ptr: *mut T) -> Self {
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A droppable payload counting into a caller-supplied counter, so
    /// parallel tests don't race on a shared static.
    struct Counted(&'static AtomicUsize);
    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn owned_roundtrip_and_drop() {
        let owned = Owned::new(41u64);
        assert_eq!(*owned, 41);
        let boxed = owned.into_box();
        assert_eq!(*boxed, 41);
    }

    #[test]
    fn cas_failure_returns_candidate() {
        let atomic: Atomic<u64> = Atomic::new(1);
        let guard = pin();
        let current = atomic.load(Ordering::SeqCst, &guard);
        let stale = Shared::null();
        let candidate = Owned::new(2u64);
        let err = atomic
            .compare_exchange(stale, candidate, Ordering::SeqCst, Ordering::SeqCst, &guard)
            .unwrap_err();
        assert_eq!(err.current, current);
        // The candidate is returned intact and freed normally.
        drop(err.new);
        // Clean up the structure.
        let head = atomic.load(Ordering::SeqCst, &guard);
        drop(unsafe { head.into_owned() });
    }

    #[test]
    fn deferred_destruction_eventually_runs() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        {
            let guard = pin();
            let node = Owned::new(Counted(&DROPS)).into_shared(&guard);
            // Retire while pinned: must NOT drop yet.
            unsafe { guard.defer_destroy(node) };
        }
        // Repin until the epoch advances far enough (bounded wait:
        // concurrent tests may transiently block an advance).
        for _ in 0..10_000 {
            for _ in 0..COLLECT_PERIOD {
                let _guard = pin();
            }
            if DROPS.load(Ordering::SeqCst) >= 1 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            1,
            "retired node must be freed after the epoch advances"
        );
    }

    #[test]
    fn unprotected_defer_destroy_is_immediate() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        let guard = unsafe { unprotected() };
        let node = Owned::new(Counted(&DROPS)).into_shared(guard);
        unsafe { guard.defer_destroy(node) };
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_pins_share_one_epoch_slot() {
        let g1 = pin();
        let g2 = pin();
        drop(g1);
        // Still pinned through g2; loads remain protected.
        let atomic: Atomic<u64> = Atomic::new(5);
        let shared = atomic.load(Ordering::SeqCst, &g2);
        assert_eq!(unsafe { *shared.deref() }, 5);
        drop(unsafe { shared.into_owned() });
    }

    #[test]
    fn concurrent_treiber_style_churn() {
        // A miniature Treiber stack exercising load/CAS/defer under
        // real concurrency; run with many nodes to flush garbage
        // through whole epochs.
        struct Node {
            value: u64,
            next: Atomic<Node>,
        }
        let head: Atomic<Node> = Atomic::null();
        let pushed = AtomicUsize::new(0);
        let popped = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let head = &head;
                let pushed = &pushed;
                let popped = &popped;
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        // Push.
                        let guard = pin();
                        let mut node = Owned::new(Node {
                            value: t * 10_000 + i,
                            next: Atomic::null(),
                        });
                        loop {
                            let h = head.load(Ordering::Acquire, &guard);
                            node.next.store(h, Ordering::Relaxed);
                            match head.compare_exchange(
                                h,
                                node,
                                Ordering::Release,
                                Ordering::Relaxed,
                                &guard,
                            ) {
                                Ok(_) => break,
                                Err(e) => node = e.new,
                            }
                        }
                        pushed.fetch_add(1, Ordering::Relaxed);
                        // Pop.
                        loop {
                            let h = head.load(Ordering::Acquire, &guard);
                            let Some(n) = (unsafe { h.as_ref() }) else {
                                break;
                            };
                            let next = n.next.load(Ordering::Acquire, &guard);
                            if head
                                .compare_exchange(
                                    h,
                                    next,
                                    Ordering::Release,
                                    Ordering::Relaxed,
                                    &guard,
                                )
                                .is_ok()
                            {
                                let _ = n.value;
                                unsafe { guard.defer_destroy(h) };
                                popped.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(pushed.load(Ordering::Relaxed), 8_000);
        // Every pop matched a push; drain the rest single-threaded.
        let guard = unsafe { unprotected() };
        let mut rest = 0;
        loop {
            let h = head.load(Ordering::Relaxed, guard);
            if h.is_null() {
                break;
            }
            let owned = unsafe { h.into_owned() };
            let next = owned.next.load(Ordering::Relaxed, guard);
            head.store(next, Ordering::Relaxed);
            drop(owned);
            rest += 1;
        }
        assert_eq!(popped.load(Ordering::Relaxed) + rest, 8_000);
    }
}
