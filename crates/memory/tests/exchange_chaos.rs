//! Fault injection against the exchange (elimination) layer: a
//! crashed eliminator must never leak an item, never double-surface
//! one, and never wedge a slot.

#![cfg(feature = "chaos")]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cso_memory::chaos::{self, Fault, Plan};
use cso_memory::exchange::Exchanger;

// The fail-point registry is process-global; chaos scenarios must not
// overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A payload whose drops are counted, so conservation is checkable
/// even across panics.
struct Token(Arc<AtomicUsize>);

impl Drop for Token {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

/// After any chaos scenario the exchanger must still work: one full
/// rendezvous round-trips.
fn assert_ladder_not_wedged(ex: &Arc<Exchanger<u32>>) {
    assert!(ex.is_idle(), "slots must be recycled after the fault");
    let offeror = {
        let ex = Arc::clone(ex);
        std::thread::spawn(move || loop {
            match ex.offer(77, 100_000) {
                Ok(()) => return,
                Err(_) => std::thread::yield_now(),
            }
        })
    };
    loop {
        if let Some(v) = ex.take() {
            assert_eq!(v, 77);
            break;
        }
        std::hint::spin_loop();
    }
    offeror.join().unwrap();
}

#[test]
fn aborted_claim_returns_the_item() {
    let _serial = serial();
    chaos::reset();
    let ex: Exchanger<u32> = Exchanger::new(2);
    chaos::arm_plan("exchange::claim", Plan::once(Fault::SpuriousAbort));
    assert_eq!(ex.offer(5, 64), Err(5), "an aborted claim keeps the item");
    assert!(ex.is_idle());
    assert_eq!(chaos::fires("exchange::claim"), 1);
    chaos::reset();
}

#[test]
fn eliminator_crashing_with_a_parked_item_leaks_nothing() {
    let _serial = serial();
    chaos::reset();
    let drops = Arc::new(AtomicUsize::new(0));
    let ex: Arc<Exchanger<Token>> = Arc::new(Exchanger::new(1));

    // The offeror parks its item, times out, and is crashed at the
    // retract fail point — while the item is still in the slot.
    chaos::arm_plan("exchange::retract", Plan::once(Fault::Panic));
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = ex.offer(Token(Arc::clone(&drops)), 4);
    }));
    assert!(crashed.is_err(), "the injected panic must unwind");
    assert_eq!(chaos::fires("exchange::retract"), 1);

    // Conservation: the park guard reclaimed the parked item on the
    // unwind — dropped exactly once, not leaked, not duplicated.
    assert_eq!(drops.load(Ordering::SeqCst), 1);
    assert_eq!(ex.exchanges(), 0);
    assert!(ex.take().is_none(), "the reclaimed item must not resurface");

    // And the ladder is not wedged: the slot recycled cleanly.
    assert!(ex.is_idle(), "crashed offeror must not wedge its slot");
    chaos::reset();
}

#[test]
fn crash_racing_a_taker_surfaces_the_item_exactly_once() {
    let _serial = serial();
    chaos::reset();
    let drops = Arc::new(AtomicUsize::new(0));
    let ex: Arc<Exchanger<Token>> = Arc::new(Exchanger::new(1));
    let taken = Arc::new(AtomicUsize::new(0));

    // Delay the offeror at the retract point to widen the window in
    // which a taker can commit, then crash it there on a later cycle.
    chaos::arm_plan(
        "exchange::retract",
        Plan {
            fault: Fault::Delay(std::time::Duration::from_micros(200)),
            after: 0,
            one_in: 1,
            max_fires: u64::MAX,
        },
    );
    let stop = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let stop = &stop;
        let taker = {
            let ex = Arc::clone(&ex);
            let taken = Arc::clone(&taken);
            s.spawn(move || {
                while stop.load(Ordering::SeqCst) == 0 {
                    if ex.take().is_some() {
                        taken.fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
        };
        for _ in 0..200 {
            let _ = ex.offer(Token(Arc::clone(&drops)), 8);
        }
        stop.store(1, Ordering::SeqCst);
        taker.join().unwrap();
    });

    // Conservation: every offered token was dropped exactly once —
    // either taken by the taker or retracted by the offeror.
    assert_eq!(drops.load(Ordering::SeqCst), 200);
    assert_eq!(ex.exchanges() as usize, taken.load(Ordering::SeqCst));
    assert!(ex.is_idle());
    chaos::reset();

    // The delay plan is cheap fault coverage; now verify full health.
    let ex: Arc<Exchanger<u32>> = Arc::new(Exchanger::new(1));
    assert_ladder_not_wedged(&ex);
}
