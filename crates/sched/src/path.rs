//! The execution path: the DFS frontier over scheduling branches.
//!
//! One *execution* of the body under the model runtime is a sequence
//! of **decisions**: at every scheduling point with more than one
//! runnable candidate, one thread is chosen; at every armed chaos fail
//! point with a probabilistic plan, a fire/skip draw is taken. A
//! [`Path`] records those decisions as [`Branch`]es (in the style of
//! loom's `rt::path` — see SNIPPETS.md Snippet 3): re-running the body
//! with the same path prefix deterministically replays the same
//! interleaving up to the frontier, and [`Path::advance`] steps the
//! final branch to its next untried alternative, giving depth-first
//! exhaustive exploration with no checkpointing of program state —
//! the program itself is the checkpoint, replayed from the top.
//!
//! Forced moves (a single runnable candidate) are *not* recorded:
//! they are deterministic consequences of the branch decisions, so
//! omitting them keeps paths — and printed replay traces — short.

use crate::rng;

/// One replayable decision, as printed in a failure trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// A scheduling point chose thread `tid` among ≥ 2 candidates.
    Sched(usize),
    /// An armed chaos fail point drew fire (`true`) or skip (`false`).
    Chaos(bool),
}

/// Renders decisions as the compact dot-separated trace format
/// (`"1.0.c1.0"`): scheduling choices as decimal thread ids, chaos
/// draws as `c1`/`c0`.
#[must_use]
pub fn format_trace(decisions: &[Decision]) -> String {
    let parts: Vec<String> = decisions
        .iter()
        .map(|d| match d {
            Decision::Sched(t) => t.to_string(),
            Decision::Chaos(fired) => format!("c{}", u8::from(*fired)),
        })
        .collect();
    parts.join(".")
}

/// Parses the format produced by [`format_trace`].
///
/// # Errors
///
/// Returns a description of the first malformed component.
pub fn parse_trace(trace: &str) -> Result<Vec<Decision>, String> {
    let trimmed = trace.trim();
    if trimmed.is_empty() {
        return Ok(Vec::new());
    }
    trimmed
        .split('.')
        .map(|part| {
            if let Some(flag) = part.strip_prefix('c') {
                match flag {
                    "0" => Ok(Decision::Chaos(false)),
                    "1" => Ok(Decision::Chaos(true)),
                    other => Err(format!("bad chaos decision `c{other}` (want c0/c1)")),
                }
            } else {
                part.parse::<usize>()
                    .map(Decision::Sched)
                    .map_err(|_| format!("bad thread id `{part}` in trace"))
            }
        })
        .collect()
}

/// A recorded branch point.
#[derive(Debug, Clone)]
enum Branch {
    /// A scheduling choice: the candidate set at that point and the
    /// index of the alternative currently being explored.
    Sched { cands: Vec<usize>, idx: usize },
    /// A chaos draw. Not backtracked over: the draw is a pure function
    /// of the path position and seed (see [`Path::choose_chaos`]), so
    /// exploring both arms would square the schedule space for every
    /// probabilistic fail point; the exhaustive axis stays the
    /// schedule. Recorded so prefix replay reproduces it bit-for-bit.
    Chaos { fired: bool },
}

/// The DFS path: a replayable prefix plus a frontier.
#[derive(Debug, Default)]
pub struct Path {
    branches: Vec<Branch>,
    /// Position of the next decision within `branches`; decisions
    /// below it replay the recorded choice, decisions at it extend
    /// the path.
    pos: usize,
}

impl Path {
    /// An empty path (the first execution runs thread 0 greedily).
    #[must_use]
    pub fn new() -> Path {
        Path::default()
    }

    /// Chooses the thread to run among `cands` (non-empty, ordered:
    /// the currently running thread first, then ascending ids).
    ///
    /// # Panics
    ///
    /// Panics if a replayed prefix diverges — the candidate set at
    /// this position differs from the recorded one. That means the
    /// body is not schedule-deterministic (wall-clock branches,
    /// unseeded randomness), which exhaustive exploration cannot
    /// handle; failing loudly beats silently exploring garbage.
    pub fn choose_sched(&mut self, cands: &[usize]) -> usize {
        if cands.len() == 1 {
            return cands[0];
        }
        if self.pos < self.branches.len() {
            let at = self.pos;
            self.pos += 1;
            match &self.branches[at] {
                Branch::Sched {
                    cands: recorded,
                    idx,
                } => {
                    assert!(
                        recorded == cands,
                        "model: schedule diverged from recorded path at decision {at}: \
                         recorded candidates {recorded:?}, live candidates {cands:?} — \
                         the body is not schedule-deterministic"
                    );
                    recorded[*idx]
                }
                Branch::Chaos { .. } => panic!(
                    "model: schedule diverged from recorded path at decision {at}: \
                     expected a scheduling point, found a chaos draw"
                ),
            }
        } else {
            self.pos += 1;
            self.branches.push(Branch::Sched {
                cands: cands.to_vec(),
                idx: 0,
            });
            cands[0]
        }
    }

    /// Draws fire/skip for a `one_in` chaos plan. Fresh draws are the
    /// stateless mix of `seed` and the path position, so the same
    /// position yields the same draw on every replay of the prefix.
    pub fn choose_chaos(&mut self, one_in: u64, seed: u64) -> bool {
        if self.pos < self.branches.len() {
            let at = self.pos;
            self.pos += 1;
            match &self.branches[at] {
                Branch::Chaos { fired } => *fired,
                Branch::Sched { .. } => panic!(
                    "model: schedule diverged from recorded path at decision {at}: \
                     expected a chaos draw, found a scheduling point"
                ),
            }
        } else {
            let fired = rng::mix(seed ^ (self.pos as u64).wrapping_mul(0xA076_1D64_78BD_642F))
                % one_in
                == 0;
            self.pos += 1;
            self.branches.push(Branch::Chaos { fired });
            fired
        }
    }

    /// Steps to the next unexplored execution: backtracks to the
    /// deepest branch with an untried alternative, selects it, and
    /// rewinds the replay cursor. Returns `false` when the space is
    /// exhausted.
    pub fn advance(&mut self) -> bool {
        loop {
            match self.branches.last_mut() {
                None => return false,
                Some(Branch::Sched { cands, idx }) if *idx + 1 < cands.len() => {
                    *idx += 1;
                    self.pos = 0;
                    return true;
                }
                Some(_) => {
                    self.branches.pop();
                }
            }
        }
    }

    /// Number of recorded branch points in the current prefix.
    #[cfg(test)]
    pub fn depth(&self) -> usize {
        self.branches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_enumerates_all_leaf_orders() {
        // Two decisions with 2 candidates each → 4 executions.
        let mut path = Path::new();
        let mut seen = Vec::new();
        loop {
            let a = path.choose_sched(&[0, 1]);
            let b = path.choose_sched(&[0, 1]);
            seen.push((a, b));
            if !path.advance() {
                break;
            }
        }
        assert_eq!(seen, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn forced_moves_are_not_recorded() {
        let mut path = Path::new();
        assert_eq!(path.choose_sched(&[3]), 3);
        assert_eq!(path.depth(), 0);
        assert!(!path.advance(), "no branches, nothing to explore");
    }

    #[test]
    fn chaos_draws_replay_identically() {
        let mut path = Path::new();
        let first = path.choose_chaos(3, 42);
        let _ = path.choose_sched(&[0, 1]);
        assert!(path.advance(), "the sched branch has an alternative");
        // Replay: the chaos draw is below the frontier now.
        assert_eq!(path.choose_chaos(3, 42), first);
        assert_eq!(path.choose_sched(&[0, 1]), 1);
    }

    #[test]
    fn trace_round_trips() {
        let decisions = vec![
            Decision::Sched(1),
            Decision::Chaos(true),
            Decision::Sched(0),
            Decision::Chaos(false),
        ];
        let text = format_trace(&decisions);
        assert_eq!(text, "1.c1.0.c0");
        assert_eq!(parse_trace(&text).unwrap(), decisions);
        assert!(parse_trace("1.x.0").is_err());
        assert_eq!(parse_trace("  ").unwrap(), Vec::new());
    }

    #[test]
    #[should_panic(expected = "not schedule-deterministic")]
    fn divergence_panics() {
        let mut path = Path::new();
        let _ = path.choose_sched(&[0, 1]);
        path.advance();
        let _ = path.choose_sched(&[0, 2]); // different candidates
    }
}
