//! The exploration driver: runs a body under the model runtime across
//! many schedules and reports the first violation with a replayable
//! trace.
//!
//! ```no_run
//! use cso_sched::{Explorer, spawn};
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let report = Explorer::exhaustive().explore(|| {
//!     let x = Arc::new(AtomicU64::new(0));
//!     let t = {
//!         let x = Arc::clone(&x);
//!         spawn(move || x.fetch_add(1, Ordering::SeqCst))
//!     };
//!     x.fetch_add(1, Ordering::SeqCst);
//!     t.join();
//!     assert_eq!(x.load(Ordering::SeqCst), 2);
//! });
//! report.assert_ok();
//! ```
//!
//! (The example uses raw atomics for brevity; real model tests go
//! through `cso_memory::reg` registers, whose accesses are the yield
//! points.)

use std::fmt;

use crate::path::{self, Decision, Path};
use crate::rng::{self, SplitMix64};
use crate::session::{self, Chooser, Limits, Stop};

/// How the explorer walks the schedule space.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Depth-first exhaustive enumeration of every interleaving (up to
    /// the preemption bound and step budget). Complete for small
    /// thread counts; use for 2–3 threads.
    Exhaustive,
    /// `schedules` independent executions under seeded-random
    /// scheduling. Incomplete but scales to any thread count; every
    /// execution's seed is derived from `base_seed` and printed on
    /// failure.
    Random { base_seed: u64, schedules: usize },
    /// A single execution forced through a previously printed failure
    /// trace (see [`Violation::trace`]).
    Replay { trace: String },
}

/// Exploration configuration. Build via [`Explorer::exhaustive`],
/// [`Explorer::random`], or [`Explorer::replay`], then adjust with the
/// `with_*` methods.
#[derive(Debug, Clone)]
pub struct Explorer {
    mode: Mode,
    /// Scheduling decisions per execution before it is pruned.
    max_steps: usize,
    /// Involuntary context switches per execution (CHESS-style bound);
    /// `None` removes the bound. Most real bugs need very few
    /// preemptions, and each unit multiplies the space, so the default
    /// is small.
    preemption_bound: Option<usize>,
    /// Ceiling on executions for exhaustive mode (a safety net against
    /// state-space blowups in CI; `None` = run to exhaustion).
    max_schedules: Option<usize>,
    /// Seed feeding chaos draws (and, in random mode, the default
    /// base), so chaos-armed explorations replay identically.
    seed: u64,
}

impl Explorer {
    /// DFS-exhaustive exploration with the default bounds
    /// (`max_steps = 2_000`, `preemption_bound = Some(2)`).
    #[must_use]
    pub fn exhaustive() -> Explorer {
        Explorer {
            mode: Mode::Exhaustive,
            max_steps: 2_000,
            preemption_bound: Some(2),
            max_schedules: None,
            seed: 0,
        }
    }

    /// Seeded-random sweep of `schedules` executions.
    #[must_use]
    pub fn random(base_seed: u64, schedules: usize) -> Explorer {
        Explorer {
            mode: Mode::Random {
                base_seed,
                schedules,
            },
            max_steps: 20_000,
            preemption_bound: None,
            max_schedules: None,
            seed: base_seed,
        }
    }

    /// Replays one execution from a printed failure trace.
    #[must_use]
    pub fn replay(trace: &str) -> Explorer {
        Explorer {
            mode: Mode::Replay {
                trace: trace.to_string(),
            },
            max_steps: 100_000,
            preemption_bound: None,
            max_schedules: None,
            seed: 0,
        }
    }

    /// Sets the per-execution step budget.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Explorer {
        self.max_steps = max_steps;
        self
    }

    /// Sets (or, with `None`, removes) the preemption bound.
    #[must_use]
    pub fn with_preemption_bound(mut self, bound: Option<usize>) -> Explorer {
        self.preemption_bound = bound;
        self
    }

    /// Caps the number of schedules an exhaustive run may try.
    #[must_use]
    pub fn with_max_schedules(mut self, max: usize) -> Explorer {
        self.max_schedules = Some(max);
        self
    }

    /// Sets the seed feeding chaos draws (exhaustive/replay modes).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Explorer {
        self.seed = seed;
        self
    }

    /// Runs `body` across schedules per the configured [`Mode`].
    ///
    /// The body runs once per schedule, each time from the top with
    /// fresh state (construct everything under test *inside* the
    /// closure); model threads are started with [`crate::spawn`].
    /// Returns after the first violation or when the schedule budget
    /// is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if a replay trace fails to parse, or if `explore` is
    /// called from inside another model session (sessions do not
    /// nest).
    pub fn explore<F>(&self, body: F) -> Report
    where
        F: Fn() + Sync,
    {
        assert!(
            !session::active(),
            "cso-sched: Explorer::explore inside a model session (sessions do not nest)"
        );
        let limits = Limits {
            max_steps: self.max_steps,
            preemption_bound: self.preemption_bound,
        };
        let mut report = Report {
            schedules: 0,
            pruned: 0,
            exhausted: false,
            violation: None,
        };
        match &self.mode {
            Mode::Exhaustive => {
                let mut path = Path::new();
                loop {
                    let outcome = session::run_once(limits, Chooser::Dfs(path), self.seed, &body);
                    report.schedules += 1;
                    match outcome.stop {
                        Some(Stop::Violation) | Some(Stop::Deadlock) => {
                            report.violation = Some(Violation {
                                message: outcome
                                    .violation
                                    .unwrap_or_else(|| "violation with no message".into()),
                                trace: path::format_trace(&outcome.trace),
                                seed: self.seed,
                                schedule: report.schedules - 1,
                            });
                            return report;
                        }
                        Some(Stop::Pruned) => report.pruned += 1,
                        None => {}
                    }
                    path = match outcome.chooser {
                        Chooser::Dfs(p) => p,
                        _ => unreachable!("exhaustive run returned a non-DFS chooser"),
                    };
                    if !path.advance() {
                        report.exhausted = true;
                        return report;
                    }
                    if let Some(max) = self.max_schedules {
                        if report.schedules >= max {
                            return report;
                        }
                    }
                }
            }
            Mode::Random {
                base_seed,
                schedules,
            } => {
                for i in 0..*schedules {
                    let seed = rng::mix(base_seed ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
                    let outcome = session::run_once(
                        limits,
                        Chooser::Random(SplitMix64::new(seed)),
                        seed,
                        &body,
                    );
                    report.schedules += 1;
                    match outcome.stop {
                        Some(Stop::Violation) | Some(Stop::Deadlock) => {
                            report.violation = Some(Violation {
                                message: outcome
                                    .violation
                                    .unwrap_or_else(|| "violation with no message".into()),
                                trace: path::format_trace(&outcome.trace),
                                seed,
                                schedule: i,
                            });
                            return report;
                        }
                        Some(Stop::Pruned) => report.pruned += 1,
                        None => {}
                    }
                }
                report.exhausted = false;
            }
            Mode::Replay { trace } => {
                let decisions: Vec<Decision> = path::parse_trace(trace)
                    .unwrap_or_else(|e| panic!("cso-sched: bad replay trace: {e}"));
                let outcome = session::run_once(
                    limits,
                    Chooser::Replay { decisions, pos: 0 },
                    self.seed,
                    &body,
                );
                report.schedules = 1;
                match outcome.stop {
                    Some(Stop::Violation) | Some(Stop::Deadlock) => {
                        report.violation = Some(Violation {
                            message: outcome
                                .violation
                                .unwrap_or_else(|| "violation with no message".into()),
                            trace: path::format_trace(&outcome.trace),
                            seed: self.seed,
                            schedule: 0,
                        });
                    }
                    Some(Stop::Pruned) => report.pruned = 1,
                    None => {}
                }
            }
        }
        report
    }
}

/// The first violation an exploration hit.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The panic message of the failing oracle/assertion (or a
    /// deadlock description).
    pub message: String,
    /// The branch trace of the failing schedule — feed it to
    /// [`Explorer::replay`] to reproduce deterministically.
    pub trace: String,
    /// The execution seed (chaos draws / random scheduling).
    pub seed: u64,
    /// Zero-based index of the failing schedule within the run.
    pub schedule: usize,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule #{} (seed {:#x}) violated: {}\n  replay trace: \"{}\"",
            self.schedule, self.seed, self.message, self.trace
        )
    }
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Executions run (including the failing one, if any).
    pub schedules: usize,
    /// Executions cut short by the step budget.
    pub pruned: usize,
    /// Whether the DFS ran the schedule space dry (always `false` for
    /// random sweeps and replays).
    pub exhausted: bool,
    /// The first violation, if one was found.
    pub violation: Option<Violation>,
}

impl Report {
    /// Panics with the full violation (message + replay trace) if the
    /// exploration found one.
    pub fn assert_ok(&self) {
        if let Some(v) = &self.violation {
            panic!(
                "model exploration failed after {} schedule(s): {v}",
                self.schedules
            );
        }
    }

    /// Panics unless the exploration found a violation — used by
    /// mutation self-tests to prove the harness has teeth.
    pub fn assert_violation(&self) -> &Violation {
        self.violation.as_ref().unwrap_or_else(|| {
            panic!(
                "model exploration expected a violation but {} schedule(s) \
                 ({} pruned{}) all passed",
                self.schedules,
                self.pruned,
                if self.exhausted {
                    ", space exhausted"
                } else {
                    ""
                }
            )
        })
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} schedule(s), {} pruned, {}",
            self.schedules,
            self.pruned,
            match (&self.violation, self.exhausted) {
                (Some(v), _) => format!("VIOLATION: {v}"),
                (None, true) => "space exhausted, all passed".to_string(),
                (None, false) => "budget reached, all passed".to_string(),
            }
        )
    }
}
