//! A tiny deterministic PRNG (SplitMix64).
//!
//! The scheduler cannot depend on `cso-memory`'s `XorShift64` (the
//! dependency points the other way: `cso-memory`'s registers call into
//! this crate under the `model` feature), so it carries its own
//! generator. SplitMix64 is chosen for its one-line state transition
//! and its ability to turn *any* seed — including 0 — into a
//! well-mixed stream, which matters because seeds here are built by
//! XOR-ing schedule indices into user-provided base seeds.

/// SplitMix64: 64 bits of state, passes BigCrush, never gets stuck.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (any value, including 0).
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below needs a positive bound");
        // Multiply-shift reduction: unbiased enough for schedule
        // sampling, and branch-free.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// One-shot mix of `seed` — the stateless form of [`SplitMix64`],
/// used where a decision must be a pure function of its position
/// (e.g. chaos draws that have to replay identically whether they are
/// reached fresh or through a DFS prefix).
#[must_use]
pub fn mix(seed: u64) -> u64 {
    SplitMix64::new(seed).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = SplitMix64::new(0);
        let first = r.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(42);
        for bound in 1..32u64 {
            for _ in 0..64 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn mix_is_stateless() {
        assert_eq!(mix(123), mix(123));
        assert_ne!(mix(123), mix(124));
    }
}
