//! The controlled-scheduling session: real threads, one grant at a time.
//!
//! A session serializes a set of *model threads* (real OS threads) so
//! that exactly one runs at any moment. Every shared-memory access of
//! the counted registers (`cso_memory::reg` under the `model` feature)
//! is a **yield point**: the running thread pauses, the scheduler
//! picks who performs the next access (consulting the DFS [`Path`],
//! the seeded RNG, or a replayed trace), and the chosen thread runs
//! until *its* next yield point. Interleavings of counted accesses are
//! therefore fully controlled; code between two counted accesses
//! (uncounted peeks aside — they are yield points too) executes as an
//! atomic block of the schedule.
//!
//! # Spin discipline
//!
//! Busy-wait loops (`Spinner`/`Backoff` in `cso_memory::backoff`)
//! report themselves via the spin hint, which marks the thread
//! *yielded*: it is not scheduled again while any non-yielded thread
//! is runnable. This is loom's treatment of `yield_now`, and it is
//! what keeps exhaustive exploration of spin loops finite — the
//! stuttering re-read branches (schedule the spinner again before
//! anything changed) are pruned, which is sound for safety oracles
//! because a failed re-check of an unchanged register has no effect.
//!
//! # Stopping
//!
//! A violation (any panic in the body or a spawned thread), a pruned
//! execution (step budget exceeded), or a deadlock (every live thread
//! blocked on a join) flips the session to a *stopping* state: parked
//! threads wake and unwind with a private sentinel panic, and
//! teardown code (drops) runs **free** — scheduling points become
//! no-ops while the thread is already panicking, so destructors never
//! double-panic through the scheduler.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;

use crate::path::{Decision, Path};
use crate::rng::{self, SplitMix64};

/// `State::active` value meaning "nobody holds the grant" (all model
/// threads finished).
const NO_ACTIVE: usize = usize::MAX;

/// Sentinel panic payload used to unwind model threads when the
/// session stops. Never surfaces to users: the spawn wrapper and the
/// explorer swallow it.
pub(crate) struct ModelAbort;

/// Why a session stopped before the body completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stop {
    /// A thread panicked — an oracle fired or the code under test hit
    /// a bug.
    Violation,
    /// The execution exceeded the per-schedule step budget.
    Pruned,
    /// Every unfinished thread was blocked (join cycle).
    Deadlock,
}

/// Run state of one model thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    /// Runnable (possibly parked awaiting the grant).
    Ready,
    /// Waiting for thread `.0` to finish (inside `JoinHandle::join`).
    Blocked(usize),
    /// Finished (or never started because the session stopped).
    Finished,
}

#[derive(Debug)]
struct Th {
    run: Run,
    /// Set by the spin hint; cleared when granted. Yielded threads are
    /// scheduled only when no fresh thread is runnable.
    yielded: bool,
    /// Entropy requests served to this thread (see
    /// [`Session::entropy_seed`]).
    entropy_ctr: u64,
}

impl Th {
    fn ready() -> Th {
        Th {
            run: Run::Ready,
            yielded: false,
            entropy_ctr: 0,
        }
    }
}

/// How the session chooses at branch points.
#[derive(Debug, Default)]
pub(crate) enum Chooser {
    /// DFS over the [`Path`] (exhaustive mode).
    Dfs(Path),
    /// Seeded random choice (sweep mode).
    Random(SplitMix64),
    /// Forced decisions from a parsed failure trace.
    Replay {
        decisions: Vec<Decision>,
        pos: usize,
    },
    /// Placeholder after the explorer takes the chooser back.
    #[default]
    Taken,
}

/// Per-execution limits.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Limits {
    /// Scheduling decisions before the execution is pruned.
    pub max_steps: usize,
    /// Involuntary context switches allowed (`None` = unbounded).
    pub preemption_bound: Option<usize>,
}

#[derive(Debug)]
pub(crate) struct State {
    threads: Vec<Th>,
    active: usize,
    steps: usize,
    preemptions: usize,
    children_alive: usize,
    status: Option<Stop>,
    violation: Option<String>,
    chooser: Chooser,
    /// Branch decisions taken this execution, for trace printing.
    trace: Vec<Decision>,
    limits: Limits,
    /// Per-execution seed: chaos draws, random scheduling, and model
    /// entropy derive from it.
    seed: u64,
}

/// One exploration execution's shared scheduler state.
pub(crate) struct Session {
    mx: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Session>, usize)>> = const { RefCell::new(None) };
}

/// The calling thread's session registration, if any.
pub(crate) fn current() -> Option<(Arc<Session>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Session>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// Unwind out of a stopped session — unless the thread is already
/// panicking (teardown drops), in which case scheduling is a no-op.
fn bail() {
    if !thread::panicking() {
        panic::panic_any(ModelAbort);
    }
}

impl Session {
    pub(crate) fn new(limits: Limits, chooser: Chooser, seed: u64) -> Session {
        Session {
            mx: Mutex::new(State {
                threads: vec![Th::ready()],
                active: 0,
                steps: 0,
                preemptions: 0,
                children_alive: 0,
                status: None,
                violation: None,
                chooser,
                trace: Vec::new(),
                limits,
                seed,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.mx.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Picks the next thread to run. `from` is the thread releasing
    /// the grant (it is a candidate iff still `Ready`). On success the
    /// grant has moved and waiters were notified.
    fn decide(&self, st: &mut State, from: usize) -> Result<(), Stop> {
        let enabled: Vec<usize> = (0..st.threads.len())
            .filter(|&i| st.threads[i].run == Run::Ready)
            .collect();
        if enabled.is_empty() {
            if st.threads.iter().any(|t| t.run != Run::Finished) {
                return Err(Stop::Deadlock);
            }
            st.active = NO_ACTIVE;
            self.cv.notify_all();
            return Ok(());
        }
        let fresh: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|&i| !st.threads[i].yielded)
            .collect();
        if fresh.is_empty() {
            // Every runnable thread is parked in a voluntary spin-wait.
            // Branching here would square the schedule space with each
            // poll pair, and charging the switch as a preemption pins a
            // busy-waiter until the step limit; neither models anything
            // real — stutter steps of busy-waiters commute. Rotate
            // round-robin instead: deterministic, free, and every
            // waiter keeps making poll progress, so the one whose
            // condition has become true eventually runs.
            let chosen = enabled
                .iter()
                .copied()
                .find(|&i| i > from)
                .unwrap_or(enabled[0]);
            st.active = chosen;
            st.threads[chosen].yielded = false;
            self.cv.notify_all();
            return Ok(());
        }
        let mut cands = fresh;
        // Prefer continuing the current thread: the first DFS branch
        // runs each thread to its next voluntary pause, and every
        // schedule beyond it costs explicit context switches.
        if let Some(p) = cands.iter().position(|&c| c == from) {
            cands.rotate_left(p);
        }
        let continuable = cands.first() == Some(&from);
        if continuable {
            if let Some(bound) = st.limits.preemption_bound {
                if st.preemptions >= bound {
                    cands.truncate(1);
                }
            }
        }
        let branching = cands.len() > 1;
        let chosen = match &mut st.chooser {
            Chooser::Dfs(path) => path.choose_sched(&cands),
            Chooser::Random(rng) => cands[rng.next_below(cands.len() as u64) as usize],
            Chooser::Replay { decisions, pos } => {
                if branching {
                    let d = decisions.get(*pos).copied();
                    *pos += 1;
                    match d {
                        Some(Decision::Sched(t)) if cands.contains(&t) => t,
                        _ => cands[0],
                    }
                } else {
                    cands[0]
                }
            }
            Chooser::Taken => cands[0],
        };
        if branching {
            st.trace.push(Decision::Sched(chosen));
        }
        if chosen != from && continuable {
            st.preemptions += 1;
        }
        st.active = chosen;
        st.threads[chosen].yielded = false;
        self.cv.notify_all();
        Ok(())
    }

    /// Applies a `Stop`, recording a deadlock description if needed.
    fn stop_with(&self, st: &mut State, stop: Stop) {
        if st.status.is_none() {
            st.status = Some(stop);
            if stop == Stop::Deadlock && st.violation.is_none() {
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match t.run {
                        Run::Blocked(on) => Some(format!("thread {i} joined-on {on}")),
                        _ => None,
                    })
                    .collect();
                st.violation = Some(format!("model deadlock: {}", blocked.join(", ")));
            }
        }
        self.cv.notify_all();
    }

    /// The scheduling point: pause, let the scheduler pick, resume
    /// when granted. `spin` marks the caller as busy-waiting.
    pub(crate) fn yield_point(self: &Arc<Session>, me: usize, spin: bool) {
        let mut st = self.lock();
        if st.status.is_some() {
            drop(st);
            return bail();
        }
        debug_assert_eq!(st.active, me, "yield point from a non-granted thread");
        if spin {
            st.threads[me].yielded = true;
        }
        st.steps += 1;
        if st.steps > st.limits.max_steps {
            self.stop_with(&mut st, Stop::Pruned);
            drop(st);
            return bail();
        }
        if let Err(stop) = self.decide(&mut st, me) {
            self.stop_with(&mut st, stop);
            drop(st);
            return bail();
        }
        while st.active != me {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            if st.status.is_some() {
                drop(st);
                return bail();
            }
        }
    }

    /// Registers a new model thread; returns its id.
    fn register(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(Th::ready());
        st.children_alive += 1;
        st.threads.len() - 1
    }

    /// Marks `me` finished, unblocks its joiners, and hands the grant
    /// on. Children also decrement the live count.
    pub(crate) fn finish_thread(&self, me: usize, is_child: bool) {
        let mut st = self.lock();
        st.threads[me].run = Run::Finished;
        if is_child {
            st.children_alive -= 1;
        }
        for t in &mut st.threads {
            if t.run == Run::Blocked(me) {
                t.run = Run::Ready;
            }
        }
        if st.status.is_none() {
            if let Err(stop) = self.decide(&mut st, me) {
                self.stop_with(&mut st, stop);
            }
        }
        self.cv.notify_all();
    }

    /// Blocks `me` until `child` finishes (scheduler-aware join).
    pub(crate) fn join_wait(self: &Arc<Session>, me: usize, child: usize) {
        let mut st = self.lock();
        if st.status.is_some() {
            drop(st);
            return bail();
        }
        if st.threads[child].run == Run::Finished {
            return;
        }
        st.threads[me].run = Run::Blocked(child);
        st.steps += 1;
        if st.steps > st.limits.max_steps {
            self.stop_with(&mut st, Stop::Pruned);
            drop(st);
            return bail();
        }
        if let Err(stop) = self.decide(&mut st, me) {
            self.stop_with(&mut st, stop);
            drop(st);
            return bail();
        }
        while st.active != me {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            if st.status.is_some() {
                drop(st);
                return bail();
            }
        }
    }

    /// Records the first real violation and flips the session to
    /// stopping. `ModelAbort` payloads are not violations.
    pub(crate) fn record_panic(&self, who: usize, payload: &(dyn std::any::Any + Send)) {
        if payload.is::<ModelAbort>() {
            return;
        }
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut st = self.lock();
        if st.violation.is_none() {
            st.violation = Some(format!("thread {who} panicked: {msg}"));
        }
        self.stop_with(&mut st, Stop::Violation);
    }

    /// Schedule-deterministic fire/skip draw for a `one_in` chaos
    /// plan (the `model` replacement for the fail-point registry's
    /// wall-clock-ordered RNG).
    pub(crate) fn chaos_draw(&self, one_in: u64) -> bool {
        let mut st = self.lock();
        if one_in <= 1 {
            return true;
        }
        let seed = st.seed;
        let fired = match &mut st.chooser {
            Chooser::Dfs(path) => path.choose_chaos(one_in, seed),
            Chooser::Random(rng) => rng.next_below(one_in) == 0,
            Chooser::Replay { decisions, pos } => {
                let d = decisions.get(*pos).copied();
                *pos += 1;
                match d {
                    Some(Decision::Chaos(fired)) => fired,
                    _ => false,
                }
            }
            Chooser::Taken => false,
        };
        st.trace.push(Decision::Chaos(fired));
        fired
    }

    /// A deterministic "entropy" seed for thread-local RNGs of code
    /// under test (e.g. the exchanger's slot picker): a pure function
    /// of the execution seed, the thread id, and a per-thread counter,
    /// so replays reseed identically.
    pub(crate) fn entropy_seed(&self, me: usize) -> u64 {
        let mut st = self.lock();
        let ctr = st.threads[me].entropy_ctr;
        st.threads[me].entropy_ctr += 1;
        rng::mix(
            st.seed
                ^ (me as u64).wrapping_mul(0x9E6D_62D0_6F6A_9A9B)
                ^ ctr.wrapping_mul(0xD1B5_4A32_D192_ED03),
        )
    }

    /// Teardown driver, run by the explorer after the body returned
    /// or unwound: marks thread 0 finished, lets any unjoined children
    /// drain, and waits until every child OS thread has left the
    /// session. Returns the execution's outcome.
    pub(crate) fn shutdown(&self, body_panic: Option<&(dyn std::any::Any + Send)>) -> RunOutcome {
        if let Some(payload) = body_panic {
            self.record_panic(0, payload);
        }
        let mut st = self.lock();
        st.threads[0].run = Run::Finished;
        if st.status.is_none() {
            if let Err(stop) = self.decide(&mut st, 0) {
                self.stop_with(&mut st, stop);
            }
        } else {
            self.cv.notify_all();
        }
        while st.children_alive > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        RunOutcome {
            stop: st.status,
            violation: st.violation.take(),
            trace: std::mem::take(&mut st.trace),
            chooser: std::mem::take(&mut st.chooser),
        }
    }
}

/// What one execution produced (collected by the explorer).
pub(crate) struct RunOutcome {
    pub stop: Option<Stop>,
    pub violation: Option<String>,
    pub trace: Vec<Decision>,
    pub chooser: Chooser,
}

/// Runs `body` as model thread 0 of a fresh session and tears the
/// session down afterwards.
pub(crate) fn run_once(
    limits: Limits,
    chooser: Chooser,
    seed: u64,
    body: &(dyn Fn() + Sync),
) -> RunOutcome {
    let sess = Arc::new(Session::new(limits, chooser, seed));
    set_current(Some((Arc::clone(&sess), 0)));
    let result = panic::catch_unwind(AssertUnwindSafe(body));
    set_current(None);
    sess.shutdown(result.err().as_deref())
}

/// Handle to a thread spawned inside a model session (the
/// scheduler-aware analogue of [`std::thread::JoinHandle`]).
pub struct JoinHandle<T> {
    os: thread::JoinHandle<()>,
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
    sess: Arc<Session>,
}

impl<T> JoinHandle<T> {
    /// The thread's model id (as printed in replay traces; the body
    /// is thread 0, spawned threads count up from 1).
    #[must_use]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Waits — under scheduler control — for the thread to finish and
    /// returns its value.
    ///
    /// # Panics
    ///
    /// Unwinds with the session's abort sentinel if the session
    /// stopped (violation elsewhere, prune, deadlock); the explorer
    /// catches it.
    pub fn join(self) -> T {
        let (sess, me) = current().expect("join outside a model session");
        debug_assert!(Arc::ptr_eq(&sess, &self.sess), "join across sessions");
        sess.join_wait(me, self.tid);
        // The child already finished its model work; the OS join is
        // immediate and never carries a panic (the wrapper catches).
        self.os.join().expect("model thread wrapper never panics");
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("model thread finished without a value")
    }
}

/// Spawns a model thread in the calling thread's session.
///
/// The child does not run until the scheduler grants it a step, so
/// the spawn itself is invisible to the schedule: the child becomes a
/// candidate at the parent's next yield point.
///
/// # Panics
///
/// Panics if the calling thread is not inside a model session (use
/// [`crate::Explorer::explore`] to start one).
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sess, _parent) = current().expect("cso-sched: spawn outside a model session");
    let tid = sess.register();
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let os = {
        let sess = Arc::clone(&sess);
        let result = Arc::clone(&result);
        thread::Builder::new()
            .name(format!("model-{tid}"))
            .spawn(move || {
                // Wait for the first grant before touching anything.
                {
                    let mut st = sess.lock();
                    loop {
                        if st.status.is_some() {
                            // Session stopped before we ever ran.
                            drop(st);
                            sess.finish_thread(tid, true);
                            return;
                        }
                        if st.active == tid {
                            break;
                        }
                        st = sess.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                }
                set_current(Some((Arc::clone(&sess), tid)));
                let out = panic::catch_unwind(AssertUnwindSafe(f));
                set_current(None);
                match out {
                    Ok(v) => {
                        *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                    }
                    Err(payload) => sess.record_panic(tid, payload.as_ref()),
                }
                sess.finish_thread(tid, true);
            })
            .expect("failed to spawn model thread")
    };
    JoinHandle {
        os,
        tid,
        result,
        sess,
    }
}

/// Yield point hook: called before every counted register access (and
/// uncounted peek) by `cso_memory::reg` under the `model` feature.
/// No-op when the calling thread is not in a session.
pub fn yield_access() {
    if let Some((sess, me)) = current() {
        sess.yield_point(me, false);
    }
}

/// Spin hint hook: a yield point that also marks the thread as
/// busy-waiting. Returns `true` if a session absorbed the wait (the
/// caller should skip its real spinning/sleeping).
pub fn yield_spin() -> bool {
    match current() {
        Some((sess, me)) => {
            sess.yield_point(me, true);
            true
        }
        None => false,
    }
}

/// Chaos hook: schedule-deterministic fire/skip draw for a `one_in`
/// fail-point plan. `None` when no session is active (the caller
/// falls back to its own RNG).
#[must_use]
pub fn chaos_draw(one_in: u64) -> Option<bool> {
    current().map(|(sess, _)| sess.chaos_draw(one_in))
}

/// Deterministic replacement for entropy seeding of thread-local
/// RNGs. `None` when no session is active.
#[must_use]
pub fn entropy_seed() -> Option<u64> {
    current().map(|(sess, me)| sess.entropy_seed(me))
}

/// Whether the calling thread runs under a model session.
#[must_use]
pub fn active() -> bool {
    current().is_some()
}
