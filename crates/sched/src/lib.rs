//! # cso-sched — deterministic-interleaving runtime
//!
//! A loom-style controlled scheduler that drives *real* threads
//! running *production* code through exhaustively enumerated (or
//! seeded-random, or replayed) interleavings. It is the engine behind
//! the `model` feature of `cso-memory`: when that feature is on, every
//! counted register access in `cso_memory::reg` calls [`yield_access`]
//! and every spin-wait calls [`yield_spin`], turning each shared-memory
//! step into a scheduling decision this crate controls.
//!
//! ## How it works
//!
//! - **Serialization.** A [`Explorer::explore`] session runs the test
//!   body as model thread 0 and [`spawn`]s further model threads as
//!   real OS threads, but only one holds the *grant* at a time: at
//!   every yield point the running thread parks and the scheduler
//!   picks the next, so interleavings of counted accesses are fully
//!   under scheduler control. Code *between* yield points executes as
//!   one atomic block of the schedule — which is exactly the paper's
//!   cost model, where only counted base-object accesses are steps.
//! - **DFS over a `Path`.** Each execution records its branch
//!   decisions; after the body finishes, the deepest branch with an
//!   untried alternative is stepped and the body re-runs from the top
//!   (the program is its own checkpoint). Forced moves are not
//!   recorded, keeping traces short.
//! - **Bounded preemption.** An involuntary switch away from a
//!   runnable, non-spinning thread counts against a small budget
//!   (CHESS-style): most real bugs need 1–2 preemptions, and the bound
//!   turns an exponential space into a polynomial one.
//! - **Spin discipline.** A thread that reports a spin-wait is
//!   scheduled again only when no fresh thread is runnable, pruning
//!   stutter re-reads (sound for safety oracles) and guaranteeing the
//!   grant escapes uncounted busy-wait loops.
//! - **Replay.** A violation prints a dot-separated branch trace;
//!   [`Explorer::replay`] forces a new run through it, reproducing the
//!   failure deterministically.
//!
//! ## Determinism contract
//!
//! Bodies must be schedule-deterministic: no wall-clock branching, no
//! OS randomness. Under the `model` feature `cso-memory` routes its
//! entropy (`XorShift64::from_entropy`) and chaos fail-point draws
//! through [`entropy_seed`] / [`chaos_draw`], so the production
//! structures satisfy the contract unchanged. A diverging replay
//! panics with a "not schedule-deterministic" message rather than
//! exploring garbage.

mod explore;
mod path;
mod rng;
mod session;

pub use explore::{Explorer, Mode, Report, Violation};
pub use path::{format_trace, parse_trace, Decision};
pub use rng::SplitMix64;
pub use session::{active, chaos_draw, entropy_seed, spawn, yield_access, yield_spin, JoinHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    /// A deliberately racy read-modify-write: `yield_access` before
    /// each shared access stands in for the instrumented registers.
    fn racy_increment(x: &AtomicU64) {
        yield_access();
        let v = x.load(Ordering::SeqCst);
        yield_access();
        x.store(v + 1, Ordering::SeqCst);
    }

    fn lost_update_body() {
        let x = Arc::new(AtomicU64::new(0));
        let t = {
            let x = Arc::clone(&x);
            spawn(move || racy_increment(&x))
        };
        racy_increment(&x);
        t.join();
        yield_access();
        assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
    }

    #[test]
    fn exhaustive_finds_lost_update() {
        let report = Explorer::exhaustive().explore(lost_update_body);
        let v = report.assert_violation();
        assert!(v.message.contains("lost update"), "got: {}", v.message);
        assert!(!v.trace.is_empty(), "branching schedule must leave a trace");
    }

    #[test]
    fn replay_reproduces_the_violation() {
        let found = Explorer::exhaustive().explore(lost_update_body);
        let v = found.assert_violation().clone();
        let replayed = Explorer::replay(&v.trace).explore(lost_update_body);
        let rv = replayed.assert_violation();
        assert_eq!(rv.message, v.message);
        assert_eq!(rv.trace, v.trace);
    }

    #[test]
    fn zero_preemptions_cannot_find_it() {
        // With no involuntary switches each thread's read-modify-write
        // runs atomically, so the race is invisible — evidence the
        // bound really prunes and the finder above really interleaves.
        let report = Explorer::exhaustive()
            .with_preemption_bound(Some(0))
            .explore(lost_update_body);
        assert!(report.violation.is_none(), "{report}");
        assert!(report.exhausted);
    }

    #[test]
    fn correct_code_exhausts_clean() {
        let report = Explorer::exhaustive().explore(|| {
            let x = Arc::new(AtomicU64::new(0));
            let t = {
                let x = Arc::clone(&x);
                spawn(move || {
                    yield_access();
                    x.fetch_add(1, Ordering::SeqCst);
                })
            };
            yield_access();
            x.fetch_add(1, Ordering::SeqCst);
            t.join();
            yield_access();
            assert_eq!(x.load(Ordering::SeqCst), 2);
        });
        report.assert_ok();
        assert!(report.exhausted);
        assert!(report.schedules > 1, "two threads must branch");
    }

    #[test]
    fn spin_waits_terminate() {
        // The waiter spins (uncounted busy-wait) until the flag flips;
        // without the yield discipline the DFS would either hang (the
        // spinner holds the grant forever) or blow up on stutter
        // branches. With it, exploration exhausts quickly.
        let report = Explorer::exhaustive().explore(|| {
            let flag = Arc::new(AtomicBool::new(false));
            let t = {
                let flag = Arc::clone(&flag);
                spawn(move || {
                    while !flag.load(Ordering::SeqCst) {
                        assert!(yield_spin(), "must run under a session");
                    }
                })
            };
            yield_access();
            flag.store(true, Ordering::SeqCst);
            t.join();
        });
        report.assert_ok();
        assert!(report.exhausted);
    }

    #[test]
    fn random_mode_is_seed_deterministic() {
        let run = |seed| {
            Explorer::random(seed, 64)
                .explore(lost_update_body)
                .violation
                .map(|v| (v.schedule, v.trace))
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same outcome");
        assert!(a.is_some(), "64 random schedules should trip the race");
    }

    #[test]
    fn chaos_draws_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let hits = Arc::new(AtomicU64::new(0));
            let h = Arc::clone(&hits);
            Explorer::exhaustive()
                .with_seed(seed)
                .explore(move || {
                    for _ in 0..8 {
                        if chaos_draw(3) == Some(true) {
                            h.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
                .assert_ok();
            hits.load(Ordering::SeqCst)
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn entropy_is_deterministic_per_execution() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let record = {
            let seen = Arc::clone(&seen);
            move || {
                let s = entropy_seed().expect("inside a session");
                seen.lock().unwrap().push(s);
            }
        };
        Explorer::exhaustive().explore(&record).assert_ok();
        let first = seen.lock().unwrap().clone();
        seen.lock().unwrap().clear();
        Explorer::exhaustive().explore(&record).assert_ok();
        assert_eq!(*seen.lock().unwrap(), first);
    }

    #[test]
    fn hooks_are_noops_outside_sessions() {
        assert!(!active());
        yield_access(); // must not panic
        assert!(!yield_spin());
        assert_eq!(chaos_draw(2), None);
        assert_eq!(entropy_seed(), None);
    }

    #[test]
    fn unjoined_children_are_drained() {
        // The body forgets to join; teardown must still let the child
        // finish rather than leaking a parked thread.
        let report = Explorer::exhaustive().with_max_schedules(8).explore(|| {
            let _ = spawn(|| {
                yield_access();
            });
        });
        report.assert_ok();
    }
}
