//! The online span aggregator: harvested batches in, live bounded-
//! memory aggregates out.
//!
//! This is the streaming counterpart of `cso-analyze`'s post-mortem
//! pipeline, built from the same parts so the two cannot drift:
//!
//! * span reconstruction uses [`cso_analyze::spans::ThreadReplayer`] —
//!   the exact state machine `reconstruct` runs, fed incrementally
//!   (batch boundaries are invisible to the protocol);
//! * collapsed stacks use [`cso_analyze::collapse::add_span`], the
//!   same fold `cso-analyze collapse` renders;
//! * convoy and combiner-stall detection mirrors
//!   [`cso_analyze::convoy`]: tenures are paired from raw
//!   acquire/release events, a saturated run at least as long as the
//!   inferred process count is a convoy, and a combining tenure whose
//!   per-request cost exceeds 4x the median hold is a stall. The one
//!   concession to streaming is a small reorder buffer: harvested
//!   batches interleave threads slightly out of wall-clock order, so
//!   tenures sit in a 16-deep buffer sorted by start time before the
//!   run detector consumes them, and the median hold comes from the
//!   live histogram's p50 rather than an exact sort.
//!
//! Memory is bounded regardless of run length: histograms are
//! fixed-size log-bucketed arrays, counts are scalars, and the
//! collapsed-stack map is keyed by `proc x path x phase` (a few dozen
//! entries for any workload).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use cso_analyze::causal::{CausalAccumulator, CausalReport};
use cso_analyze::collapse;
use cso_analyze::log::Row;
use cso_analyze::spans::{Fed, RecoveryCounts, ThreadReplayer};
use cso_metrics::{Json, Registry};
use cso_trace::probe::{Harvested, TraceEvent};
use cso_trace::{HistSnapshot, LogHistogram};

/// Release-to-acquire gaps under this mean "the lock never went idle"
/// (mirrors `cso_analyze::convoy::DEFAULT_GAP_NS`).
const GAP_NS: u64 = 1_000;

/// A combining tenure stalls when its per-request cost exceeds this
/// multiple of the median hold (mirrors `cso_analyze::convoy`).
const STALL_FACTOR: u64 = 4;

/// Tenures buffered (sorted by start time) before the convoy run
/// detector consumes them, absorbing cross-thread arrival skew.
const REORDER_DEPTH: usize = 16;

/// The stable path order for reports.
const PATHS: [&str; 5] = ["fast", "eliminated", "locked", "combined", "combiner"];

#[derive(Debug, Clone, Copy)]
struct Tenure {
    start_ns: u64,
    end_ns: u64,
    proc_id: u32,
}

/// Streaming convoy detection over closed tenures.
#[derive(Debug, Default)]
struct ConvoyTracker {
    pending: Vec<Tenure>,
    last_end_ns: Option<u64>,
    run_len: usize,
    run_procs: Vec<u32>,
    convoys: u64,
    longest_run: usize,
}

impl ConvoyTracker {
    fn push(&mut self, tenure: Tenure, min_len: usize) {
        self.pending.push(tenure);
        if self.pending.len() > REORDER_DEPTH {
            self.pending.sort_by_key(|t| t.start_ns);
            let drain: Vec<Tenure> = self.pending.drain(..REORDER_DEPTH / 2).collect();
            for t in drain {
                self.advance(t, min_len);
            }
        }
    }

    fn advance(&mut self, tenure: Tenure, min_len: usize) {
        let saturated = self
            .last_end_ns
            .is_some_and(|last| tenure.start_ns.saturating_sub(last) <= GAP_NS);
        if saturated {
            self.run_len += 1;
            if !self.run_procs.contains(&tenure.proc_id) {
                self.run_procs.push(tenure.proc_id);
            }
        } else {
            self.close_run(min_len);
            self.run_len = 1;
            self.run_procs = vec![tenure.proc_id];
        }
        self.last_end_ns = Some(tenure.end_ns.max(self.last_end_ns.unwrap_or(0)));
    }

    fn close_run(&mut self, min_len: usize) {
        if self.run_len >= min_len {
            self.convoys += 1;
        }
        self.longest_run = self.longest_run.max(self.run_len);
        self.run_len = 0;
        self.run_procs.clear();
    }

    /// Drains the reorder buffer and closes the current run (called on
    /// snapshot so a still-saturated lock shows up without waiting for
    /// an idle gap; the run state is restored conservatively by the
    /// next push starting a fresh run).
    fn flush(&mut self, min_len: usize) -> (u64, usize) {
        self.pending.sort_by_key(|t| t.start_ns);
        let drain: Vec<Tenure> = self.pending.drain(..).collect();
        for t in drain {
            self.advance(t, min_len);
        }
        let longest_with_open = self.longest_run.max(self.run_len);
        let convoys_with_open = self.convoys + u64::from(self.run_len >= min_len);
        (convoys_with_open, longest_with_open)
    }
}

struct AggState {
    replayers: BTreeMap<u32, ThreadReplayer>,
    truncated_at_start: Vec<u32>,
    events_ingested: u64,
    batches: u64,
    lost: u64,
    spans: u64,
    malformed: u64,
    orphans: u64,
    path_hists: BTreeMap<&'static str, LogHistogram>,
    wait_hist: LogHistogram,
    hold_hist: LogHistogram,
    tenures: u64,
    stalls: u64,
    convoy: ConvoyTracker,
    open_tenures: BTreeMap<u32, (u64, Option<u64>, u32)>,
    max_proc: Option<u32>,
    event_counts: BTreeMap<String, u64>,
    stacks: BTreeMap<String, u64>,
    causal: CausalAccumulator,
    bypass: BypassTracker,
    truncated_counts: BTreeMap<u32, u64>,
    registry: Option<Registry>,
}

/// Streaming port of `cso_analyze::bypass`: each open `flag-raise(p)`
/// → `lock-acquire(p)` interval counts acquisitions by other
/// processes; the watchdog checks the running max against `n − 1`.
#[derive(Debug, Default)]
struct BypassTracker {
    open: BTreeMap<u32, u64>,
    max_bypass: u64,
    intervals: u64,
}

impl BypassTracker {
    fn on_flag_raise(&mut self, proc_id: u32) {
        self.open.entry(proc_id).or_insert(0);
    }

    fn on_lock_acquire(&mut self, proc_id: u32) {
        for (&waiter, bypasses) in &mut self.open {
            if waiter != proc_id {
                *bypasses += 1;
            }
        }
        if let Some(bypasses) = self.open.remove(&proc_id) {
            self.intervals += 1;
            self.max_bypass = self.max_bypass.max(bypasses);
        }
    }
}

impl AggState {
    fn new() -> AggState {
        AggState {
            replayers: BTreeMap::new(),
            truncated_at_start: Vec::new(),
            events_ingested: 0,
            batches: 0,
            lost: 0,
            spans: 0,
            malformed: 0,
            orphans: 0,
            path_hists: PATHS.iter().map(|&p| (p, LogHistogram::new())).collect(),
            wait_hist: LogHistogram::new(),
            hold_hist: LogHistogram::new(),
            tenures: 0,
            stalls: 0,
            convoy: ConvoyTracker::default(),
            open_tenures: BTreeMap::new(),
            max_proc: None,
            event_counts: BTreeMap::new(),
            stacks: BTreeMap::new(),
            causal: CausalAccumulator::default(),
            bypass: BypassTracker::default(),
            truncated_counts: BTreeMap::new(),
            registry: None,
        }
    }

    fn min_run_len(&self) -> usize {
        self.max_proc.map_or(2, |p| (p as usize + 1).max(2))
    }
}

/// One immutable view of everything the aggregator knows. Snapshots
/// are cheap (histogram copies + small maps); the HTTP routes take one
/// per request.
#[derive(Debug, Clone)]
pub struct ProfileSnapshot {
    /// Events ingested from harvested batches.
    pub events_ingested: u64,
    /// Harvest batches ingested.
    pub batches: u64,
    /// Events the harvester reported lost (overwritten unread).
    pub lost: u64,
    /// Completed spans.
    pub spans: u64,
    /// Operations in flight right now.
    pub open: u64,
    /// Protocol violations.
    pub malformed: u64,
    /// Events charged to truncation/loss gaps.
    pub orphans: u64,
    /// `(path label, duration histogram)` for each populated path.
    pub per_path: Vec<(&'static str, HistSnapshot)>,
    /// `flag-raise` → `lock-acquire` wait quantiles.
    pub wait: HistSnapshot,
    /// Lock tenure (hold) quantiles.
    pub hold: HistSnapshot,
    /// Closed lock tenures.
    pub tenures: u64,
    /// Saturated hand-off runs at least as long as the process count.
    pub convoys: u64,
    /// The longest saturated run seen.
    pub longest_convoy_run: u64,
    /// Combining tenures whose amortisation collapsed.
    pub stalls: u64,
    /// Crash-recovery annotations.
    pub recovery: RecoveryCounts,
    /// Event counts by label, descending.
    pub event_counts: Vec<(String, u64)>,
    /// The live probe drop gauge at snapshot time.
    pub dropped_gauge: u64,
    /// The cross-thread helped-by graph (`/causal.json`).
    pub causal: CausalReport,
    /// Worst §4.4 bypass count over closed flag→acquire intervals.
    pub max_bypass: u64,
    /// Closed flag→acquire intervals.
    pub bypass_intervals: u64,
    /// Flagged processes still waiting at snapshot time.
    pub bypass_open: u64,
    /// Distinct process ids seen (`max + 1`) — the `n` in the §4.4
    /// `n − 1` bound. 0 until a proc-carrying event arrives.
    pub procs: u64,
    /// `(thread, events lost)` per thread whose ring ever truncated.
    pub truncated_threads: Vec<(u32, u64)>,
}

/// The live aggregator. One instance per process; the harvester feeds
/// [`LiveAggregator::ingest`], the HTTP routes and the bench binary
/// read [`LiveAggregator::snapshot`].
pub struct LiveAggregator {
    inner: Mutex<AggState>,
}

impl std::fmt::Debug for LiveAggregator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveAggregator").finish_non_exhaustive()
    }
}

impl Default for LiveAggregator {
    fn default() -> Self {
        LiveAggregator::new()
    }
}

impl LiveAggregator {
    /// An empty aggregator.
    #[must_use]
    pub fn new() -> LiveAggregator {
        LiveAggregator {
            inner: Mutex::new(AggState::new()),
        }
    }

    /// Folds one harvested batch in. Events must arrive in harvest
    /// order (the harvester is the single producer); per-thread
    /// sequence order within the batch is what the state machines
    /// consume.
    pub fn ingest(&self, batch: &Harvested) {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let state = &mut *state;
        state.batches += 1;
        state.lost += batch.lost;
        // A thread that lost events mid-stream cannot trust its state
        // machine any more: desynchronise it so the gap's orphans are
        // charged to loss, and resync on the next clean span start.
        for &(thread, lost) in &batch.truncated {
            let total = state.truncated_counts.entry(thread).or_insert(0);
            *total += lost;
            if let Some(registry) = &state.registry {
                registry
                    .gauge(&format!("cso_harvest_truncated_events_thread_{thread}"))
                    .set(*total as f64);
            }
            match state.replayers.get_mut(&thread) {
                Some(replayer) => replayer.desync(),
                None => state.truncated_at_start.push(thread),
            }
        }
        for event in &batch.events {
            state.events_ingested += 1;
            let row = row_of(event);
            if let Some(p) = row.proc_id {
                state.max_proc = Some(state.max_proc.map_or(p, |m| m.max(p)));
            }
            *state.event_counts.entry(event.event.label()).or_insert(0) += 1;
            track_tenure(state, &row);
            let truncated = state.truncated_at_start.contains(&row.thread);
            let replayer = state
                .replayers
                .entry(row.thread)
                .or_insert_with(|| ThreadReplayer::new(truncated));
            match replayer.feed(&row) {
                Fed::Quiet => {}
                Fed::Span(span) => {
                    state.spans += 1;
                    let label = span.path.label();
                    if let Some(hist) = state.path_hists.get(label) {
                        hist.record_ns(span.duration_ns());
                    }
                    if let Some(wait) = span.wait_ns {
                        state.wait_hist.record_ns(wait);
                    }
                    state.causal.add_span(&span);
                    collapse::add_span(&mut state.stacks, &span);
                }
                Fed::Malformed(_) => state.malformed += 1,
                Fed::Orphan => state.orphans += 1,
            }
        }
    }

    /// Publishes harvester conservation to `registry` and keeps it
    /// published:
    ///
    /// * `cso_harvest_ingested_total` / `cso_harvest_batches_total` /
    ///   `cso_harvest_lost_total` — polled at scrape time, so the
    ///   conservation identity *ingested + lost + drop gauge = emitted*
    ///   is checkable from `/metrics` alone;
    /// * `cso_trace_ring_dropped` — the live probe drop gauge;
    /// * `cso_harvest_truncated_events_thread_<t>` — one gauge per
    ///   thread whose ring ever truncated, registered lazily when the
    ///   first loss is harvested (threads with lossless rings get no
    ///   series).
    pub fn register_metrics(self: &Arc<Self>, registry: &Registry) {
        for (name, read) in [
            (
                "cso_harvest_ingested_total",
                (|s: &AggState| s.events_ingested) as fn(&AggState) -> u64,
            ),
            ("cso_harvest_batches_total", |s: &AggState| s.batches),
            ("cso_harvest_lost_total", |s: &AggState| s.lost),
        ] {
            let agg = Arc::clone(self);
            registry.gauge_fn(name, move || {
                read(&agg.inner.lock().unwrap_or_else(|e| e.into_inner())) as f64
            });
        }
        registry.register_probe_drop_gauge();
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // Backfill truncations harvested before the registry arrived.
        for (&thread, &total) in &state.truncated_counts {
            registry
                .gauge(&format!("cso_harvest_truncated_events_thread_{thread}"))
                .set(total as f64);
        }
        state.registry = Some(registry.clone());
    }

    /// Total events ingested so far (the losslessness counter: equal
    /// to the emitted-count delta when no ring ever wrapped unread).
    #[must_use]
    pub fn ingested(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events_ingested
    }

    /// Takes a consistent snapshot of every aggregate.
    #[must_use]
    pub fn snapshot(&self) -> ProfileSnapshot {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let min_len = state.min_run_len();
        let (convoys, longest_run) = state.convoy.flush(min_len);
        let mut recovery = RecoveryCounts::default();
        let mut open = 0u64;
        for replayer in state.replayers.values() {
            let r = replayer.recovery();
            recovery.suspects += r.suspects;
            recovery.reclaimed += r.reclaimed;
            recovery.successions += r.successions;
            open += u64::from(replayer.is_open());
        }
        let mut event_counts: Vec<(String, u64)> = state
            .event_counts
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        event_counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ProfileSnapshot {
            events_ingested: state.events_ingested,
            batches: state.batches,
            lost: state.lost,
            spans: state.spans,
            open,
            malformed: state.malformed,
            orphans: state.orphans,
            per_path: PATHS
                .iter()
                .filter_map(|&p| {
                    let snap = state.path_hists.get(p)?.snapshot();
                    (snap.count > 0).then_some((p, snap))
                })
                .collect(),
            wait: state.wait_hist.snapshot(),
            hold: state.hold_hist.snapshot(),
            tenures: state.tenures,
            convoys,
            longest_convoy_run: longest_run as u64,
            stalls: state.stalls,
            recovery,
            event_counts,
            dropped_gauge: cso_trace::probe::dropped(),
            causal: state.causal.report(),
            max_bypass: state.bypass.max_bypass,
            bypass_intervals: state.bypass.intervals,
            bypass_open: state.bypass.open.len() as u64,
            procs: state.max_proc.map_or(0, |p| u64::from(p) + 1),
            truncated_threads: state
                .truncated_counts
                .iter()
                .map(|(&t, &n)| (t, n))
                .collect(),
        }
    }

    /// The collapsed-stack accumulator rendered in flamegraph input
    /// format (`stack weight` lines, nanosecond weights).
    #[must_use]
    pub fn collapsed(&self) -> String {
        let state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        collapse::render_stacks(&state.stacks)
    }
}

/// Pairs lock tenures from raw acquire/release rows (mirroring
/// `cso_analyze::convoy::analyze`) and feeds the hold histogram, the
/// stall detector, and the convoy tracker.
fn track_tenure(state: &mut AggState, row: &Row) {
    match row.name.as_str() {
        "flag-raise" => {
            if let Some(p) = row.proc_id {
                state.bypass.on_flag_raise(p);
            }
        }
        "lock-acquire" => {
            if let Some(p) = row.proc_id {
                state.bypass.on_lock_acquire(p);
            }
            state.open_tenures.insert(
                row.thread,
                (row.wall_ns, None, row.proc_id.unwrap_or(u32::MAX)),
            );
        }
        "combine-batch" => {
            if let Some(open) = state.open_tenures.get_mut(&row.thread) {
                open.1 = row.value;
            }
        }
        "lock-release" => {
            if let Some((start_ns, batch, proc_id)) = state.open_tenures.remove(&row.thread) {
                let hold = row.wall_ns.saturating_sub(start_ns);
                state.tenures += 1;
                state.hold_hist.record_ns(hold);
                if let Some(batch) = batch {
                    let median = state.hold_hist.snapshot().p50_ns;
                    let threshold = median.saturating_mul(STALL_FACTOR).max(1);
                    if hold / batch.max(1) > threshold {
                        state.stalls += 1;
                    }
                }
                let min_len = state.min_run_len();
                state.convoy.push(
                    Tenure {
                        start_ns,
                        end_ns: row.wall_ns,
                        proc_id,
                    },
                    min_len,
                );
            }
        }
        _ => {}
    }
}

fn row_of(event: &TraceEvent) -> Row {
    Row {
        seq: event.seq,
        thread: event.thread,
        wall_ns: event.wall_ns,
        name: event.event.name().to_owned(),
        site: event.event.site().map(str::to_owned),
        proc_id: event.event.proc(),
        value: event.event.value().map(u64::from),
    }
}

fn hist_json(snap: &HistSnapshot) -> Json {
    Json::obj()
        .field("count", snap.count)
        .field("mean_ns", snap.mean_ns)
        .field("p50_ns", snap.p50_ns)
        .field("p90_ns", snap.p90_ns)
        .field("p99_ns", snap.p99_ns)
        .field("max_ns", snap.max_ns)
}

impl ProfileSnapshot {
    /// The JSON document `/spans.json` serves.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let paths = self
            .per_path
            .iter()
            .map(|(label, snap)| ((*label).to_owned(), hist_json(snap)))
            .collect();
        let events = self
            .event_counts
            .iter()
            .map(|(label, count)| (label.clone(), Json::from(*count)))
            .collect();
        Json::obj()
            .field("schema", "cso-profile-live v1")
            .field(
                "harvest",
                Json::obj()
                    .field("events_ingested", self.events_ingested)
                    .field("batches", self.batches)
                    .field("lost", self.lost)
                    .field("dropped_gauge", self.dropped_gauge)
                    .field(
                        "truncated_threads",
                        Json::Obj(
                            self.truncated_threads
                                .iter()
                                .map(|(t, n)| (format!("thread_{t}"), Json::from(*n)))
                                .collect(),
                        ),
                    ),
            )
            .field(
                "spans",
                Json::obj()
                    .field("completed", self.spans)
                    .field("open", self.open)
                    .field("malformed", self.malformed)
                    .field("orphans", self.orphans),
            )
            .field("paths", Json::Obj(paths))
            .field(
                "lock",
                Json::obj()
                    .field("wait", hist_json(&self.wait))
                    .field("hold", hist_json(&self.hold))
                    .field("tenures", self.tenures)
                    .field("convoys", self.convoys)
                    .field("longest_convoy_run", self.longest_convoy_run)
                    .field("stalls", self.stalls),
            )
            .field(
                "recovery",
                Json::obj()
                    .field("suspects", self.recovery.suspects)
                    .field("reclaimed", self.recovery.reclaimed)
                    .field("successions", self.recovery.successions),
            )
            .field(
                "bypass",
                Json::obj()
                    .field("max_bypass", self.max_bypass)
                    .field("intervals", self.bypass_intervals)
                    .field("open", self.bypass_open)
                    .field("procs", self.procs),
            )
            .field(
                "causal",
                Json::obj()
                    .field("attributed", self.causal.attributed())
                    .field("attribution", self.causal.attribution())
                    .field("edges", self.causal.edges.len()),
            )
            .field("events_by_label", Json::Obj(events))
    }

    /// The human-readable text `/profile` serves.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "harvest: {} events in {} batches, {} lost, drop gauge {}",
            self.events_ingested, self.batches, self.lost, self.dropped_gauge
        );
        let _ = writeln!(
            out,
            "spans: {} completed, {} open, {} malformed, {} orphaned",
            self.spans, self.open, self.malformed, self.orphans
        );
        if !self.per_path.is_empty() {
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "path", "count", "mean_ns", "p50_ns", "p99_ns", "max_ns"
            );
            for (label, snap) in &self.per_path {
                let _ = writeln!(
                    out,
                    "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    label, snap.count, snap.mean_ns, snap.p50_ns, snap.p99_ns, snap.max_ns
                );
            }
        }
        let _ = writeln!(
            out,
            "lock: {} tenures, wait p50/p99 {}/{} ns, hold p50/p99 {}/{} ns",
            self.tenures, self.wait.p50_ns, self.wait.p99_ns, self.hold.p50_ns, self.hold.p99_ns
        );
        let _ = writeln!(
            out,
            "pathologies: {} convoys (longest run {}), {} combiner stalls",
            self.convoys, self.longest_convoy_run, self.stalls
        );
        let _ = writeln!(
            out,
            "bypass: max {} over {} closed interval(s), {} open, {} proc(s)",
            self.max_bypass, self.bypass_intervals, self.bypass_open, self.procs
        );
        let _ = writeln!(
            out,
            "causal: {} op(s) attributed over {} edge(s), attribution {:.4}",
            self.causal.attributed(),
            self.causal.edges.len(),
            self.causal.attribution()
        );
        if self.recovery.any() {
            let _ = writeln!(
                out,
                "recovery: {} suspects, {} reclaimed, {} successions",
                self.recovery.suspects, self.recovery.reclaimed, self.recovery.successions
            );
        }
        for (label, count) in self.event_counts.iter().take(12) {
            let _ = writeln!(out, "  {count:>12}  {label}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_trace::probe::Event;

    fn ev(seq: u64, thread: u32, wall_ns: u64, event: Event) -> TraceEvent {
        TraceEvent {
            thread,
            seq,
            wall_ns,
            event,
        }
    }

    fn batch(events: Vec<TraceEvent>) -> Harvested {
        Harvested {
            events,
            lost: 0,
            truncated: Vec::new(),
        }
    }

    #[test]
    fn aggregates_spans_across_batch_boundaries() {
        let agg = LiveAggregator::new();
        // One locked operation split across two harvest passes.
        agg.ingest(&batch(vec![
            ev(0, 0, 10, Event::FastAttempt),
            ev(1, 0, 20, Event::FastAbort),
            ev(2, 0, 30, Event::FlagRaise(0)),
        ]));
        agg.ingest(&batch(vec![
            ev(3, 0, 70, Event::LockAcquire(0)),
            ev(4, 0, 110, Event::LockedComplete),
            ev(5, 0, 120, Event::LockRelease(0)),
            ev(6, 1, 130, Event::FastAttempt),
            ev(7, 1, 140, Event::FastSuccess),
        ]));
        let snap = agg.snapshot();
        assert_eq!(snap.events_ingested, 8);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.spans, 2);
        assert_eq!(snap.malformed, 0);
        assert_eq!(snap.open, 0);
        assert_eq!(snap.tenures, 1);
        let locked = snap
            .per_path
            .iter()
            .find(|(l, _)| *l == "locked")
            .expect("locked path populated");
        assert_eq!(locked.1.count, 1);
        assert_eq!(snap.wait.count, 1);
        assert_eq!(snap.hold.count, 1);
        let flame = agg.collapsed();
        assert!(flame.contains("proc_0;locked;wait"), "{flame}");
        assert!(flame.contains("proc_0;locked;hold"), "{flame}");
        assert!(flame.contains("thread_1;fast"), "{flame}");
        // JSON snapshot round-trips.
        let json = snap.to_json();
        Json::parse(&json.render_pretty()).expect("valid JSON");
        assert!(snap.render_text().contains("spans: 2 completed"));
    }

    #[test]
    fn harvest_loss_desyncs_only_the_lossy_thread() {
        let agg = LiveAggregator::new();
        agg.ingest(&batch(vec![
            ev(0, 0, 10, Event::FastAttempt),
            ev(1, 1, 11, Event::FastAttempt),
            ev(2, 1, 12, Event::FastSuccess),
        ]));
        // Thread 0 lost events; its dangling completion is an orphan,
        // thread 1 keeps working normally.
        agg.ingest(&Harvested {
            events: vec![
                ev(10, 0, 50, Event::LockRelease(0)),
                ev(11, 1, 51, Event::FastAttempt),
                ev(12, 1, 52, Event::FastSuccess),
            ],
            lost: 7,
            truncated: vec![(0, 7)],
        });
        let snap = agg.snapshot();
        assert_eq!(snap.lost, 7);
        assert_eq!(snap.orphans, 1, "thread 0's dangling release is loss");
        assert_eq!(snap.malformed, 0);
        assert_eq!(snap.spans, 2, "thread 1 unaffected");
        // Thread 0 resynchronises on the next clean start.
        agg.ingest(&batch(vec![
            ev(20, 0, 60, Event::FastAttempt),
            ev(21, 0, 61, Event::FastSuccess),
        ]));
        assert_eq!(agg.snapshot().spans, 3);
    }

    #[test]
    fn convoy_and_stall_detection_fires_on_saturated_runs() {
        let agg = LiveAggregator::new();
        let mut events = Vec::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        // Two procs trade the lock back-to-back (gap 100ns < 1000ns)
        // for 40 tenures: a saturated run far longer than min_len.
        for i in 0..40u64 {
            let proc_id = (i % 2) as u32;
            let thread = proc_id;
            events.push(ev(seq, thread, now, Event::LockAcquire(proc_id)));
            seq += 1;
            now += 2_000;
            events.push(ev(seq, thread, now, Event::LockedComplete));
            seq += 1;
            events.push(ev(seq, thread, now + 1, Event::LockRelease(proc_id)));
            seq += 1;
            now += 100; // handoff gap, under GAP_NS
        }
        agg.ingest(&batch(events));
        let snap = agg.snapshot();
        assert_eq!(snap.tenures, 40);
        assert!(snap.convoys >= 1, "saturated run detected: {snap:?}");
        assert!(snap.longest_convoy_run >= 30);
        assert_eq!(snap.stalls, 0);

        // A combining tenure 100x the median hold with a tiny batch
        // stalls.
        let agg = LiveAggregator::new();
        let mut events = Vec::new();
        let mut seq = 0;
        let mut now = 0;
        for _ in 0..10 {
            events.push(ev(seq, 0, now, Event::LockAcquire(0)));
            seq += 1;
            now += 1_000;
            events.push(ev(seq, 0, now, Event::LockRelease(0)));
            seq += 1;
            now += 10_000; // idle gap: no convoy
        }
        events.push(ev(seq, 0, now, Event::LockAcquire(0)));
        seq += 1;
        events.push(ev(seq, 0, now + 1, Event::CombineBatch(2)));
        seq += 1;
        now += 400_000;
        events.push(ev(seq, 0, now, Event::LockRelease(0)));
        agg.ingest(&batch(events));
        let snap = agg.snapshot();
        assert_eq!(snap.stalls, 1, "{snap:?}");
        assert_eq!(snap.convoys, 0);
    }

    #[test]
    fn harvest_conservation_is_published_to_a_registry() {
        let agg = std::sync::Arc::new(LiveAggregator::new());
        let reg = Registry::new();
        agg.register_metrics(&reg);
        agg.ingest(&Harvested {
            events: vec![
                ev(0, 0, 1, Event::FastAttempt),
                ev(1, 0, 2, Event::FastSuccess),
            ],
            lost: 5,
            truncated: vec![(0, 5)],
        });
        let snap = reg.snapshot();
        let get = |name: &str| {
            snap.gauges
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing gauge {name}"))
                .1
        };
        assert_eq!(get("cso_harvest_ingested_total"), 2.0);
        assert_eq!(get("cso_harvest_batches_total"), 1.0);
        assert_eq!(get("cso_harvest_lost_total"), 5.0);
        assert_eq!(get("cso_harvest_truncated_events_thread_0"), 5.0);
        assert!(get("cso_trace_ring_dropped") >= 0.0);
        assert_eq!(agg.snapshot().truncated_threads, vec![(0, 5)]);

        // Late binding backfills truncations already harvested.
        let late = Registry::new();
        agg.register_metrics(&late);
        let snap = late.snapshot();
        let truncated = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "cso_harvest_truncated_events_thread_0")
            .expect("backfilled gauge")
            .1;
        assert_eq!(truncated, 5.0);
    }

    #[test]
    fn causal_edges_and_bypass_fold_into_the_snapshot() {
        let agg = LiveAggregator::new();
        agg.ingest(&batch(vec![
            // Proc 0 flags, proc 1 acquires twice before proc 0 gets
            // in: a closed interval with 2 bypasses.
            ev(0, 0, 10, Event::FlagRaise(0)),
            ev(1, 1, 11, Event::FlagRaise(1)),
            ev(2, 1, 12, Event::LockAcquire(1)),
            ev(3, 1, 13, Event::LockedComplete),
            ev(4, 1, 14, Event::LockRelease(1)),
            ev(5, 1, 15, Event::FlagRaise(1)),
            ev(6, 1, 16, Event::LockAcquire(1)),
            ev(7, 1, 17, Event::LockedComplete),
            ev(8, 1, 18, Event::LockRelease(1)),
            ev(9, 0, 20, Event::LockAcquire(0)),
            ev(10, 0, 21, Event::LockedComplete),
            ev(11, 0, 22, Event::LockRelease(0)),
            // A combined op on thread 2, served by thread 9's combiner.
            ev(12, 2, 30, Event::RecordPost),
            ev(13, 2, 40, Event::HelpedByCombiner(9)),
            ev(14, 2, 41, Event::CombinedComplete),
        ]));
        let snap = agg.snapshot();
        assert_eq!(snap.max_bypass, 2);
        assert_eq!(snap.bypass_intervals, 3);
        assert_eq!(snap.bypass_open, 0);
        assert_eq!(snap.procs, 2);
        assert_eq!(snap.causal.combined, (1, 1));
        assert_eq!(snap.causal.attributed(), 1);
        assert!((snap.causal.attribution() - 1.0).abs() < f64::EPSILON);
        let edge = snap.causal.edges[0];
        assert_eq!((edge.helper, edge.owner, edge.count), (9, 2, 1));
        let text = snap.render_text();
        assert!(
            text.contains("bypass: max 2 over 3 closed interval(s)"),
            "{text}"
        );
        assert!(text.contains("causal: 1 op(s) attributed"), "{text}");
        Json::parse(&snap.to_json().render_pretty()).expect("valid JSON");
        Json::parse(&snap.causal.to_json().render_pretty()).expect("valid causal JSON");
    }

    #[test]
    fn empty_aggregator_serves_empty_but_valid_output() {
        let agg = LiveAggregator::new();
        let snap = agg.snapshot();
        assert_eq!(snap.events_ingested, 0);
        assert_eq!(snap.spans, 0);
        assert!(snap.per_path.is_empty());
        Json::parse(&snap.to_json().render_pretty()).expect("valid JSON");
        assert_eq!(agg.collapsed(), "");
        assert_eq!(agg.ingested(), 0);
    }
}
