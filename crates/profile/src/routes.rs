//! Live HTTP routes for [`cso_metrics::MetricsServer`].
//!
//! [`profile_routes`] packages a [`LiveAggregator`] as three extra
//! endpoints served on the same port as `/metrics`:
//!
//! | route | content | body |
//! |---|---|---|
//! | `/profile` | `text/plain` | human-readable live profile ([`ProfileSnapshot::render_text`]) |
//! | `/spans.json` | `application/json` | the full snapshot ([`ProfileSnapshot::to_json`]) |
//! | `/flamegraph` | `text/plain` | collapsed stacks (pipe into `flamegraph.pl`) |
//! | `/causal.json` | `application/json` | the cross-thread helped-by graph ([`cso_analyze::causal::CausalReport::to_json`]) |
//!
//! ```no_run
//! use std::sync::Arc;
//! use cso_metrics::{MetricsServer, Registry};
//! use cso_profile::{Harvester, profile_routes};
//!
//! let harvester = Harvester::start();
//! let server = MetricsServer::bind_with_routes(
//!     Registry::new(),
//!     "127.0.0.1:0",
//!     profile_routes(harvester.aggregator()),
//! ).expect("bind");
//! println!("curl http://{}/profile", server.addr());
//! ```

use std::sync::Arc;

use cso_metrics::Routes;

use crate::aggregate::LiveAggregator;

/// Builds the `/profile`, `/spans.json`, `/flamegraph` and
/// `/causal.json` route table over a shared aggregator (each request
/// takes a fresh snapshot).
#[must_use]
pub fn profile_routes(aggregator: Arc<LiveAggregator>) -> Routes {
    let profile = Arc::clone(&aggregator);
    let spans = Arc::clone(&aggregator);
    let flame = Arc::clone(&aggregator);
    let causal = aggregator;
    Routes::new()
        .add("/profile", move || {
            (
                "text/plain; charset=utf-8".to_owned(),
                profile.snapshot().render_text(),
            )
        })
        .add("/spans.json", move || {
            (
                "application/json".to_owned(),
                spans.snapshot().to_json().render_pretty(),
            )
        })
        .add("/flamegraph", move || {
            ("text/plain; charset=utf-8".to_owned(), flame.collapsed())
        })
        .add("/causal.json", move || {
            (
                "application/json".to_owned(),
                causal.snapshot().causal.to_json().render_pretty(),
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_trace::SiteClass;

    #[test]
    fn routes_cover_the_four_profile_endpoints() {
        let routes = profile_routes(Arc::new(LiveAggregator::new()));
        let paths = routes.paths();
        assert_eq!(
            paths,
            vec!["/profile", "/spans.json", "/flamegraph", "/causal.json"]
        );
    }

    /// The probe-site tables published by `cso-core` and `cso-locks`
    /// must stay in sync with the causal taxonomy: every class a table
    /// names parses, and every [`SiteClass`] is represented by at least
    /// one real probe site — otherwise the causal scanner would rank a
    /// class no instrumented code can ever hit.
    #[test]
    fn probe_site_tables_match_the_causal_taxonomy() {
        let tables: [(&str, &[(&str, &str)]); 3] = [
            ("cso-core", cso_core::PROBE_SITES),
            ("cso-locks", cso_locks::PROBE_SITES),
            ("cso-stack", cso_stack::PROBE_SITES),
        ];
        let mut seen = Vec::new();
        for (owner, table) in tables {
            for &(site, class) in table {
                assert!(!site.is_empty(), "{owner}: empty site name");
                if class == "-" {
                    continue;
                }
                let parsed = SiteClass::parse(class)
                    .unwrap_or_else(|| panic!("{owner}: site {site} names unknown class {class}"));
                if !seen.contains(&parsed) {
                    seen.push(parsed);
                }
            }
        }
        for class in SiteClass::ALL {
            assert!(
                seen.contains(&class),
                "no probe site in any table maps to class {}",
                class.name()
            );
        }
    }

    /// Every site a table names must be a real event name, so the
    /// tables cannot drift from the probe taxonomy silently.
    #[test]
    fn probe_site_names_are_real_event_names() {
        let known = [
            "fast-attempt",
            "fast-abort",
            "fast-success",
            "cas-fail",
            "contention-raise",
            "contention-clear",
            "lock-acquire",
            "lock-release",
            "lock-handoff",
            "turn-advance",
            "helping-write",
            "fail-point",
            "locked-complete",
            "slow-timeout",
            "slow-poisoned",
            "record-post",
            "record-handoff",
            "combine-batch",
            "combined-complete",
            "record-poisoned",
            "flag-raise",
            "elim-attempt",
            "eliminated-complete",
            "suspect-raised",
            "record-reclaimed",
            "lock-succeeded",
            "helped-by-combiner",
            "helped-by-partner",
            "handoff-from",
            "custody-from",
        ];
        for table in [
            cso_core::PROBE_SITES,
            cso_locks::PROBE_SITES,
            cso_stack::PROBE_SITES,
        ] {
            for &(site, _) in table {
                assert!(known.contains(&site), "unknown probe site name: {site}");
            }
        }
    }

    /// `cso_analyze::spans::HelpKind` mirrors `cso_trace::HelpKind`
    /// without a dependency edge; this test is the sync contract: the
    /// labels and the event names the analyzer parses must match what
    /// the tracer emits.
    #[test]
    fn help_kind_taxonomies_stay_in_sync() {
        use cso_analyze::spans::HelpKind as AnalyzeKind;
        use cso_trace::HelpKind as TraceKind;
        assert_eq!(AnalyzeKind::ALL.len(), TraceKind::ALL.len());
        for (a, t) in AnalyzeKind::ALL.iter().zip(TraceKind::ALL.iter()) {
            assert_eq!(a.label(), t.name(), "kind label drift");
        }
    }
}
