//! # `cso-profile` — continuous profiling for contention-sensitive objects
//!
//! `cso-trace` records into fixed per-thread rings, so a long run
//! overwrites its own history; `cso-analyze` replays captures after
//! the fact. This crate closes the gap between the two with four
//! pieces that work while the workload runs:
//!
//! * [`harvest::Harvester`] — a background thread that drains every
//!   probe ring (via `cso_trace::probe::harvest`) faster than the
//!   rings wrap, making arbitrarily long traces lossless: the drop
//!   gauge stays 0 and every event reaches the aggregator exactly
//!   once;
//! * [`aggregate::LiveAggregator`] — the streaming port of
//!   `cso_analyze::spans`: each harvested batch feeds per-thread
//!   [`cso_analyze::spans::ThreadReplayer`] state machines, and the
//!   completed spans fold into bounded-memory aggregates — per-path
//!   latency histograms, lock wait/hold quantiles, convoy and
//!   combiner-stall detection, recovery counts, and collapsed stacks;
//! * [`causal`] — a coz-style *causal* (what-if) profiler: to ask
//!   "how much would speeding up site class X help?", it delays every
//!   *other* probe-site class by a calibrated amount and compares
//!   throughput against an everything-delayed baseline. The class
//!   whose exclusion buys the most virtual speedup is the bottleneck;
//! * [`routes`] — `/profile`, `/spans.json` and `/flamegraph`
//!   handlers for [`cso_metrics::MetricsServer`], serving the live
//!   aggregate over the same port as `/metrics`.
//!
//! Everything is std-only and compiles without the `trace` feature —
//! the harvester then drains empty rings and the causal injector is
//! inert, so embedding the profiler costs nothing in untraced builds.

#![warn(missing_docs)]

pub mod aggregate;
pub mod causal;
pub mod harvest;
pub mod routes;

pub use aggregate::{LiveAggregator, ProfileSnapshot};
pub use causal::{CausalConfig, CausalReport, SiteGain};
pub use harvest::Harvester;
pub use routes::profile_routes;

/// Serializes tests that touch the process-global probe rings or the
/// causal injector (the rings have a single logical consumer).
#[cfg(all(test, feature = "trace"))]
fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
