//! Causal ("what-if") profiling over the probe-site taxonomy.
//!
//! Ordinary profiles answer *where time goes*; a causal profile
//! answers *what would happen to throughput if this got faster* —
//! which is the question that matters for a concurrent object, where
//! time spent spinning on `FLAG` may or may not bound end-to-end
//! progress. The technique is Curtsinger & Berger's *coz* virtual
//! speedup, inverted for injection: we cannot magically speed a site
//! up, but we **can slow every other site down** by a calibrated delay,
//! which is equivalent up to a time rescale.
//!
//! Concretely, for each [`SiteClass`] (CAS retry, FLAG wait, lock
//! handoff, combining) the scanner:
//!
//! 1. measures baseline throughput with **all** classes delayed by
//!    `delay_ns` (via [`cso_trace::probe::set_causal_delays`] — one
//!    relaxed load per probe when disarmed, a busy-wait when armed);
//! 2. measures throughput with every class *except the candidate*
//!    delayed — i.e. the candidate virtually sped up;
//! 3. ranks classes by [`SiteGain::virtual_speedup`], the relative
//!    throughput gain its exclusion bought.
//!
//! The class with the largest gain *bounds* throughput: making it
//! faster would translate to end-to-end improvement, while speeding up
//! a low-ranked class would only shift waiting elsewhere.
//!
//! ## Caveats
//!
//! * Delays busy-wait (never sleep) so the scheduler cannot absorb
//!   them, but on an oversubscribed box spinning still yields the CPU
//!   at preemption granularity — use delays well above scheduler noise
//!   (the 5 µs default) and windows long enough to average it out.
//! * The injected delay must be comparable to the real per-site cost
//!   it stands in for; gains are relative rankings, not predicted
//!   percentages.
//! * Classes that never fire in the workload rank last with gain ~0 by
//!   construction (their exclusion changes nothing).

use std::time::{Duration, Instant};

use cso_metrics::Json;
use cso_trace::probe;
use cso_trace::SiteClass;

/// Scan parameters.
#[derive(Debug, Clone, Copy)]
pub struct CausalConfig {
    /// How long each throughput measurement runs.
    pub window: Duration,
    /// Dead time after re-arming delays before measuring (lets
    /// in-flight operations finish under the new regime).
    pub settle: Duration,
    /// The injected per-probe delay. Must dominate scheduler noise;
    /// the default is 5 µs.
    pub delay_ns: u32,
    /// How many times the baseline-plus-each-class window sequence
    /// repeats (measurements are summed). Rounds interleave the
    /// candidates with fresh baselines, so a monotonic throughput
    /// drift across the scan (warm-up, frequency scaling, a co-located
    /// job) averages out instead of favouring whichever class happened
    /// to be measured last. Clamped to at least 1.
    pub rounds: u32,
}

impl Default for CausalConfig {
    fn default() -> CausalConfig {
        CausalConfig {
            window: Duration::from_millis(150),
            settle: Duration::from_millis(10),
            delay_ns: 5_000,
            rounds: 2,
        }
    }
}

/// One candidate bottleneck's measurement.
#[derive(Debug, Clone, Copy)]
pub struct SiteGain {
    /// The probe-site class that was virtually sped up.
    pub class: SiteClass,
    /// Operations completed in the window with this class *excluded*
    /// from delay injection (everything else delayed).
    pub excluded_ops: u64,
}

impl SiteGain {
    /// Relative throughput gain over `baseline_ops` (all classes
    /// delayed): `excluded / baseline - 1`. The class with the largest
    /// virtual speedup bounds throughput.
    #[must_use]
    pub fn virtual_speedup(&self, baseline_ops: u64) -> f64 {
        if baseline_ops == 0 {
            0.0
        } else {
            self.excluded_ops as f64 / baseline_ops as f64 - 1.0
        }
    }
}

/// A completed causal scan: per-class gains ranked by virtual speedup.
#[derive(Debug, Clone)]
pub struct CausalReport {
    /// The injected delay used throughout.
    pub delay_ns: u32,
    /// The measurement window used throughout.
    pub window: Duration,
    /// Rounds the per-class measurements were summed over.
    pub rounds: u32,
    /// Operations completed with **no** delays armed (context only —
    /// the ratio to `baseline_ops` shows how much signal the injection
    /// added).
    pub undelayed_ops: u64,
    /// Operations completed with **all** classes delayed.
    pub baseline_ops: u64,
    /// Per-class measurements, descending by virtual speedup (the
    /// first entry is the inferred bottleneck).
    pub gains: Vec<SiteGain>,
}

impl CausalReport {
    /// The inferred bottleneck: the class whose virtual speedup is
    /// largest.
    #[must_use]
    pub fn bottleneck(&self) -> Option<SiteClass> {
        self.gains.first().map(|g| g.class)
    }

    /// Classes in rank order, best candidate first.
    #[must_use]
    pub fn ranking(&self) -> Vec<SiteClass> {
        self.gains.iter().map(|g| g.class).collect()
    }

    /// The JSON document embedded in BENCH output.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let gains = self
            .gains
            .iter()
            .map(|g| {
                (
                    g.class.name().to_owned(),
                    Json::obj()
                        .field("excluded_ops", g.excluded_ops)
                        .field("virtual_speedup", g.virtual_speedup(self.baseline_ops)),
                )
            })
            .collect();
        Json::obj()
            .field("delay_ns", u64::from(self.delay_ns))
            .field("window_ms", self.window.as_millis() as u64)
            .field("rounds", u64::from(self.rounds))
            .field("undelayed_ops", self.undelayed_ops)
            .field("baseline_ops", self.baseline_ops)
            .field(
                "ranking",
                Json::Arr(
                    self.gains
                        .iter()
                        .map(|g| Json::from(g.class.name()))
                        .collect(),
                ),
            )
            .field("gains", Json::Obj(gains))
    }

    /// A human-readable ranking table.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "causal scan: {} ns/probe delay, {} x {} ms windows, baseline {} ops (undelayed {})",
            self.delay_ns,
            self.rounds,
            self.window.as_millis(),
            self.baseline_ops,
            self.undelayed_ops
        );
        for (rank, gain) in self.gains.iter().enumerate() {
            let _ = writeln!(
                out,
                "  #{:<2} {:<14} {:>12} ops  {:>+8.1}% virtual speedup",
                rank + 1,
                gain.class.name(),
                gain.excluded_ops,
                gain.virtual_speedup(self.baseline_ops) * 100.0
            );
        }
        out
    }
}

/// Disarms injection on drop, so a panicking workload cannot leave the
/// process permanently delayed.
struct Disarm;

impl Drop for Disarm {
    fn drop(&mut self) {
        probe::clear_causal_delays();
    }
}

/// Runs a causal scan against a live workload.
///
/// `ops` must return a monotonic count of completed operations (e.g. a
/// relaxed load of a shared counter the worker threads bump); each
/// window measures its delta. The workload must keep running for the
/// duration of the scan: `1 + rounds x (1 + |classes|)` windows plus
/// settle times.
///
/// Injection is disarmed on return, including on panic.
pub fn scan(mut ops: impl FnMut() -> u64, config: &CausalConfig) -> CausalReport {
    let _disarm = Disarm;
    let mut window = |mask: u32| -> u64 {
        probe::set_causal_delays(mask, config.delay_ns);
        std::thread::sleep(config.settle);
        let start_ops = ops();
        let start = Instant::now();
        std::thread::sleep(config.window);
        let elapsed = start.elapsed().as_secs_f64();
        let delta = ops().saturating_sub(start_ops);
        // Normalize to the nominal window so scheduler-stretched
        // windows (sleep overshoot on a loaded box) stay comparable.
        (delta as f64 * config.window.as_secs_f64() / elapsed.max(1e-9)).round() as u64
    };
    let undelayed_ops = window(0);
    let mut baseline_ops = 0u64;
    let mut excluded = [0u64; SiteClass::ALL.len()];
    for _ in 0..config.rounds.max(1) {
        baseline_ops += window(SiteClass::mask_all());
        for (slot, class) in excluded.iter_mut().zip(SiteClass::ALL) {
            *slot += window(SiteClass::mask_all() & !class.bit());
        }
    }
    let mut gains: Vec<SiteGain> = SiteClass::ALL
        .iter()
        .zip(excluded)
        .map(|(&class, excluded_ops)| SiteGain {
            class,
            excluded_ops,
        })
        .collect();
    gains.sort_by(|a, b| {
        b.excluded_ops
            .cmp(&a.excluded_ops)
            .then_with(|| a.class.name().cmp(b.class.name()))
    });
    CausalReport {
        delay_ns: config.delay_ns,
        window: config.window,
        rounds: config.rounds.max(1),
        undelayed_ops,
        baseline_ops,
        gains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_ranks_by_excluded_ops_and_renders() {
        let report = CausalReport {
            delay_ns: 5_000,
            window: Duration::from_millis(100),
            rounds: 1,
            undelayed_ops: 10_000,
            baseline_ops: 1_000,
            gains: vec![
                SiteGain {
                    class: SiteClass::FlagWait,
                    excluded_ops: 4_000,
                },
                SiteGain {
                    class: SiteClass::CasRetry,
                    excluded_ops: 1_100,
                },
            ],
        };
        assert_eq!(report.bottleneck(), Some(SiteClass::FlagWait));
        assert_eq!(
            report.ranking(),
            vec![SiteClass::FlagWait, SiteClass::CasRetry]
        );
        let top = report.gains[0].virtual_speedup(report.baseline_ops);
        assert!((top - 3.0).abs() < 1e-9, "{top}");
        assert!(report.render_text().contains("flag-wait"));
        Json::parse(&report.to_json().render_pretty()).expect("valid JSON");
    }

    #[test]
    fn zero_baseline_never_divides_by_zero() {
        let gain = SiteGain {
            class: SiteClass::Combining,
            excluded_ops: 50,
        };
        assert_eq!(gain.virtual_speedup(0), 0.0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn scan_ranks_the_class_the_workload_actually_hits() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Arc;

        let _serial = crate::test_serial();
        // A synthetic workload that emits one flag-wait-class probe per
        // operation: delaying FlagWait throttles it, delaying anything
        // else does not, so excluding FlagWait must win the ranking.
        let stop = Arc::new(AtomicBool::new(false));
        let ops = Arc::new(AtomicU64::new(0));
        let worker = {
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    cso_trace::probe!(cso_trace::Event::LockAcquire(0));
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        let config = CausalConfig {
            window: Duration::from_millis(60),
            settle: Duration::from_millis(5),
            delay_ns: 20_000,
            rounds: 1,
        };
        let counter = Arc::clone(&ops);
        let report = scan(move || counter.load(Ordering::Relaxed), &config);
        stop.store(true, Ordering::Release);
        worker.join().expect("worker");
        assert_eq!(probe::causal_delays(), None, "scan disarms on return");
        assert_eq!(
            report.bottleneck(),
            Some(SiteClass::FlagWait),
            "{}",
            report.render_text()
        );
        // Excluding the hot class recovers a large fraction of the
        // undelayed rate; the baseline (everything delayed) is far
        // slower.
        assert!(report.baseline_ops < report.gains[0].excluded_ops);
        probe::clear();
    }
}
