//! The background ring harvester.
//!
//! `cso-trace`'s per-thread rings hold 4096 events each; anything
//! older is overwritten and counted dropped. The
//! [`Harvester`] turns that bounded window into a lossless stream: a
//! background thread calls [`cso_trace::probe::harvest`] on a fixed
//! cadence, feeding each drained batch to a [`LiveAggregator`] *before*
//! the rings wrap. Harvested events are not drops — the drain advances
//! each ring's consumed watermark — so as long as
//!
//! ```text
//! per-thread event rate x cadence  <  RING_CAPACITY
//! ```
//!
//! the drop gauge reads 0 for the whole run, however long it is. The
//! default cadence (5 ms against 4096-slot rings) keeps up with ~800k
//! events/sec/thread, far above any real probe rate; the harvest pass
//! itself is a read of at most one ring's worth per thread, so overhead
//! scales with the event rate, not with run length.
//!
//! Stopping the harvester performs one final drain, so the tail of the
//! stream reaches the aggregator too.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cso_trace::probe;

use crate::aggregate::LiveAggregator;

/// The default harvest cadence: comfortable margin against 4096-slot
/// rings at any plausible probe rate.
pub const DEFAULT_CADENCE: Duration = Duration::from_millis(5);

/// A background thread draining every probe ring into a
/// [`LiveAggregator`]. Dropping it stops the thread after one final
/// drain.
#[derive(Debug)]
pub struct Harvester {
    aggregator: Arc<LiveAggregator>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Harvester {
    /// Starts harvesting into a fresh aggregator every
    /// [`DEFAULT_CADENCE`].
    #[must_use]
    pub fn start() -> Harvester {
        Harvester::start_with(Arc::new(LiveAggregator::new()), DEFAULT_CADENCE)
    }

    /// Starts harvesting into `aggregator` every `cadence`.
    ///
    /// The harvester is the rings' single consumer while it runs: a
    /// concurrent [`cso_trace::probe::collect`] only sees the
    /// not-yet-harvested tail. Run one harvester at a time.
    #[must_use]
    pub fn start_with(aggregator: Arc<LiveAggregator>, cadence: Duration) -> Harvester {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let agg = Arc::clone(&aggregator);
        let handle = std::thread::Builder::new()
            .name("cso-profile-harvest".to_owned())
            .spawn(move || loop {
                // Read the stop flag *before* draining, and only break
                // after a pass that began with it set. A pass already in
                // flight when stop lands may have read the ring heads
                // before the caller's final events were published;
                // treating it as the final drain would strand that tail
                // uncounted. The Acquire load pairs with the Release
                // store in `stop_and_join`, so a pass that observes the
                // flag also observes every event published before the
                // caller asked to stop.
                let stopping = stop_flag.load(Ordering::Acquire);
                let batch = probe::harvest();
                if !batch.events.is_empty() || batch.lost > 0 {
                    agg.ingest(&batch);
                }
                if stopping {
                    break;
                }
                std::thread::park_timeout(cadence);
            })
            .expect("spawn harvest thread");
        Harvester {
            aggregator,
            stop,
            handle: Some(handle),
        }
    }

    /// The aggregator this harvester feeds (share it with
    /// [`crate::profile_routes`] or read snapshots directly).
    #[must_use]
    pub fn aggregator(&self) -> Arc<LiveAggregator> {
        Arc::clone(&self.aggregator)
    }

    /// Stops the harvest thread after one final drain and returns the
    /// aggregator, now holding the complete stream.
    pub fn stop(mut self) -> Arc<LiveAggregator> {
        self.stop_and_join();
        Arc::clone(&self.aggregator)
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        handle.thread().unpark();
        let _ = handle.join();
    }
}

impl Drop for Harvester {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harvester_starts_and_stops_cleanly_without_traffic() {
        let harvester = Harvester::start();
        let agg = harvester.stop();
        // Without the trace feature the rings are empty; with it, other
        // tests may have recorded — either way the harvester must not
        // hang or panic, and the aggregator must serve a snapshot.
        let _ = agg.snapshot();
    }

    #[cfg(feature = "trace")]
    #[test]
    fn harvester_makes_overflowing_rings_lossless() {
        // The global rings are process-wide: serialize against the
        // causal test via the shared lock.
        let _serial = crate::test_serial();
        probe::clear();
        let before = probe::emitted();
        let agg = Arc::new(LiveAggregator::new());
        let harvester = Harvester::start_with(Arc::clone(&agg), Duration::from_millis(1));
        // Emit far more than one ring capacity, paced so the harvester
        // keeps up even on a single-CPU box.
        let rounds = 64u64;
        let per_round = 1024u64; // rounds * per_round = 16x capacity
        for _ in 0..rounds {
            for _ in 0..per_round / 2 {
                cso_trace::probe!(cso_trace::Event::FastAttempt);
                cso_trace::probe!(cso_trace::Event::FastSuccess);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let agg = harvester.stop();
        let emitted = probe::emitted() - before;
        assert!(emitted >= rounds * per_round);
        assert_eq!(probe::dropped(), 0, "harvester kept pace: no drops");
        let snap = agg.snapshot();
        assert_eq!(snap.lost, 0);
        assert_eq!(
            agg.ingested(),
            emitted,
            "every emitted event reached the aggregator exactly once"
        );
        assert_eq!(snap.spans, rounds * per_round / 2);
        probe::clear();
    }
}
