//! The `/flamegraph` endpoint's output contract: every line must
//! round-trip through the collapsed-stack grammar (`frame;frame;...
//! weight`) that `flamegraph.pl` / `inferno` parse. Frames reaching
//! the accumulator pass through `cso_analyze::collapse::escape_frame`,
//! so even hostile frame names cannot produce a line that splits
//! wrong.

use std::collections::BTreeMap;

use cso_analyze::collapse::{escape_frame, render_stacks};

/// Splits one collapsed line back into (frames, weight) exactly the
/// way downstream flamegraph tooling does.
fn parse_line(line: &str) -> (Vec<&str>, u64) {
    let (stack, weight) = line.rsplit_once(' ').expect("`stack weight` shape");
    (
        stack.split(';').collect(),
        weight.parse().expect("numeric weight"),
    )
}

#[test]
fn hostile_frame_names_round_trip_through_the_grammar() {
    let hostile = [
        "evil;frame",
        "frame with spaces",
        "tab\there",
        "newline\nframe",
        "mix;of them\tall",
    ];
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for (i, name) in hostile.iter().enumerate() {
        let stack = format!("{};{}", escape_frame(name), escape_frame("hold phase"));
        stacks.insert(stack, (i as u64 + 1) * 10);
    }
    let rendered = render_stacks(&stacks);
    let mut seen = 0;
    for line in rendered.lines() {
        let (frames, weight) = parse_line(line);
        assert_eq!(
            frames.len(),
            2,
            "escaping preserved the frame count: {line}"
        );
        for frame in &frames {
            assert!(!frame.is_empty(), "{line}");
            assert!(!frame.contains(';'), "{line}");
            assert!(!frame.chars().any(char::is_whitespace), "{line}");
        }
        assert!(weight > 0);
        seen += 1;
    }
    assert_eq!(seen, hostile.len(), "no two hostile names collapsed away");
}

#[test]
fn live_collapsed_output_parses_line_by_line() {
    use cso_profile::LiveAggregator;
    use cso_trace::probe::{Event, Harvested, TraceEvent};

    let agg = LiveAggregator::new();
    let mk = |seq, thread, wall_ns, event| TraceEvent {
        thread,
        seq,
        wall_ns,
        event,
    };
    agg.ingest(&Harvested {
        events: vec![
            mk(0, 0, 0, Event::FastAttempt),
            mk(1, 0, 10, Event::FastSuccess),
            mk(2, 1, 0, Event::FlagRaise(1)),
            mk(3, 1, 40, Event::LockAcquire(1)),
            mk(4, 1, 90, Event::LockedComplete),
            mk(5, 1, 100, Event::LockRelease(1)),
        ],
        lost: 0,
        truncated: Vec::new(),
    });
    let rendered = agg.collapsed();
    assert!(!rendered.is_empty());
    for line in rendered.lines() {
        let (frames, _) = parse_line(line);
        assert!(!frames.is_empty());
        for frame in frames {
            assert!(!frame.is_empty(), "{line}");
            assert!(!frame.chars().any(char::is_whitespace), "{line}");
        }
    }
}
