//! Cross-thread causal edges through the combining slow path: an
//! operation executed by another thread's combiner tenure must carry a
//! `helped-by-combiner` annotation naming that thread, and a thread
//! that combines for itself must not fabricate one.
#![cfg(feature = "trace")]

mod common;

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;

use common::{Add, FlakyCounter};
use cso_core::{ContentionSensitive, CsConfig};
use cso_locks::TasLock;
use cso_trace::{probe, Event};

/// The probe rings are process-global; live tests serialize.
fn serial() -> MutexGuard<'static, ()> {
    static M: Mutex<()> = Mutex::new(());
    M.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Every slow-path operation goes through combining (no fast path to
/// short-circuit the scenario).
fn combining_only() -> CsConfig {
    CsConfig {
        fast_path: false,
        adaptive_gate: false,
        ..CsConfig::COMBINING
    }
}

#[test]
fn combined_completion_names_the_combiners_thread() {
    let _serial = serial();
    probe::clear();
    let cs = Arc::new(ContentionSensitive::with_config(
        FlakyCounter::new(),
        TasLock::new(),
        2,
        combining_only(),
    ));

    // Thread A wins the lock and blocks mid-tenure at the gate...
    cs.inner().gate.close();
    let a = {
        let cs = Arc::clone(&cs);
        thread::spawn(move || {
            cs.apply(0, &Add(1));
            probe::thread_id()
        })
    };
    while cs.inner().gate.waiting() == 0 {
        thread::yield_now();
    }

    // ...while thread B posts its record and spins on the held lock.
    // B's `record-post` probe is the signal that the record is up.
    let posted = probe::emitted();
    let b = {
        let cs = Arc::clone(&cs);
        thread::spawn(move || {
            cs.apply(1, &Add(2));
            probe::thread_id()
        })
    };
    while probe::emitted() == posted {
        thread::yield_now();
    }

    // Released, A's sweep claims and executes B's record.
    cs.inner().gate.open();
    let a_tid = a.join().unwrap();
    let b_tid = b.join().unwrap();

    let trace = probe::collect();
    let edge = trace
        .events
        .iter()
        .find(|e| matches!(e.event, Event::HelpedByCombiner(_)))
        .expect("the served operation records a helped-by edge");
    assert_eq!(edge.event, Event::HelpedByCombiner(a_tid));
    assert_eq!(edge.thread, b_tid, "the edge sits on the owner's thread");
}

#[test]
fn a_thread_combining_for_itself_records_no_edge() {
    let _serial = serial();
    probe::clear();
    let cs =
        ContentionSensitive::with_config(FlakyCounter::new(), TasLock::new(), 2, combining_only());
    // Solo: the poster always wins the lock, retracts its own record,
    // and is its own combiner — nobody helped.
    for i in 1..=4 {
        assert_eq!(cs.apply(0, &Add(1)), i);
    }
    let trace = probe::collect();
    assert!(
        !trace
            .events
            .iter()
            .any(|e| matches!(e.event, Event::HelpedByCombiner(_))),
        "self-combining must not fabricate a helped-by edge"
    );
}
