//! Panic-safety and deadline tests for the Figure 3 slow path — no
//! `chaos` feature needed: the faults come from a scriptable object
//! ([`common::FlakyCounter`]) rather than injected fail points.
//!
//! The §5 caveat these tests probe: a process that dies between
//! lines 06 and 12 of Figure 3 leaves `CONTENTION` raised and the
//! lock held. The `SlowGuard` must undo both on unwind, and
//! `try_apply_for` must bound the wait when the holder never returns.

mod common;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use common::{Add, FlakyCounter};
use cso_core::{ContentionSensitive, CsConfig, CsError};
use cso_locks::TasLock;
use cso_memory::backoff::Deadline;

fn make(n: usize) -> ContentionSensitive<FlakyCounter, TasLock> {
    ContentionSensitive::new(FlakyCounter::new(), TasLock::new(), n)
}

#[test]
fn panic_under_the_lock_is_survived_by_everyone_else() {
    let cs = Arc::new(make(4));
    // One abort pushes the victim off the fast path; the next attempt
    // (now under the lock) panics.
    cs.inner().abort_next(1);
    cs.inner().panic_next();
    let result = catch_unwind(AssertUnwindSafe(|| cs.apply(0, &Add(5))));
    assert!(result.is_err(), "the injected panic must propagate");
    assert_eq!(cs.fault_stats().poisoned, 1);
    assert_eq!(cs.inner().value(), 0, "the poisoned op must have no effect");

    // CONTENTION was restored: a contention-free op takes the fast path.
    assert_eq!(cs.apply(1, &Add(3)), 3);
    assert_eq!(cs.stats().fast, 1, "CONTENTION leaked: fast path dead");

    // The lock was released: a slow-path op completes too.
    cs.inner().abort_next(1);
    assert_eq!(cs.apply(2, &Add(2)), 5);
    assert_eq!(cs.stats().locked, 1, "lock leaked: slow path dead");

    // And other *threads* keep completing.
    let handles: Vec<_> = (0..3)
        .map(|proc| {
            let cs = Arc::clone(&cs);
            thread::spawn(move || {
                for _ in 0..200 {
                    cs.apply(proc, &Add(1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join()
            .expect("worker threads must complete after a poisoning");
    }
    assert_eq!(cs.inner().value(), 5 + 600);
}

#[test]
fn try_apply_for_times_out_while_the_holder_is_stuck() {
    let cs = Arc::new(make(2));
    cs.inner().gate.close();
    cs.inner().abort_next(1);
    let worker = {
        let cs = Arc::clone(&cs);
        // Aborts once, takes the lock, then blocks on the gate — a
        // holder that (for now) never finishes its critical section.
        thread::spawn(move || cs.apply(0, &Add(1)))
    };
    while cs.inner().gate.waiting() == 0 {
        thread::yield_now();
    }

    // The bounded call reports the wedge instead of hanging, with no
    // effect on the object.
    let res = cs.try_apply_for(1, &Add(2), Duration::from_millis(50));
    assert_eq!(res, Err(CsError::TimedOut));
    assert_eq!(cs.fault_stats().timeouts, 1);
    assert_eq!(cs.inner().value(), 0);

    // Un-wedge the holder; normal service resumes and the timed-out
    // operation can simply be retried.
    cs.inner().gate.open();
    assert_eq!(worker.join().unwrap(), 1);
    assert_eq!(cs.apply(1, &Add(2)), 3);
}

#[test]
fn try_apply_for_times_out_under_the_lock_and_releases_it() {
    let cs = make(1);
    // Every attempt aborts: the op acquires the lock but the line-08
    // retry loop can never finish.
    cs.inner().abort_next(usize::MAX);
    let res = cs.try_apply_for(0, &Add(1), Duration::from_millis(40));
    assert_eq!(res, Err(CsError::TimedOut));
    let faults = cs.fault_stats();
    assert_eq!(faults.timeouts, 1);
    assert_eq!(faults.poisoned, 0, "a timeout is not a poisoning");
    assert_eq!(cs.inner().value(), 0);

    // The guard released the lock and CONTENTION on the way out.
    cs.inner().abort_next(0);
    assert_eq!(cs.apply(0, &Add(7)), 7);
    assert_eq!(cs.stats().fast, 1);
}

#[test]
fn zero_timeout_still_serves_the_wait_free_fast_path() {
    let cs = make(1);
    assert_eq!(cs.try_apply_for(0, &Add(4), Duration::ZERO), Ok(4));
    assert_eq!(cs.stats().fast, 1);
    // A free lock is also grabbed without waiting (try-then-check), so
    // a single abort still completes under the lock even at ZERO.
    cs.inner().abort_next(1);
    assert_eq!(cs.try_apply_for(0, &Add(1), Duration::ZERO), Ok(5));
    // Only an op that cannot finish inside its budget gives up.
    cs.inner().abort_next(usize::MAX);
    assert_eq!(
        cs.try_apply_for(0, &Add(1), Duration::ZERO),
        Err(CsError::TimedOut)
    );
    cs.inner().abort_next(0);
    assert_eq!(cs.inner().value(), 5);
}

#[test]
fn deadline_never_behaves_like_apply() {
    let cs = make(1);
    cs.inner().abort_next(3);
    assert_eq!(cs.try_apply_until(0, &Add(6), Deadline::NEVER), Ok(6));
    assert_eq!(cs.stats().locked, 1);
    assert_eq!(cs.fault_stats().timeouts, 0);
}

#[test]
fn unfair_ablation_times_out_on_the_raw_lock() {
    let cs = Arc::new(ContentionSensitive::with_config(
        FlakyCounter::new(),
        TasLock::new(),
        2,
        CsConfig::UNFAIR,
    ));
    cs.inner().gate.close();
    cs.inner().abort_next(1);
    let worker = {
        let cs = Arc::clone(&cs);
        thread::spawn(move || cs.apply(0, &Add(1)))
    };
    while cs.inner().gate.waiting() == 0 {
        thread::yield_now();
    }
    // Without FLAG/TURN the deadline applies directly to try_lock_until.
    let res = cs.try_apply_for(1, &Add(2), Duration::from_millis(30));
    assert_eq!(res, Err(CsError::TimedOut));
    cs.inner().gate.open();
    assert_eq!(worker.join().unwrap(), 1);
    assert_eq!(cs.apply(1, &Add(2)), 3);
}
