//! A scriptable abortable object for fault-tolerance integration
//! tests: a counter whose `try_apply` can be told to abort the next
//! few attempts, panic once, or block on a gate — standing in for a
//! weak operation that hits contention, dies, or never returns.

// Shared between test binaries; not every binary uses every helper.
#![allow(dead_code)]

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use cso_core::{Abortable, Aborted};

/// Blocks `try_apply` while closed; models a stalled lock holder.
pub struct Gate {
    closed: Mutex<bool>,
    opened: Condvar,
    waiting: AtomicUsize,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            closed: Mutex::new(false),
            opened: Condvar::new(),
            waiting: AtomicUsize::new(0),
        }
    }

    /// Makes subsequent (non-aborting) `try_apply` calls block.
    pub fn close(&self) {
        *self.closed.lock().unwrap() = true;
    }

    /// Releases every blocked `try_apply`.
    pub fn open(&self) {
        *self.closed.lock().unwrap() = false;
        self.opened.notify_all();
    }

    /// Number of threads currently blocked at the gate.
    pub fn waiting(&self) -> usize {
        self.waiting.load(Ordering::SeqCst)
    }

    fn pass(&self) {
        let mut closed = self.closed.lock().unwrap();
        while *closed {
            self.waiting.fetch_add(1, Ordering::SeqCst);
            closed = self.opened.wait(closed).unwrap();
            self.waiting.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// The scriptable counter. Checks run in order: abort budget (cheap,
/// no blocking), then the gate, then the one-shot panic, then the
/// actual increment.
pub struct FlakyCounter {
    value: AtomicU64,
    abort_budget: AtomicUsize,
    panic_next: AtomicBool,
    /// Blocks applications while closed (aborted attempts skip it).
    pub gate: Gate,
}

/// The single operation: add the payload, return the new total.
pub struct Add(pub u64);

impl FlakyCounter {
    pub fn new() -> FlakyCounter {
        FlakyCounter {
            value: AtomicU64::new(0),
            abort_budget: AtomicUsize::new(0),
            panic_next: AtomicBool::new(false),
            gate: Gate::new(),
        }
    }

    /// Makes the next `count` attempts abort (⊥) — e.g. one to push an
    /// invocation off the fast path onto the lock.
    pub fn abort_next(&self, count: usize) {
        self.abort_budget.store(count, Ordering::SeqCst);
    }

    /// Makes the next non-aborted attempt panic.
    pub fn panic_next(&self) {
        self.panic_next.store(true, Ordering::SeqCst);
    }

    pub fn value(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }
}

impl Abortable for FlakyCounter {
    type Op = Add;
    type Response = u64;

    fn try_apply(&self, op: &Add) -> Result<u64, Aborted> {
        let aborted = self
            .abort_budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok();
        if aborted {
            return Err(Aborted);
        }
        self.gate.pass();
        if self.panic_next.swap(false, Ordering::SeqCst) {
            panic!("injected: weak operation died mid-flight");
        }
        Ok(self.value.fetch_add(op.0, Ordering::SeqCst) + op.0)
    }
}
