//! Fail-point chaos tests for the Figure 3 transformation
//! (`--features chaos`). Where `panic_safety.rs` scripts faults into
//! the *object*, these arm the named fail points inside the
//! transformation and the locks themselves — panics and stalls at the
//! exact program points §5 of the paper worries about.

mod common;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

use common::{Add, FlakyCounter};
use cso_core::{ContentionSensitive, CsConfig, CsError, RecoveryPolicy};
use cso_locks::TasLock;
use cso_memory::chaos::{self, Fault, Plan};

// The chaos registry is process-global: these tests must not overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn make(n: usize) -> ContentionSensitive<FlakyCounter, TasLock> {
    ContentionSensitive::new(FlakyCounter::new(), TasLock::new(), n)
}

/// Acceptance test 1: a panic injected *inside the locked slow path*
/// (after `CONTENTION ← true`, before the weak op) must not wedge the
/// other processes — the guard restores `CONTENTION` and releases the
/// lock during unwind.
#[test]
fn injected_panic_in_locked_slow_path_leaves_object_usable() {
    let _serial = serial();
    chaos::reset();
    let cs = Arc::new(make(4));
    cs.inner().abort_next(1); // force the victim onto the slow path
    chaos::arm_plan("cs::locked", Plan::once(Fault::Panic));

    let victim = {
        let cs = Arc::clone(&cs);
        thread::spawn(move || catch_unwind(AssertUnwindSafe(|| cs.apply(0, &Add(1)))))
    };
    assert!(victim.join().unwrap().is_err(), "injection must panic");
    assert_eq!(chaos::fires("cs::locked"), 1);
    assert_eq!(cs.fault_stats().poisoned, 1);
    assert_eq!(cs.inner().value(), 0, "the poisoned op must have no effect");

    // No leaked lock: a forced slow-path op from another proc completes.
    cs.inner().abort_next(1);
    assert_eq!(cs.apply(1, &Add(5)), 5);
    // CONTENTION restored: contention-free ops are back on the fast path.
    assert_eq!(cs.apply(2, &Add(1)), 6);
    assert!(cs.stats().fast >= 1);

    // And concurrent threads all complete.
    let handles: Vec<_> = (0..3)
        .map(|proc| {
            let cs = Arc::clone(&cs);
            thread::spawn(move || {
                for _ in 0..200 {
                    cs.apply(proc, &Add(1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("threads must complete after the poisoning");
    }
    assert_eq!(cs.inner().value(), 6 + 600);
    chaos::reset();
}

/// Acceptance test 2: a lock holder stalled forever (the §5 crash the
/// algorithm cannot survive) wedges unbounded `apply` — but
/// `try_apply_for` reports [`CsError::TimedOut`] instead of hanging.
#[test]
fn try_apply_for_times_out_when_holder_stalls_forever() {
    let _serial = serial();
    chaos::reset();
    let cs = Arc::new(make(2));
    cs.inner().abort_next(1);
    chaos::arm_plan("cs::locked", Plan::once(Fault::StallForever));

    let wedged = {
        let cs = Arc::clone(&cs);
        thread::spawn(move || cs.apply(0, &Add(1)))
    };
    while chaos::fires("cs::locked") == 0 {
        thread::sleep(Duration::from_millis(1));
    }

    // The holder is parked with the lock held and CONTENTION raised.
    let res = cs.try_apply_for(1, &Add(2), Duration::from_millis(50));
    assert_eq!(res, Err(CsError::TimedOut));
    assert_eq!(cs.fault_stats().timeouts, 1);
    assert_eq!(cs.inner().value(), 0);

    // reset() releases the stall; the system heals and the timed-out
    // operation retries successfully.
    chaos::reset();
    assert_eq!(wedged.join().unwrap(), 1);
    assert_eq!(cs.apply(1, &Add(2)), 3);
}

/// A spurious-abort storm on the fast path degrades every operation to
/// the lock — contention-sensitivity lost, correctness kept.
#[test]
fn fast_path_abort_storm_degrades_to_lock_without_losing_ops() {
    let _serial = serial();
    chaos::reset();
    let cs = make(2);
    chaos::arm("cs::fast", Fault::SpuriousAbort);
    for i in 0..100u64 {
        assert_eq!(cs.apply((i % 2) as usize, &Add(1)), i + 1);
    }
    assert_eq!(cs.inner().value(), 100);
    let stats = cs.stats();
    assert_eq!(stats.fast, 0, "every fast attempt was vetoed");
    assert_eq!(stats.locked, 100);
    assert_eq!(chaos::fires("cs::fast"), 100);
    chaos::reset();
}

/// Delays and yields sprayed across the transformation and the TAS
/// lock perturb schedules but never correctness: all operations
/// complete and the count is conserved.
#[test]
fn delay_and_yield_faults_preserve_correctness_under_load() {
    let _serial = serial();
    chaos::reset();
    chaos::arm_plan("cs::fast", Plan::one_in(Fault::SpuriousAbort, 3));
    chaos::arm_plan(
        "cs::lock-wait",
        Plan::one_in(Fault::Delay(Duration::from_micros(50)), 2),
    );
    chaos::arm_plan("tas::acquire", Plan::one_in(Fault::Yield, 2));
    chaos::arm_plan("sfree::unlock", Plan::one_in(Fault::Yield, 4));

    const THREADS: usize = 4;
    const OPS: u64 = 300;
    let cs = Arc::new(make(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|proc| {
            let cs = Arc::clone(&cs);
            thread::spawn(move || {
                for _ in 0..OPS {
                    cs.apply(proc, &Add(1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no chaos schedule may wedge a thread");
    }
    assert_eq!(cs.inner().value(), THREADS as u64 * OPS);
    assert_eq!(cs.stats().total(), THREADS as u64 * OPS);
    assert_eq!(cs.fault_stats().poisoned, 0);
    chaos::reset();
}

/// Crash recovery for the combining slow path: a poster that dies
/// right after publishing its record must not be waited on forever —
/// the next combiner tombstones the orphan and completes. If the owner
/// was only *falsely* suspected, it finds the tombstone on revival,
/// reclaims it, reposts, and its operation still applies exactly once.
#[test]
fn dead_posters_record_is_tombstoned_and_reposted_on_revival() {
    let _serial = serial();
    chaos::reset();
    let policy = RecoveryPolicy {
        grace: Duration::from_secs(3600), // only an explicit mark_dead suspects
        max_successions: 8,
        backoff: Duration::from_millis(1),
    };
    let config = CsConfig::COMBINING
        .without_fast_path()
        .with_recovery(policy);
    let cs = Arc::new(ContentionSensitive::with_config(
        FlakyCounter::new(),
        TasLock::new(),
        2,
        config,
    ));
    chaos::arm_plan("cs::post", Plan::once(Fault::StallForever));
    let wedged = {
        let cs = Arc::clone(&cs);
        thread::spawn(move || cs.apply(0, &Add(100)))
    };
    while chaos::fires("cs::post") == 0 {
        thread::sleep(Duration::from_millis(1));
    }
    cs.liveness().unwrap().mark_dead(0);

    // The survivor combines past the orphaned record by retiring it.
    assert_eq!(cs.apply(1, &Add(2)), 2);
    let stats = cs.recovery_stats().unwrap();
    assert_eq!(stats.reclaimed, 1);
    assert_eq!(stats.successions, 0, "the corpse never held the lock");
    assert!(!cs.is_poisoned());

    // Exactly-once, half one: the tombstoned operation did NOT apply.
    assert_eq!(cs.inner().value(), 2);

    // Revive the falsely-suspected poster: it reclaims the tombstone,
    // re-announces itself, reposts, and completes.
    chaos::reset();
    assert_eq!(wedged.join().unwrap(), 102);
    // Exactly-once, half two: the revived operation applied once.
    assert_eq!(cs.inner().value(), 102);
}

/// Coverage tracing proves the fail points are actually threaded
/// through every layer a slow-path operation crosses.
#[test]
fn tracing_sees_every_site_on_a_slow_path_operation() {
    let _serial = serial();
    chaos::reset();
    chaos::set_tracing(true);
    let cs = make(2);
    cs.inner().abort_next(1);
    assert_eq!(cs.apply(0, &Add(9)), 9);
    let seen = chaos::seen_sites();
    for site in [
        "cs::fast",
        "cs::lock-wait",
        "cs::locked",
        "sfree::wait",
        "sfree::unlock",
        "tas::acquire",
        "tas::release",
    ] {
        assert!(
            seen.contains(&site),
            "fail point `{site}` never hit; saw {seen:?}"
        );
    }
    chaos::reset();
}
