//! The progress-condition hierarchy of §1.2.
//!
//! "We have a hierarchy of progress conditions: obstruction-freedom is
//! strictly weaker than non-blocking that in turn is strictly weaker
//! than starvation-freedom. This hierarchy defines a family of
//! qualities of service for liveness properties."
//!
//! In a failure-free context non-blocking coincides with
//! deadlock-freedom; with crashes, starvation-freedom generalizes to
//! t-resilience and, at t = n − 1, to Herlihy's wait-freedom
//! (footnote 1 of the paper).

use std::fmt;

/// A liveness guarantee offered by a concurrent-object implementation,
/// ordered from weakest to strongest.
///
/// ```
/// use cso_core::ProgressCondition;
///
/// assert!(ProgressCondition::StarvationFree > ProgressCondition::NonBlocking);
/// assert!(ProgressCondition::NonBlocking.is_at_least(ProgressCondition::ObstructionFree));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProgressCondition {
    /// An operation is required to terminate only when executed with
    /// no concurrent operation (a *solo* execution). Concurrent
    /// invocations may all fail to terminate (Herlihy, Luchangco &
    /// Moir; paper ref \[8\]).
    ObstructionFree,
    /// Obstruction-free, plus: under concurrency at least one of the
    /// concurrent operations terminates (system-wide progress;
    /// lock-freedom in the modern vocabulary).
    NonBlocking,
    /// Every invoked operation terminates (per-process progress).
    StarvationFree,
}

impl ProgressCondition {
    /// All conditions, weakest first.
    pub const ALL: [ProgressCondition; 3] = [
        ProgressCondition::ObstructionFree,
        ProgressCondition::NonBlocking,
        ProgressCondition::StarvationFree,
    ];

    /// True when `self` is at least as strong as `other`.
    #[must_use]
    pub fn is_at_least(self, other: ProgressCondition) -> bool {
        self >= other
    }

    /// The human-readable name used in reports and benchmark output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProgressCondition::ObstructionFree => "obstruction-free",
            ProgressCondition::NonBlocking => "non-blocking",
            ProgressCondition::StarvationFree => "starvation-free",
        }
    }
}

impl fmt::Display for ProgressCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_is_strictly_ordered() {
        let [of, nb, sf] = ProgressCondition::ALL;
        assert!(of < nb && nb < sf);
        assert!(sf.is_at_least(sf) && sf.is_at_least(of));
        assert!(!of.is_at_least(nb));
    }

    #[test]
    fn names_render() {
        assert_eq!(
            ProgressCondition::ObstructionFree.to_string(),
            "obstruction-free"
        );
        assert_eq!(ProgressCondition::NonBlocking.to_string(), "non-blocking");
        assert_eq!(
            ProgressCondition::StarvationFree.to_string(),
            "starvation-free"
        );
    }
}
