//! Figure 3: the abortable → contention-sensitive, starvation-free
//! transformation.
//!
//! # Fault model
//!
//! The paper (§5) observes that the transformation tolerates crashes
//! everywhere *except* inside the critical section: a process that
//! stops between lines 06 and 12 leaves `CONTENTION` raised and the
//! lock held, wedging every future slow-path operation. This module
//! hardens the two recoverable flavours of that failure:
//!
//! * **panics** (unwinding, not process death) inside the slow path
//!   are survived: an RAII guard restores `CONTENTION`, lowers
//!   `FLAG[i]`, hands `TURN` on, and releases the lock during unwind,
//!   so other processes keep completing (see
//!   [`ContentionSensitive::telemetry`] for the poisoning record
//!   alongside the path counters);
//! * **unbounded waits** on a genuinely wedged lock are made
//!   reportable by the deadline-bounded
//!   [`ContentionSensitive::try_apply_for`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use cso_locks::{ProcLock, RawLock, StarvationFree};
use cso_memory::backoff::{Deadline, Spinner};
use cso_memory::fail_point;
use cso_memory::reg::RegBool;
use cso_trace::{probe, Event};

use crate::abortable::Abortable;
use crate::error::TimedOut;
use crate::progress::ProgressCondition;

/// Which of Figure 3's mechanisms are enabled — the paper
/// configuration plus the ablations of experiment E8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsConfig {
    /// Lines 01/07/09: guard the fast path with the `CONTENTION`
    /// register. Disabling it makes every invocation attempt the weak
    /// operation first, even while a lock holder is working — abort
    /// storms under contention.
    pub contention_flag: bool,
    /// Lines 04–05/10–11: the `FLAG`/`TURN` starvation-freedom
    /// booster. Disabling it takes the deadlock-free lock directly:
    /// progress degrades from starvation-free to non-blocking.
    pub fair: bool,
}

impl CsConfig {
    /// The configuration of the paper's Figure 3 (everything on).
    pub const PAPER: CsConfig = CsConfig {
        contention_flag: true,
        fair: true,
    };
    /// Ablation (i): no `CONTENTION` guard.
    pub const NO_FLAG: CsConfig = CsConfig {
        contention_flag: false,
        fair: true,
    };
    /// Ablation (ii): no `FLAG`/`TURN` fairness.
    pub const UNFAIR: CsConfig = CsConfig {
        contention_flag: true,
        fair: false,
    };
}

impl Default for CsConfig {
    fn default() -> CsConfig {
        CsConfig::PAPER
    }
}

/// How many operations completed on each path (diagnostics for
/// experiment E4: "fraction of ops that took the lock").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Operations that completed on the lock-free fast path
    /// (lines 01–03).
    pub fast: u64,
    /// Operations that completed under the lock (lines 04–13).
    pub locked: u64,
}

impl PathStats {
    /// Total completed operations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.fast + self.locked
    }

    /// Fraction of operations that needed the lock (0.0 when idle).
    #[must_use]
    pub fn locked_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.locked as f64 / self.total() as f64
        }
    }
}

/// How often the slow path degraded instead of completing — the
/// robustness twin of [`PathStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Slow-path invocations that unwound (panicked) while holding the
    /// lock. Each one had its lock released and `CONTENTION` restored
    /// by the drop guard, so this counts *survived* poisonings, not
    /// wedged states.
    pub poisoned: u64,
    /// Deadline-bounded invocations that returned [`TimedOut`].
    pub timeouts: u64,
}

/// Documented upper bound on the shared-memory accesses of a **solo,
/// uncontended slow-path** invocation with the paper configuration and
/// a TAS-class inner lock, counting only the transformation's own
/// accesses (not the wrapped object's weak operation):
///
/// | lines | accesses |
/// |---|---|
/// | 01 (`CONTENTION` read) | 1 |
/// | 04–06 (`FLAG[i]` write, `TURN` read, `FLAG[TURN]` read, lock TAS) | 4 |
/// | 07 + 09 (`CONTENTION` write ×2) | 2 |
/// | 10–12 (`FLAG[i]` write, `TURN` read, `FLAG[TURN]` read, `TURN` write, unlock write) | 5 |
///
/// Total 12, documented here with one access of headroom (a lock
/// whose release re-reads state, e.g. ticket, may add it). Contended
/// invocations wait, so their access count is unbounded in general —
/// this bound is the *floor* cost of taking the lock at all, the
/// number Theorem 1's "six accesses, no lock" fast path is avoiding.
/// Guarded by a regression test (`locked_path_stays_within_bound`).
pub const LOCKED_SOLO_ACCESS_BOUND: u64 = 13;

/// One snapshot of both statistics families, taken together.
///
/// The two families partition *finished invocations* between them:
/// [`PathStats`] counts the invocations that **completed** (returned a
/// non-⊥ response), split by which Figure 3 path they took, while
/// [`FaultStats`] counts the invocations that **degraded** instead —
/// unwound by a panic under the lock, or gave up at a deadline. Every
/// finished invocation lands in exactly one of the four counters, so
/// [`Telemetry::invocations`] (`fast + locked + poisoned + timeouts`)
/// is the total number of strong invocations that have returned,
/// normally or otherwise.
///
/// Prefer [`ContentionSensitive::telemetry`] over calling
/// [`ContentionSensitive::stats`] and
/// [`ContentionSensitive::fault_stats`] separately when relating the
/// families (e.g. computing a degradation rate): the one-call snapshot
/// reads all four counters back-to-back, minimizing the skew window
/// against concurrent completions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Telemetry {
    /// Completions by path (fast vs locked).
    pub paths: PathStats,
    /// Degradations (survived poisonings, deadline expiries).
    pub faults: FaultStats,
}

impl Telemetry {
    /// Total finished invocations, completed or degraded.
    #[must_use]
    pub fn invocations(&self) -> u64 {
        self.paths.total() + self.faults.poisoned + self.faults.timeouts
    }

    /// Fraction of finished invocations that degraded instead of
    /// completing (0.0 when idle).
    #[must_use]
    pub fn degraded_fraction(&self) -> f64 {
        let total = self.invocations();
        if total == 0 {
            0.0
        } else {
            (self.faults.poisoned + self.faults.timeouts) as f64 / total as f64
        }
    }
}

/// Figure 3 of the paper, generalized to any [`Abortable`] object:
/// a **contention-sensitive, starvation-free** implementation.
///
/// ```text
/// operation strong_op(par):                                 % code for p_i %
/// (01) if (¬CONTENTION)
/// (02)     then res ← weak_op(par); if (res ≠ ⊥) then return(res) end if
/// (03) end if;
/// (04) FLAG[i] ← true;                                      ⎫
/// (05) wait((TURN = i) ∨ (¬FLAG[TURN]));                    ⎬ starvation-free
/// (06) LOCK.lock();                                         ⎭ lock (§4.4)
/// (07) CONTENTION ← true;
/// (08) repeat res ← weak_op(par) until res ≠ ⊥;
/// (09) CONTENTION ← false;
/// (10) FLAG[i] ← false;                                     ⎫
/// (11) if (¬FLAG[TURN]) then TURN ← (TURN mod n) + 1;       ⎬ §4.4
/// (12) LOCK.unlock();                                       ⎭
/// (13) return(res).
/// ```
///
/// Properties (Theorem 1): every invocation returns a non-⊥ value, all
/// invocations are linearizable, and a contention-free invocation uses
/// **no lock and six shared-memory accesses** (one read of
/// `CONTENTION` + the five accesses of a solo weak operation).
///
/// The starred lines live in [`StarvationFree`]; the inner lock `L`
/// only needs to be deadlock-free (a plain TAS lock suffices).
pub struct ContentionSensitive<O, L> {
    inner: O,
    /// The paper's `CONTENTION` boolean register.
    contention: RegBool,
    /// The §4.4-boosted lock (lines 04–06 / 10–12).
    lock: StarvationFree<L>,
    config: CsConfig,
    // Path statistics: plain (uncounted) atomics — metrics, not part
    // of the algorithm's shared-memory footprint.
    fast: AtomicU64,
    locked: AtomicU64,
    poisoned: AtomicU64,
    timeouts: AtomicU64,
}

/// RAII custody of the slow path's shared state (lines 07–12).
///
/// Constructed immediately after the lock is acquired; its drop —
/// which also runs during a panic unwind — performs lines 09–12 in
/// order: restore `CONTENTION`, lower `FLAG[i]`, hand `TURN` on,
/// release the lock. Holding all of that in one drop makes the
/// critical section **panic-safe**: a weak operation (or an injected
/// fault) unwinding under the lock cannot strand `CONTENTION` or the
/// lock, which is exactly the §5 wedge this subsystem defends against.
///
/// The path counters live here too, *before* the release, so no
/// window exists in which the lock is free but the operation is
/// missing from [`PathStats`] (the old post-unlock `fetch_add` race).
struct SlowGuard<'a, O, L: RawLock> {
    cs: &'a ContentionSensitive<O, L>,
    proc: usize,
    /// Set on normal completion; selects the `locked` counter. Left
    /// false on unwind (counts `poisoned`) and on an under-lock
    /// timeout (the caller counts `timeouts`).
    completed: bool,
}

impl<O, L: RawLock> Drop for SlowGuard<'_, O, L> {
    fn drop(&mut self) {
        let cs = self.cs;
        // Count first: once the lock is released, observers must
        // already see this operation in the statistics.
        if self.completed {
            cs.locked.fetch_add(1, Ordering::Relaxed);
            probe!(Event::LockedComplete);
        } else if std::thread::panicking() {
            cs.poisoned.fetch_add(1, Ordering::Relaxed);
            probe!(Event::SlowPoisoned);
        }
        // Line 09.
        if cs.config.contention_flag {
            cs.contention.write(false);
            probe!(Event::ContentionClear);
        }
        probe!(Event::LockRelease(self.proc as u32));
        // Lines 10–12 (fair) or line 12 alone (unfair ablation).
        if cs.config.fair {
            cs.lock.unlock(self.proc);
        } else {
            cs.lock.inner().unlock();
        }
    }
}

impl<O, L> std::fmt::Debug for ContentionSensitive<O, L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = PathStats {
            fast: self.fast.load(Ordering::Relaxed),
            locked: self.locked.load(Ordering::Relaxed),
        };
        f.debug_struct("ContentionSensitive")
            .field("config", &self.config)
            .field("stats", &stats)
            .finish_non_exhaustive()
    }
}

impl<O: Abortable, L: RawLock> ContentionSensitive<O, L> {
    /// Wraps `inner` for `n` processes, using the deadlock-free lock
    /// `lock` for the slow path — the paper's exact Figure 3.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(inner: O, lock: L, n: usize) -> ContentionSensitive<O, L> {
        ContentionSensitive::with_config(inner, lock, n, CsConfig::PAPER)
    }

    /// Like [`ContentionSensitive::new`] with an explicit mechanism
    /// selection (see [`CsConfig`]; used by the E8 ablations).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_config(inner: O, lock: L, n: usize, config: CsConfig) -> ContentionSensitive<O, L> {
        ContentionSensitive {
            inner,
            contention: RegBool::new(false),
            lock: StarvationFree::new(lock, n),
            config,
            fast: AtomicU64::new(0),
            locked: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        }
    }

    /// The progress condition of the paper configuration.
    pub const PROGRESS: ProgressCondition = ProgressCondition::StarvationFree;

    /// Applies `op` on behalf of process `proc`; never returns ⊥
    /// (Theorem 1 / Lemma 1).
    ///
    /// # Panics
    ///
    /// Panics if `proc` is not below the `n` given at construction.
    pub fn apply(&self, proc: usize, op: &O::Op) -> O::Response {
        assert!(proc < self.lock.n(), "process id out of range");
        // Lines 01–03: the lock-free shortcut.
        if let Some(res) = self.fast_path(op) {
            return res;
        }

        // Lines 04–06: acquire the (boosted) lock.
        fail_point!("cs::lock-wait");
        if self.config.fair {
            self.lock.lock(proc);
        } else {
            self.lock.inner().lock();
        }
        probe!(Event::LockAcquire(proc as u32));
        let mut guard = SlowGuard {
            cs: self,
            proc,
            completed: false,
        };

        // Line 07.
        if self.config.contention_flag {
            self.contention.write(true);
            probe!(Event::ContentionRaise);
        }
        fail_point!("cs::locked");

        // Line 08: bounded in practice by Lemma 2 — only the fast-path
        // operations already in flight can make us abort, and future
        // invocations see CONTENTION and queue behind the lock. The
        // spinner only yields the CPU so those in-flight operations can
        // finish on oversubscribed machines; it adds no shared accesses.
        let mut spinner = Spinner::new();
        let res = loop {
            match self.inner.try_apply(op) {
                Ok(res) => break res,
                Err(_) => spinner.spin(),
            }
        };

        // Lines 09–13 run in the guard's drop (also on unwind).
        guard.completed = true;
        drop(guard);
        res
    }

    /// Deadline-bounded [`ContentionSensitive::apply`]: gives up — with
    /// **no effect** on the object — once `timeout` elapses without the
    /// operation completing.
    ///
    /// The fast path is unchanged (lines 01–03 are wait-free already);
    /// the deadline governs the slow path: both the starvation-free
    /// lock acquisition (lines 04–06) and the under-lock retry loop
    /// (line 08) stop at the deadline. This keeps invocations live even
    /// when a *crashed* (not merely panicked) process wedged the lock —
    /// the paper's §5 failure the transformation cannot otherwise
    /// survive.
    ///
    /// # Errors
    ///
    /// Returns [`TimedOut`] if the deadline expired first. The
    /// operation took no effect in that case: it either never acquired
    /// the lock, or held it only across aborted weak attempts.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is not below the `n` given at construction.
    pub fn try_apply_for(
        &self,
        proc: usize,
        op: &O::Op,
        timeout: Duration,
    ) -> Result<O::Response, TimedOut> {
        self.try_apply_until(proc, op, Deadline::after(timeout))
    }

    /// [`ContentionSensitive::try_apply_for`] with an absolute
    /// [`Deadline`] (shared across several calls when composing).
    ///
    /// # Errors
    ///
    /// Returns [`TimedOut`] if the deadline expired first; the object
    /// is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is not below the `n` given at construction.
    pub fn try_apply_until(
        &self,
        proc: usize,
        op: &O::Op,
        deadline: Deadline,
    ) -> Result<O::Response, TimedOut> {
        assert!(proc < self.lock.n(), "process id out of range");
        // Lines 01–03: the shortcut costs no waiting, deadline or not.
        if let Some(res) = self.fast_path(op) {
            return Ok(res);
        }

        // Lines 04–06, bounded.
        fail_point!("cs::lock-wait");
        let acquired = if self.config.fair {
            self.lock.lock_until(proc, deadline)
        } else {
            self.lock.inner().try_lock_until(deadline)
        };
        if !acquired {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
            probe!(Event::SlowTimeout);
            return Err(TimedOut);
        }
        probe!(Event::LockAcquire(proc as u32));
        let mut guard = SlowGuard {
            cs: self,
            proc,
            completed: false,
        };

        // Line 07.
        if self.config.contention_flag {
            self.contention.write(true);
            probe!(Event::ContentionRaise);
        }
        fail_point!("cs::locked");

        // Line 08, bounded. Giving up mid-loop is safe: every failed
        // try_apply had no effect, and the guard restores lines 09–12.
        let mut spinner = Spinner::new();
        loop {
            match self.inner.try_apply(op) {
                Ok(res) => {
                    guard.completed = true;
                    drop(guard);
                    return Ok(res);
                }
                Err(_) => {
                    if !spinner.spin_deadline(deadline) {
                        drop(guard);
                        self.timeouts.fetch_add(1, Ordering::Relaxed);
                        probe!(Event::SlowTimeout);
                        return Err(TimedOut);
                    }
                }
            }
        }
    }

    /// Lines 01–03: one `CONTENTION` read plus a weak attempt.
    fn fast_path(&self, op: &O::Op) -> Option<O::Response> {
        if !self.config.contention_flag || !self.contention.read() {
            fail_point!("cs::fast", return None);
            probe!(Event::FastAttempt);
            if let Ok(res) = self.inner.try_apply(op) {
                self.fast.fetch_add(1, Ordering::Relaxed);
                probe!(Event::FastSuccess);
                return Some(res);
            }
            probe!(Event::FastAbort);
        }
        None
    }

    /// Snapshot of how many operations used each path.
    pub fn stats(&self) -> PathStats {
        PathStats {
            fast: self.fast.load(Ordering::Relaxed),
            locked: self.locked.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the degradation counters (survived slow-path panics
    /// and deadline expiries). See the module docs for the fault model.
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            poisoned: self.poisoned.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }

    /// One coherent snapshot of [`PathStats`] and [`FaultStats`]
    /// together — see [`Telemetry`] for how the families relate.
    pub fn telemetry(&self) -> Telemetry {
        Telemetry {
            paths: self.stats(),
            faults: self.fault_stats(),
        }
    }

    /// Resets the path and fault statistics to zero.
    pub fn reset_stats(&self) {
        self.fast.store(0, Ordering::Relaxed);
        self.locked.store(0, Ordering::Relaxed);
        self.poisoned.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
    }

    /// The number of processes this instance serves.
    #[must_use]
    pub fn n(&self) -> usize {
        self.lock.n()
    }

    /// The mechanism configuration in force.
    #[must_use]
    pub fn config(&self) -> CsConfig {
        self.config
    }

    /// The wrapped abortable object.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testobj::{Bump, ScriptedObject};
    use cso_locks::TasLock;
    use cso_memory::counting::CountScope;

    fn make(aborts: usize, config: CsConfig) -> ContentionSensitive<ScriptedObject, TasLock> {
        ContentionSensitive::with_config(
            ScriptedObject::with_aborts(aborts),
            TasLock::new(),
            4,
            config,
        )
    }

    #[test]
    fn solo_apply_takes_fast_path() {
        let cs = make(0, CsConfig::PAPER);
        assert_eq!(cs.apply(0, &Bump(7)), 7);
        assert_eq!(cs.stats(), PathStats { fast: 1, locked: 0 });
    }

    #[test]
    fn abort_falls_back_to_lock_and_succeeds() {
        let cs = make(1, CsConfig::PAPER);
        assert_eq!(cs.apply(2, &Bump(7)), 7);
        assert_eq!(cs.stats(), PathStats { fast: 0, locked: 1 });
    }

    #[test]
    fn repeated_aborts_are_absorbed_under_the_lock() {
        let cs = make(25, CsConfig::PAPER);
        assert_eq!(cs.apply(1, &Bump(1)), 1);
        assert_eq!(cs.apply(1, &Bump(1)), 2);
        let stats = cs.stats();
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn solo_fast_path_overhead_is_one_access() {
        // The transformation adds exactly one shared access (the read
        // of CONTENTION) to a solo weak operation. ScriptedObject does
        // no counted accesses, so the total must be exactly 1.
        let cs = make(0, CsConfig::PAPER);
        let scope = CountScope::start();
        cs.apply(0, &Bump(1));
        assert_eq!(scope.take().total(), 1);
    }

    #[test]
    fn ablation_no_flag_still_correct() {
        let cs = make(3, CsConfig::NO_FLAG);
        assert_eq!(cs.apply(0, &Bump(4)), 4);
        // Without the CONTENTION register the solo fast path costs 0
        // extra accesses.
        let scope = CountScope::start();
        cs.apply(0, &Bump(1));
        assert_eq!(scope.take().total(), 0);
    }

    #[test]
    fn ablation_unfair_still_correct() {
        let cs = make(2, CsConfig::UNFAIR);
        assert_eq!(cs.apply(3, &Bump(9)), 9);
        assert_eq!(cs.stats().locked, 1);
    }

    #[test]
    fn locked_path_stays_within_bound() {
        // Solo invocation forced onto the slow path (one scripted
        // abort defeats the fast path). ScriptedObject performs no
        // counted accesses, so the measurement isolates the
        // transformation's own footprint.
        let cs = make(1, CsConfig::PAPER);
        let scope = CountScope::start();
        cs.apply(2, &Bump(1));
        let counts = scope.take();
        assert_eq!(
            counts.total(),
            12,
            "solo slow path changed cost: {counts} (update the \
             LOCKED_SOLO_ACCESS_BOUND table if intentional)"
        );
        assert!(counts.total() <= LOCKED_SOLO_ACCESS_BOUND);
    }

    #[test]
    fn telemetry_partitions_finished_invocations() {
        let cs = make(1, CsConfig::PAPER);
        cs.apply(0, &Bump(1)); // locked (scripted abort)
        cs.apply(0, &Bump(1)); // fast
        assert!(cs
            .try_apply_for(1, &Bump(1), Duration::from_millis(50))
            .is_ok());
        let t = cs.telemetry();
        assert_eq!(t.paths, cs.stats());
        assert_eq!(t.faults, cs.fault_stats());
        assert_eq!(t.paths, PathStats { fast: 2, locked: 1 });
        assert_eq!(t.faults, FaultStats::default());
        assert_eq!(t.invocations(), 3);
        assert_eq!(t.degraded_fraction(), 0.0);
    }

    #[test]
    fn telemetry_counts_degradations() {
        let t = Telemetry {
            paths: PathStats { fast: 6, locked: 2 },
            faults: FaultStats {
                poisoned: 1,
                timeouts: 1,
            },
        };
        assert_eq!(t.invocations(), 10);
        assert!((t.degraded_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn stats_reset() {
        let cs = make(0, CsConfig::PAPER);
        cs.apply(0, &Bump(1));
        cs.reset_stats();
        assert_eq!(cs.stats().total(), 0);
    }

    #[test]
    fn locked_fraction_math() {
        let stats = PathStats { fast: 3, locked: 1 };
        assert!((stats.locked_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(PathStats::default().locked_fraction(), 0.0);
    }

    #[test]
    fn concurrent_strong_ops_all_complete() {
        use std::sync::Arc;
        let cs = Arc::new(make(0, CsConfig::PAPER));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let cs = Arc::clone(&cs);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        cs.apply(i, &Bump(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = cs.inner().applied.load(std::sync::atomic::Ordering::SeqCst);
        assert_eq!(total, 8_000);
        assert_eq!(cs.stats().total(), 8_000);
    }
}
