//! Figure 3: the abortable → contention-sensitive, starvation-free
//! transformation.
//!
//! # Fault model
//!
//! The paper (§5) observes that the transformation tolerates crashes
//! everywhere *except* inside the critical section: a process that
//! stops between lines 06 and 12 leaves `CONTENTION` raised and the
//! lock held, wedging every future slow-path operation. This module
//! hardens the two recoverable flavours of that failure:
//!
//! * **panics** (unwinding, not process death) inside the slow path
//!   are survived: an RAII guard restores `CONTENTION`, lowers
//!   `FLAG[i]`, hands `TURN` on, and releases the lock during unwind,
//!   so other processes keep completing (see
//!   [`ContentionSensitive::telemetry`] for the poisoning record
//!   alongside the path counters);
//! * **unbounded waits** on a genuinely wedged lock are made
//!   reportable by the deadline-bounded
//!   [`ContentionSensitive::try_apply_for`];
//! * **process crashes inside the critical section** — the §5 wedge
//!   itself — are *recovered from* when [`CsConfig::recovery`] is set:
//!   a [`Liveness`] lease suspects silent processes, waiters run the
//!   lock-succession protocol of [`StarvationFree::lock_recovering`],
//!   and combiners retire (tombstone) the publication records of
//!   suspected-dead posters instead of applying them. Recovery is
//!   budgeted ([`RecoveryPolicy::max_successions`]) and degrades
//!   gracefully: combining → plain locking → fail-fast
//!   [`Unrecoverable`]. All of its bookkeeping lives in plain
//!   (uncounted) atomics, so Theorem 1's counted budgets are
//!   untouched.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use cso_locks::{ProcLock, RawLock, RecoveringLock, StarvationFree, Succession};
use cso_memory::backoff::{CasBackoff, Deadline, Spinner};
use cso_memory::combining::{CachePadded, PubRecord, RecordState, NO_HELPER};
use cso_memory::fail_point;
use cso_memory::liveness::{Liveness, RecoveryPolicy};
use cso_memory::reg::RegBool;
use cso_metrics::{Counter, Gauge, Registry, Timer};
use cso_trace::{probe, probe_if, Event};

use crate::abortable::Abortable;
use crate::error::{CsError, TimedOut, Unrecoverable};
use crate::gate::AdaptiveGate;
use crate::progress::ProgressCondition;

/// Which of Figure 3's mechanisms are enabled — the paper
/// configuration plus the ablations of experiment E8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsConfig {
    /// Lines 01/07/09: guard the fast path with the `CONTENTION`
    /// register. Disabling it makes every invocation attempt the weak
    /// operation first, even while a lock holder is working — abort
    /// storms under contention.
    pub contention_flag: bool,
    /// Lines 04–05/10–11: the `FLAG`/`TURN` starvation-freedom
    /// booster. Disabling it takes the deadlock-free lock directly:
    /// progress degrades from starvation-free to non-blocking.
    pub fair: bool,
    /// Lines 01–03: attempt the lock-free fast path at all. Disabling
    /// it forces every invocation onto the slow path — the
    /// always-locking strawman the paper argues against, kept as a
    /// configuration so experiments (E12) can put the *slow paths*
    /// under contention deliberately.
    pub fast_path: bool,
    /// Replace the one-at-a-time slow path with **flat combining**:
    /// contended operations post publication records and the lock
    /// winner applies every pending request in one tenure (see the
    /// module docs of [`cso_memory::combining`]).
    pub combining: bool,
    /// Layer the [`AdaptiveGate`] over the fast path: divert to the
    /// slow path only when the EWMA of recent fast-path aborts says
    /// the fast path is genuinely losing, with hysteresis and periodic
    /// probing. Off, the `CONTENTION` register alone routes (the
    /// paper's exact behaviour).
    pub adaptive_gate: bool,
    /// Escalation-ladder rung 2: after a fast-path abort, retry the
    /// weak operation a bounded number of times under **lightweight
    /// CAS contention management** (a per-thread, failure-history-
    /// driven [`CasBackoff`]) before touching `CONTENTION` or the
    /// lock. All bookkeeping is thread-local / uncounted, so the solo
    /// fast path keeps Theorem 1's exact six accesses.
    pub cas_backoff: bool,
    /// Escalation-ladder rung 3: after the weak-op retries are
    /// exhausted, attempt to complete by **elimination** — rendezvous
    /// with a concurrent inverse operation via the object's
    /// [`Abortable::try_eliminate`] hook (e.g. a stack's push/pop pair
    /// exchanging through [`cso_memory::exchange`]). Objects without
    /// an inverse structure decline and fall through to the lock.
    pub elimination: bool,
    /// Crash tolerance for the slow path (the paper's §5 caveat): when
    /// `Some`, the object keeps a per-process [`Liveness`] lease,
    /// acquires the slow-path lock through the succession protocol of
    /// [`StarvationFree::lock_recovering`], and lets combiners retire
    /// the publication records of suspected-dead posters. `None` (the
    /// default everywhere) leaves the paper's fault model unchanged.
    /// Recovery implies the `FLAG`/`TURN` booster on the plain lock
    /// path (the succession protocol lives there), overriding `fair:
    /// false`.
    pub recovery: Option<RecoveryPolicy>,
}

impl CsConfig {
    /// The configuration of the paper's Figure 3 (everything on).
    pub const PAPER: CsConfig = CsConfig {
        contention_flag: true,
        fair: true,
        fast_path: true,
        combining: false,
        adaptive_gate: false,
        cas_backoff: false,
        elimination: false,
        recovery: None,
    };
    /// Ablation (i): no `CONTENTION` guard.
    pub const NO_FLAG: CsConfig = CsConfig {
        contention_flag: false,
        fair: true,
        fast_path: true,
        combining: false,
        adaptive_gate: false,
        cas_backoff: false,
        elimination: false,
        recovery: None,
    };
    /// Ablation (ii): no `FLAG`/`TURN` fairness.
    pub const UNFAIR: CsConfig = CsConfig {
        contention_flag: true,
        fair: false,
        fast_path: true,
        combining: false,
        adaptive_gate: false,
        cas_backoff: false,
        elimination: false,
        recovery: None,
    };
    /// The combining upgrade: Figure 3's fast path, a flat-combining
    /// slow path, and the adaptive gate in front of the lock.
    pub const COMBINING: CsConfig = CsConfig {
        contention_flag: true,
        fair: true,
        fast_path: true,
        combining: true,
        adaptive_gate: true,
        cas_backoff: false,
        elimination: false,
        recovery: None,
    };
    /// The full escalation ladder (experiment E13): bare fast path,
    /// then CAS contention management, then elimination, then the
    /// lock. The paper's exact fast path and slow path bracket the two
    /// new middle rungs.
    pub const LADDER: CsConfig = CsConfig {
        contention_flag: true,
        fair: true,
        fast_path: true,
        combining: false,
        adaptive_gate: false,
        cas_backoff: true,
        elimination: true,
        recovery: None,
    };

    /// This configuration with the flat-combining slow path enabled.
    #[must_use]
    pub const fn with_combining(mut self) -> CsConfig {
        self.combining = true;
        self
    }

    /// This configuration with the adaptive gate enabled.
    #[must_use]
    pub const fn with_adaptive_gate(mut self) -> CsConfig {
        self.adaptive_gate = true;
        self
    }

    /// This configuration with the fast path disabled (every
    /// invocation takes the slow path — for forced-contention
    /// experiments and stress tests).
    #[must_use]
    pub const fn without_fast_path(mut self) -> CsConfig {
        self.fast_path = false;
        self
    }

    /// This configuration with the CAS contention-management rung
    /// (bounded, backoff-paced weak-op retries) enabled.
    #[must_use]
    pub const fn with_cas_backoff(mut self) -> CsConfig {
        self.cas_backoff = true;
        self
    }

    /// This configuration with the elimination rung (rendezvous with a
    /// concurrent inverse operation) enabled.
    #[must_use]
    pub const fn with_elimination(mut self) -> CsConfig {
        self.elimination = true;
        self
    }

    /// This configuration with crash recovery enabled under `policy`
    /// (see [`CsConfig::recovery`]).
    #[must_use]
    pub const fn with_recovery(mut self, policy: RecoveryPolicy) -> CsConfig {
        self.recovery = Some(policy);
        self
    }
}

impl Default for CsConfig {
    fn default() -> CsConfig {
        CsConfig::PAPER
    }
}

/// The publication list: one cache-padded record per process.
type PubList<O> = Box<[CachePadded<PubRecord<<O as Abortable>::Op, <O as Abortable>::Response>>]>;

/// Live registry handles mirroring the internal statistics, installed
/// (at most once) by [`ContentionSensitive::attach_metrics`].
///
/// Unlike the internal counters — where combining handoffs land in
/// `locked` — the completion counters here are **disjoint by path**
/// (`fast + eliminated + locked + combined` = completions), so a
/// scrape shows the path mix directly. The internal
/// `PathStats::locked` equals `locked + combined` of this family.
struct CsMetrics {
    /// Fast-path completions (lines 01–03), including the ladder's
    /// contention-managed retries — every lock-free weak-op success.
    fast: Counter,
    /// Fast-path weak-operation aborts (fast path proper and ladder
    /// retries; each one escalated one rung).
    fast_aborts: Counter,
    /// Completions via elimination rendezvous (the ladder's middle
    /// rung — no main-state access, no lock).
    eliminated: Counter,
    /// Own-tenure slow-path completions (`SlowGuard` / combiner's own
    /// operation).
    locked: Counter,
    /// Completions delivered by *another* process's combining tenure.
    combined: Counter,
    /// Survived under-lock panics.
    poisoned: Counter,
    /// Deadline expiries of `try_apply_for` / `try_apply_until`.
    timeouts: Counter,
    /// Poisoned publication-record handoffs (retried, not finished).
    record_poisoned: Counter,
    /// Publication records retired (tombstoned) because their owner
    /// was suspected dead.
    reclaimed: Counter,
    /// Combining lock tenures.
    batches: Counter,
    /// Requests served on behalf of other processes.
    served: Counter,
    /// Largest single combining tenure observed (own op + served).
    max_batch: Gauge,
    /// 1.0 while the adaptive gate diverts the fast path, else 0.0.
    gate_engaged: Gauge,
    /// The gate's current abort EWMA.
    gate_abort_ewma: Gauge,
    /// Fast-path completion latency.
    fast_ns: Timer,
    /// Slow-path completion latency (lock wait included).
    locked_ns: Timer,
    /// Time-to-recover: latency of slow-path acquisitions that went
    /// through at least one lock succession.
    recover_ns: Timer,
}

impl CsMetrics {
    /// Publishes the gate's current state into the two gauges.
    fn publish_gate(&self, gate: &AdaptiveGate) {
        self.gate_abort_ewma.set(gate.abort_ewma());
        self.gate_engaged
            .set(if gate.engaged() { 1.0 } else { 0.0 });
    }
}

/// How many operations completed on each path (diagnostics for
/// experiment E4: "fraction of ops that took the lock").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Operations that completed on the lock-free fast path
    /// (lines 01–03), including the escalation ladder's
    /// contention-managed retries (still lock-free weak-op successes).
    pub fast: u64,
    /// Operations that completed by elimination rendezvous — the
    /// ladder's middle rung, touching neither the object's main state
    /// nor the lock.
    pub eliminated: u64,
    /// Operations that completed under the lock (lines 04–13).
    pub locked: u64,
}

impl PathStats {
    /// Total completed operations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.fast + self.eliminated + self.locked
    }

    /// Fraction of operations that needed the lock (0.0 when idle).
    #[must_use]
    pub fn locked_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.locked as f64 / self.total() as f64
        }
    }
}

/// How often the slow path degraded instead of completing — the
/// robustness twin of [`PathStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Slow-path invocations that unwound (panicked) while holding the
    /// lock. Each one had its lock released and `CONTENTION` restored
    /// by the drop guard, so this counts *survived* poisonings, not
    /// wedged states.
    pub poisoned: u64,
    /// Deadline-bounded invocations that returned [`TimedOut`].
    pub timeouts: u64,
    /// Publication records a combiner poisoned by unwinding mid-batch.
    /// Each poisoned record's operation was **not** applied; its owner
    /// reclaimed the record and retried cleanly, so — unlike
    /// `poisoned` and `timeouts` — these are *survived handoffs inside
    /// still-running invocations*, not finished invocations, and they
    /// are excluded from [`Telemetry::invocations`].
    pub record_poisoned: u64,
}

/// Documented upper bound on the shared-memory accesses of a **solo,
/// uncontended slow-path** invocation with the paper configuration and
/// a TAS-class inner lock, counting only the transformation's own
/// accesses (not the wrapped object's weak operation):
///
/// | lines | accesses |
/// |---|---|
/// | 01 (`CONTENTION` read) | 1 |
/// | 04–06 (`FLAG[i]` write, `TURN` read, `FLAG[TURN]` read, lock TAS) | 4 |
/// | 07 + 09 (`CONTENTION` write ×2) | 2 |
/// | 10–12 (`FLAG[i]` write, `TURN` read, `FLAG[TURN]` read, `TURN` write, unlock write) | 5 |
///
/// Total 12, documented here with one access of headroom (a lock
/// whose release re-reads state, e.g. ticket, may add it). Contended
/// invocations wait, so their access count is unbounded in general —
/// this bound is the *floor* cost of taking the lock at all, the
/// number Theorem 1's "six accesses, no lock" fast path is avoiding.
/// Guarded by a regression test (`locked_path_stays_within_bound`).
pub const LOCKED_SOLO_ACCESS_BOUND: u64 = 13;

/// One snapshot of both statistics families, taken together.
///
/// The two families partition *finished invocations* between them:
/// [`PathStats`] counts the invocations that **completed** (returned a
/// non-⊥ response), split by which Figure 3 path they took, while
/// [`FaultStats`] counts the invocations that **degraded** instead —
/// unwound by a panic under the lock, or gave up at a deadline. Every
/// finished invocation lands in exactly one of five counters, giving
/// the closed form
///
/// ```text
/// invocations = fast + eliminated + locked + poisoned + timeouts
/// ```
///
/// where `locked` includes the operations a combiner executed on the
/// invoker's behalf (attributed to the invoker; the *live-metrics*
/// family splits them out as `combined` instead), and
/// [`FaultStats::record_poisoned`] is deliberately absent — poisoned
/// handoffs are retried inside a still-running invocation, not
/// finished ones. [`Telemetry::invocations`] computes exactly this
/// sum, and a regression test
/// (`telemetry_invocations_match_the_documented_closed_form`) pins the
/// identity.
///
/// Prefer [`ContentionSensitive::telemetry`] over calling
/// [`ContentionSensitive::stats`] and
/// [`ContentionSensitive::fault_stats`] separately when relating the
/// families (e.g. computing a degradation rate): the one-call snapshot
/// reads all four counters back-to-back, minimizing the skew window
/// against concurrent completions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Telemetry {
    /// Completions by path (fast vs locked).
    pub paths: PathStats,
    /// Degradations (survived poisonings, deadline expiries).
    pub faults: FaultStats,
}

impl Telemetry {
    /// Total finished invocations, completed or degraded.
    #[must_use]
    pub fn invocations(&self) -> u64 {
        self.paths.total() + self.faults.poisoned + self.faults.timeouts
    }

    /// Fraction of finished invocations that degraded instead of
    /// completing (0.0 when idle).
    #[must_use]
    pub fn degraded_fraction(&self) -> f64 {
        let total = self.invocations();
        if total == 0 {
            0.0
        } else {
            (self.faults.poisoned + self.faults.timeouts) as f64 / total as f64
        }
    }
}

/// Activity counters of the flat-combining slow path (all zero unless
/// [`CsConfig::combining`] is enabled).
///
/// In forced-slow-path runs every under-lock completion is either a
/// combiner's own operation (one per batch) or a served request, so
/// `batches + combined == PathStats::locked` — an invariant the stress
/// tests assert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CombiningStats {
    /// Lock tenures that ran the combining loop.
    pub batches: u64,
    /// Requests applied by a combiner on behalf of *other* processes.
    pub combined: u64,
    /// The largest single tenure (the combiner's own operation plus
    /// everything it served).
    pub max_batch: u64,
}

impl CombiningStats {
    /// Mean operations retired per lock tenure (≥ 1.0 once any batch
    /// ran; 0.0 when idle). This is the number that explains the E12
    /// speedup: a plain lock retires exactly 1.0 per tenure.
    #[must_use]
    pub fn avg_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.batches + self.combined) as f64 / self.batches as f64
        }
    }
}

/// Crash-recovery activity counters, from
/// [`ContentionSensitive::recovery_stats`] (`None` unless
/// [`CsConfig::recovery`] is set).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Publication records retired (tombstoned) by a combiner because
    /// their owner was suspected dead. Each one's operation was
    /// applied **zero** times; a falsely suspected owner reclaims and
    /// reposts.
    pub reclaimed: u64,
    /// Completed lock successions (custody seized from a suspected-
    /// dead holder).
    pub successions: u64,
    /// Unlock attempts by displaced (falsely suspected, then
    /// succeeded) holders that were fenced off.
    pub fenced_unlocks: u64,
    /// The degradation rung: `0` = normal, `1` = combining disabled
    /// (half the succession budget spent — new arrivals take the plain
    /// recovering lock), `2` = unrecoverable (budget exhausted; the
    /// slow path fails fast).
    pub degraded: u32,
    /// True once the succession budget is exhausted (same condition as
    /// [`ContentionSensitive::is_poisoned`]).
    pub failed: bool,
}

/// Private crash-recovery state, present when [`CsConfig::recovery`]
/// is set. Everything here is a plain (uncounted) atomic or an
/// uncounted lease read: recovery must not perturb Theorem 1's counted
/// budgets.
struct RecoveryInner {
    /// The per-process failure detector, shared with the lock.
    live: Arc<Liveness>,
    policy: RecoveryPolicy,
    /// Publication records tombstoned on behalf of suspected corpses.
    reclaimed: AtomicU64,
    /// High-water degradation rung (see [`RecoveryStats::degraded`]).
    degraded: AtomicU32,
}

/// Figure 3 of the paper, generalized to any [`Abortable`] object:
/// a **contention-sensitive, starvation-free** implementation.
///
/// ```text
/// operation strong_op(par):                                 % code for p_i %
/// (01) if (¬CONTENTION)
/// (02)     then res ← weak_op(par); if (res ≠ ⊥) then return(res) end if
/// (03) end if;
/// (04) FLAG[i] ← true;                                      ⎫
/// (05) wait((TURN = i) ∨ (¬FLAG[TURN]));                    ⎬ starvation-free
/// (06) LOCK.lock();                                         ⎭ lock (§4.4)
/// (07) CONTENTION ← true;
/// (08) repeat res ← weak_op(par) until res ≠ ⊥;
/// (09) CONTENTION ← false;
/// (10) FLAG[i] ← false;                                     ⎫
/// (11) if (¬FLAG[TURN]) then TURN ← (TURN mod n) + 1;       ⎬ §4.4
/// (12) LOCK.unlock();                                       ⎭
/// (13) return(res).
/// ```
///
/// Properties (Theorem 1): every invocation returns a non-⊥ value, all
/// invocations are linearizable, and a contention-free invocation uses
/// **no lock and six shared-memory accesses** (one read of
/// `CONTENTION` + the five accesses of a solo weak operation).
///
/// The starred lines live in [`StarvationFree`]; the inner lock `L`
/// only needs to be deadlock-free (a plain TAS lock suffices).
///
/// # The combining slow path
///
/// With [`CsConfig::combining`] enabled, the slow path is **flat
/// combining** instead of one-at-a-time locking: a contended operation
/// posts a request into its own cache-padded publication record
/// ([`cso_memory::combining`]) and spins locally; the process that
/// wins the lock becomes the *combiner* and applies every pending
/// request in one tenure, writing responses back through the records.
/// The fast path (lines 01–03) is untouched, so Theorem 1's six-access
/// bound still holds contention-free — the publication list and the
/// [`AdaptiveGate`] live entirely in uncounted atomics.
///
/// Linearizability is preserved: the combiner applies each claimed
/// request via the object's own `try_apply` while its owner is still
/// blocked inside `apply`, so the request's linearization point (the
/// successful weak operation inside the lock tenure) falls strictly
/// between the owner's invocation and response — who *executes* the
/// operation changes, where it *takes effect* in real time does not.
pub struct ContentionSensitive<O: Abortable, L> {
    inner: O,
    /// The paper's `CONTENTION` boolean register.
    contention: RegBool,
    /// The §4.4-boosted lock (lines 04–06 / 10–12).
    lock: StarvationFree<L>,
    config: CsConfig,
    /// One publication record per process (combining slow path).
    records: PubList<O>,
    /// The EWMA abort-rate gate in front of the fast path.
    gate: AdaptiveGate,
    // Path statistics: plain (uncounted) atomics — metrics, not part
    // of the algorithm's shared-memory footprint.
    fast: AtomicU64,
    eliminated: AtomicU64,
    locked: AtomicU64,
    poisoned: AtomicU64,
    timeouts: AtomicU64,
    record_poisoned: AtomicU64,
    // Combining statistics.
    batches: AtomicU64,
    combined: AtomicU64,
    max_batch: AtomicU64,
    /// Live registry handles, if [`ContentionSensitive::attach_metrics`]
    /// was called. The `OnceLock` probe is a plain (uncounted) atomic
    /// load, so unattached objects keep Theorem 1's access budget.
    metrics: OnceLock<CsMetrics>,
    /// Crash-recovery state, if [`CsConfig::recovery`] is set.
    recovery: Option<RecoveryInner>,
}

/// RAII custody of the slow path's shared state (lines 07–12).
///
/// Constructed immediately after the lock is acquired; its drop —
/// which also runs during a panic unwind — performs lines 09–12 in
/// order: restore `CONTENTION`, lower `FLAG[i]`, hand `TURN` on,
/// release the lock. Holding all of that in one drop makes the
/// critical section **panic-safe**: a weak operation (or an injected
/// fault) unwinding under the lock cannot strand `CONTENTION` or the
/// lock, which is exactly the §5 wedge this subsystem defends against.
///
/// The path counters live here too, *before* the release, so no
/// window exists in which the lock is free but the operation is
/// missing from [`PathStats`] (the old post-unlock `fetch_add` race).
struct SlowGuard<'a, O: Abortable, L: RawLock> {
    cs: &'a ContentionSensitive<O, L>,
    proc: usize,
    /// Set on normal completion; selects the `locked` counter. Left
    /// false on unwind (counts `poisoned`) and on an under-lock
    /// timeout (the caller counts `timeouts`).
    completed: bool,
}

impl<O: Abortable, L: RawLock> Drop for SlowGuard<'_, O, L> {
    fn drop(&mut self) {
        let cs = self.cs;
        // Count first: once the lock is released, observers must
        // already see this operation in the statistics.
        if self.completed {
            cs.locked.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = cs.metrics.get() {
                m.locked.inc();
            }
            probe!(Event::LockedComplete);
        } else if std::thread::panicking() {
            cs.poisoned.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = cs.metrics.get() {
                m.poisoned.inc();
            }
            probe!(Event::SlowPoisoned);
        }
        // Line 09. `write_lazy` skips the store when the register
        // already reads `false` (it never does on this path — the
        // holder raised it at line 07 — so the solo budget is the
        // same); the probe fires only for real transitions.
        if cs.config.contention_flag && cs.contention.write_lazy(false) {
            probe!(Event::ContentionClear);
        }
        probe!(Event::LockRelease(self.proc as u32));
        // Lines 10–12 (fair) or line 12 alone (unfair ablation).
        // Recovery implies the booster: the recovering acquisition
        // went through FLAG/TURN, so the release must too.
        if cs.config.fair || cs.recovery.is_some() {
            cs.lock.unlock(self.proc);
        } else {
            cs.lock.inner().unlock();
        }
    }
}

/// How many claim-and-apply sweeps one combiner tenure runs before
/// handing the lock back. Bounding the tenure keeps a steady stream of
/// arrivals from starving the combiner's own caller; anything missed
/// is picked up by the next tenure.
const COMBINE_ROUNDS: usize = 3;

/// Rung 2: how many contention-managed weak-op retries before the
/// ladder escalates. Small by design — if three backoff-paced retries
/// all abort, the contention is sustained and waiting longer at this
/// rung just burns cycles.
const CM_RETRIES: u32 = 3;

/// Rung 3: elimination park length (spin polls) while the gate's abort
/// EWMA is calm — a short window, since a partner is not especially
/// likely.
const ELIM_POLLS_SHORT: u32 = 64;

/// Rung 3: elimination park length while the gate is engaged (the
/// object is demonstrably hot) — park longer, an inverse operation is
/// probably moments away.
const ELIM_POLLS_LONG: u32 = 512;

thread_local! {
    /// Rung 2's failure history, per *thread* (Dice–Hendler–Mirsky-
    /// style lightweight contention management): the thread, not the
    /// object, is what experiences contention, so the history survives
    /// across operations and across objects. Thread-local and
    /// uncounted — invisible to the step-complexity accounting.
    static CAS_CM: RefCell<CasBackoff> = RefCell::new(CasBackoff::from_entropy());
}

/// RAII custody of a **combining** lock tenure — the flat-combining
/// counterpart of [`SlowGuard`].
///
/// Between claiming a publication record and completing it, the record
/// index sits in `claimed[applied..]`. If the tenure unwinds (an
/// injected fault or a panicking weak operation), the drop poisons
/// exactly those in-flight records **before** releasing the lock, so
/// each owner observes a terminal state, reclaims, and retries —
/// records that were merely posted (never claimed) are untouched and
/// simply wait for the next combiner. Then `CONTENTION` is restored
/// and the inner lock released, as in [`SlowGuard`].
///
/// The combining path takes the *inner* (deadlock-free) lock directly
/// rather than the `FLAG`/`TURN`-boosted one: combining provides its
/// own fairness (every tenure serves all pending records), so the
/// round-robin booster would only add handoff latency.
struct CombinerGuard<'a, O: Abortable, L: RawLock> {
    cs: &'a ContentionSensitive<O, L>,
    proc: usize,
    /// Indices of records claimed in the current sweep.
    claimed: Vec<usize>,
    /// How many of `claimed` have been completed.
    applied: usize,
    completed: bool,
}

impl<O: Abortable, L: RawLock> Drop for CombinerGuard<'_, O, L> {
    fn drop(&mut self) {
        let cs = self.cs;
        if self.completed {
            cs.locked.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = cs.metrics.get() {
                m.locked.inc();
            }
            probe!(Event::LockedComplete);
        } else if std::thread::panicking() {
            cs.poisoned.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = cs.metrics.get() {
                m.poisoned.inc();
            }
            probe!(Event::SlowPoisoned);
            // Poison only the in-flight claims; their owners retry.
            for &i in &self.claimed[self.applied..] {
                cs.records[i].poison();
            }
        }
        if cs.config.contention_flag && cs.contention.write_lazy(false) {
            probe!(Event::ContentionClear);
        }
        probe!(Event::LockRelease(self.proc as u32));
        // Custody-fenced release: a combiner that was falsely
        // suspected and succeeded mid-tenure must not release the
        // inner lock out from under its successor. Without recovery
        // this is exactly `inner().unlock()`.
        cs.lock.raw_unlock(self.proc);
    }
}

impl<O: Abortable, L> std::fmt::Debug for ContentionSensitive<O, L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = PathStats {
            fast: self.fast.load(Ordering::Relaxed),
            eliminated: self.eliminated.load(Ordering::Relaxed),
            locked: self.locked.load(Ordering::Relaxed),
        };
        f.debug_struct("ContentionSensitive")
            .field("config", &self.config)
            .field("stats", &stats)
            .finish_non_exhaustive()
    }
}

impl<O: Abortable, L: RawLock> ContentionSensitive<O, L> {
    /// Wraps `inner` for `n` processes, using the deadlock-free lock
    /// `lock` for the slow path — the paper's exact Figure 3.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(inner: O, lock: L, n: usize) -> ContentionSensitive<O, L> {
        ContentionSensitive::with_config(inner, lock, n, CsConfig::PAPER)
    }

    /// Like [`ContentionSensitive::new`] with an explicit mechanism
    /// selection (see [`CsConfig`]; used by the E8 ablations).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_config(inner: O, lock: L, n: usize, config: CsConfig) -> ContentionSensitive<O, L> {
        let lock = StarvationFree::new(lock, n);
        let recovery = config.recovery.map(|policy| {
            let live = Liveness::new(n);
            lock.enable_recovery(Arc::clone(&live), policy);
            RecoveryInner {
                live,
                policy,
                reclaimed: AtomicU64::new(0),
                degraded: AtomicU32::new(0),
            }
        });
        ContentionSensitive {
            inner,
            contention: RegBool::new(false),
            lock,
            config,
            records: (0..n).map(|_| CachePadded::new(PubRecord::new())).collect(),
            gate: AdaptiveGate::new(),
            fast: AtomicU64::new(0),
            eliminated: AtomicU64::new(0),
            locked: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            record_poisoned: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            combined: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            metrics: OnceLock::new(),
            recovery,
        }
    }

    /// Registers this object's live metrics under `prefix` (e.g.
    /// `prefix = "stack"` yields `stack_ops_fast_total`, …), wires the
    /// [`StarvationFree`] lock's counters in under the same prefix,
    /// and registers the global probe-ring drop gauge.
    ///
    /// The first call wins; later calls (including against a different
    /// registry) are no-ops — the handles live for the object's
    /// lifetime. Observability is strictly additive: unattached, every
    /// metric site costs one *uncounted* atomic load (the `OnceLock`
    /// probe), so the step-budget tests still measure Theorem 1's
    /// bound unchanged. Attached, operations additionally bump
    /// wait-free sharded counters and take two `Instant` readings to
    /// feed the per-path latency histograms.
    pub fn attach_metrics(&self, registry: &Registry, prefix: &str) {
        if self.metrics.get().is_some() {
            // Already attached: do not register names into (another)
            // registry that will never receive increments. A racing
            // first attach is still resolved by the `OnceLock` below.
            return;
        }
        let _ = self.metrics.set(CsMetrics {
            fast: registry.counter(&format!("{prefix}_ops_fast_total")),
            fast_aborts: registry.counter(&format!("{prefix}_fast_aborts_total")),
            eliminated: registry.counter(&format!("{prefix}_ops_eliminated_total")),
            locked: registry.counter(&format!("{prefix}_ops_locked_total")),
            combined: registry.counter(&format!("{prefix}_ops_combined_total")),
            poisoned: registry.counter(&format!("{prefix}_slow_poisoned_total")),
            timeouts: registry.counter(&format!("{prefix}_timeouts_total")),
            record_poisoned: registry.counter(&format!("{prefix}_record_poisoned_total")),
            reclaimed: registry.counter(&format!("{prefix}_records_reclaimed_total")),
            batches: registry.counter(&format!("{prefix}_combine_batches_total")),
            served: registry.counter(&format!("{prefix}_combine_served_total")),
            max_batch: registry.gauge(&format!("{prefix}_combine_max_batch")),
            gate_engaged: registry.gauge(&format!("{prefix}_gate_engaged")),
            gate_abort_ewma: registry.gauge(&format!("{prefix}_gate_abort_ewma")),
            fast_ns: registry.timer(&format!("{prefix}_fast_ns")),
            locked_ns: registry.timer(&format!("{prefix}_locked_ns")),
            recover_ns: registry.timer(&format!("{prefix}_recover_ns")),
        });
        if let Some(m) = self.metrics.get() {
            m.publish_gate(&self.gate);
        }
        self.lock.attach_metrics(registry, prefix);
        registry.register_probe_drop_gauge();
    }

    /// The progress condition of the paper configuration.
    pub const PROGRESS: ProgressCondition = ProgressCondition::StarvationFree;

    /// Applies `op` on behalf of process `proc`; never returns ⊥
    /// (Theorem 1 / Lemma 1).
    ///
    /// # Panics
    ///
    /// Panics if `proc` is not below the `n` given at construction,
    /// or — with [`CsConfig::recovery`] — if the operation needs the
    /// slow path after the lock became [`Unrecoverable`] (use
    /// [`ContentionSensitive::try_apply_for`] for a non-panicking
    /// report of that state).
    pub fn apply(&self, proc: usize, op: &O::Op) -> O::Response {
        assert!(proc < self.lock.n(), "process id out of range");
        // Lines 01–03: the lock-free shortcut.
        if let Some(res) = self.fast_path(op) {
            return res;
        }
        // Rungs 2–3 of the escalation ladder (no-op unless enabled).
        if let Some(res) = self.ladder(op) {
            return res;
        }

        // The slow-path timer covers the lock wait too — that is the
        // latency an operation diverted off the fast path actually
        // pays. `Instant` is only read when metrics are attached.
        let slow_t0 = self.metrics.get().map(|_| Instant::now());

        // The combining slow path replaces lines 04–13 wholesale
        // (until repeated successions degrade it back to plain
        // locking).
        if self.combining_enabled() {
            let res = self.apply_combining(proc, op);
            if let (Some(m), Some(t0)) = (self.metrics.get(), slow_t0) {
                m.locked_ns.record(t0.elapsed());
            }
            return res;
        }

        // Lines 04–06: acquire the (boosted) lock.
        fail_point!("cs::lock-wait");
        if let Err(e) = self.lock_slow(proc) {
            panic!("{e}");
        }
        probe!(Event::LockAcquire(proc as u32));
        let mut guard = SlowGuard {
            cs: self,
            proc,
            completed: false,
        };

        // Line 07. The previous holder lowered the register before
        // releasing, so the lazy store is always a real toggle here —
        // the read-before-write only saves the redundant-store case
        // (repeated raises within one combining storm).
        if self.config.contention_flag && self.contention.write_lazy(true) {
            probe!(Event::ContentionRaise);
        }
        fail_point!("cs::locked");

        // Line 08: bounded in practice by Lemma 2 — only the fast-path
        // operations already in flight can make us abort, and future
        // invocations see CONTENTION and queue behind the lock. The
        // spinner only yields the CPU so those in-flight operations can
        // finish on oversubscribed machines; it adds no shared accesses.
        let mut spinner = Spinner::new();
        let res = loop {
            match self.inner.try_apply(op) {
                Ok(res) => break res,
                Err(_) => spinner.spin(),
            }
        };

        // Lines 09–13 run in the guard's drop (also on unwind).
        guard.completed = true;
        drop(guard);
        if let (Some(m), Some(t0)) = (self.metrics.get(), slow_t0) {
            m.locked_ns.record(t0.elapsed());
        }
        res
    }

    /// Deadline-bounded [`ContentionSensitive::apply`]: gives up — with
    /// **no effect** on the object — once `timeout` elapses without the
    /// operation completing.
    ///
    /// The fast path is unchanged (lines 01–03 are wait-free already);
    /// the deadline governs the slow path: both the starvation-free
    /// lock acquisition (lines 04–06) and the under-lock retry loop
    /// (line 08) stop at the deadline. This keeps invocations live even
    /// when a *crashed* (not merely panicked) process wedged the lock —
    /// the paper's §5 failure the transformation cannot otherwise
    /// survive.
    ///
    /// # Errors
    ///
    /// Returns [`CsError::TimedOut`] if the deadline expired first,
    /// and [`CsError::Unrecoverable`] if [`CsConfig::recovery`] is set
    /// and the lock's succession budget is exhausted. Either way the
    /// operation took no effect: it either never acquired the lock, or
    /// held it only across aborted weak attempts.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is not below the `n` given at construction.
    pub fn try_apply_for(
        &self,
        proc: usize,
        op: &O::Op,
        timeout: Duration,
    ) -> Result<O::Response, CsError> {
        self.try_apply_until(proc, op, Deadline::after(timeout))
    }

    /// [`ContentionSensitive::try_apply_for`] with an absolute
    /// [`Deadline`] (shared across several calls when composing).
    ///
    /// # Errors
    ///
    /// Returns [`CsError::TimedOut`] if the deadline expired first and
    /// [`CsError::Unrecoverable`] if the crash-succession budget is
    /// exhausted; the object is unchanged either way.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is not below the `n` given at construction.
    pub fn try_apply_until(
        &self,
        proc: usize,
        op: &O::Op,
        deadline: Deadline,
    ) -> Result<O::Response, CsError> {
        assert!(proc < self.lock.n(), "process id out of range");
        // Lines 01–03: the shortcut costs no waiting, deadline or not.
        if let Some(res) = self.fast_path(op) {
            return Ok(res);
        }
        // Rungs 2–3: bounded (backoff windows and park polls are
        // finite), so one pass through the ladder respects any
        // reasonable deadline; skip it entirely once expired.
        if !deadline.expired() {
            if let Some(res) = self.ladder(op) {
                return Ok(res);
            }
        }

        let slow_t0 = self.metrics.get().map(|_| Instant::now());

        // Lines 04–06, bounded.
        fail_point!("cs::lock-wait");
        let acquired = if let Some(rcv) = &self.recovery {
            rcv.live.announce(proc);
            let before = self.successions();
            let t0 = self.metrics.get().map(|_| Instant::now());
            match self.lock.lock_recovering_until(proc, deadline) {
                RecoveringLock::Acquired => {
                    self.note_recovered(before, t0);
                    true
                }
                RecoveringLock::TimedOut => false,
                RecoveringLock::Poisoned => {
                    self.note_degraded();
                    return Err(CsError::Unrecoverable);
                }
            }
        } else if self.config.fair {
            self.lock.lock_until(proc, deadline)
        } else {
            self.lock.inner().try_lock_until(deadline)
        };
        if !acquired {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.metrics.get() {
                m.timeouts.inc();
            }
            probe!(Event::SlowTimeout);
            return Err(TimedOut.into());
        }
        probe!(Event::LockAcquire(proc as u32));
        let mut guard = SlowGuard {
            cs: self,
            proc,
            completed: false,
        };

        // Line 07. The previous holder lowered the register before
        // releasing, so the lazy store is always a real toggle here —
        // the read-before-write only saves the redundant-store case
        // (repeated raises within one combining storm).
        if self.config.contention_flag && self.contention.write_lazy(true) {
            probe!(Event::ContentionRaise);
        }
        fail_point!("cs::locked");

        // Line 08, bounded. Giving up mid-loop is safe: every failed
        // try_apply had no effect, and the guard restores lines 09–12.
        let mut spinner = Spinner::new();
        loop {
            match self.inner.try_apply(op) {
                Ok(res) => {
                    guard.completed = true;
                    drop(guard);
                    if let (Some(m), Some(t0)) = (self.metrics.get(), slow_t0) {
                        m.locked_ns.record(t0.elapsed());
                    }
                    return Ok(res);
                }
                Err(_) => {
                    if !spinner.spin_deadline(deadline) {
                        drop(guard);
                        self.timeouts.fetch_add(1, Ordering::Relaxed);
                        if let Some(m) = self.metrics.get() {
                            m.timeouts.inc();
                        }
                        probe!(Event::SlowTimeout);
                        return Err(TimedOut.into());
                    }
                }
            }
        }
    }

    /// Whether new arrivals should take the combining slow path: the
    /// configuration enables it *and* the degradation ladder has not
    /// fallen back to plain locking (rung 1). In-flight posters are
    /// unaffected — every waiter can still become its own combiner.
    fn combining_enabled(&self) -> bool {
        self.config.combining
            && self
                .recovery
                .as_ref()
                .map_or(true, |r| r.degraded.load(Ordering::Relaxed) == 0)
    }

    /// Lines 04–06 for the plain (non-combining) slow path: the
    /// boosted lock, via the crash-recovering acquisition when
    /// [`CsConfig::recovery`] is set.
    ///
    /// # Errors
    ///
    /// Returns [`Unrecoverable`] once the succession budget is
    /// exhausted (nothing is held; the operation had no effect).
    fn lock_slow(&self, proc: usize) -> Result<(), Unrecoverable> {
        let Some(rcv) = &self.recovery else {
            if self.config.fair {
                self.lock.lock(proc);
            } else {
                self.lock.inner().lock();
            }
            return Ok(());
        };
        rcv.live.announce(proc);
        let before = self.successions();
        let t0 = self.metrics.get().map(|_| Instant::now());
        if !self.lock.lock_recovering(proc) {
            self.note_degraded();
            return Err(Unrecoverable);
        }
        self.note_recovered(before, t0);
        Ok(())
    }

    /// Completed lock successions so far (0 when recovery is off).
    fn successions(&self) -> u64 {
        self.lock.recovery_stats().map_or(0, |s| s.successions)
    }

    /// After a recovering acquisition: if it went through a
    /// succession, record the time-to-recover, and refresh the
    /// degradation rung either way.
    fn note_recovered(&self, successions_before: u64, t0: Option<Instant>) {
        if self.successions() > successions_before {
            if let (Some(m), Some(t0)) = (self.metrics.get(), t0) {
                m.recover_ns.record(t0.elapsed());
            }
        }
        self.note_degraded();
    }

    /// Folds the lock's recovery state into the degradation high-water
    /// mark: rung 1 (combining disabled) once half the succession
    /// budget is spent, rung 2 (unrecoverable) once the lock poisons
    /// itself. Monotone — a rung is never un-climbed, so the ladder
    /// cannot flap.
    fn note_degraded(&self) {
        let Some(rcv) = &self.recovery else {
            return;
        };
        let rung = if self.lock.is_poisoned() {
            2
        } else {
            u32::from(
                self.successions() >= u64::from(rcv.policy.max_successions.div_ceil(2).max(1)),
            )
        };
        rcv.degraded.fetch_max(rung, Ordering::Relaxed);
    }

    /// Lines 01–03: one `CONTENTION` read plus a weak attempt. With
    /// the adaptive gate enabled, an engaged gate (sustained abort
    /// EWMA) also diverts — but its bookkeeping is all uncounted, so
    /// the contention-free cost stays at Theorem 1's six accesses.
    fn fast_path(&self, op: &O::Op) -> Option<O::Response> {
        if !self.config.fast_path {
            return None;
        }
        if self.config.contention_flag && self.contention.read() {
            return None;
        }
        if self.config.adaptive_gate && self.gate.should_divert() {
            return None;
        }
        fail_point!("cs::fast", return None);
        probe!(Event::FastAttempt);
        let m = self.metrics.get();
        let t0 = m.map(|_| Instant::now());
        match self.inner.try_apply(op) {
            Ok(res) => {
                if self.config.adaptive_gate {
                    self.gate.record(false);
                }
                self.fast.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = m {
                    m.fast.inc();
                    if let Some(t0) = t0 {
                        m.fast_ns.record(t0.elapsed());
                    }
                    if self.config.adaptive_gate {
                        m.publish_gate(&self.gate);
                    }
                }
                probe!(Event::FastSuccess);
                Some(res)
            }
            Err(_) => {
                if self.config.adaptive_gate {
                    self.gate.record(true);
                }
                if let Some(m) = m {
                    m.fast_aborts.inc();
                    if self.config.adaptive_gate {
                        m.publish_gate(&self.gate);
                    }
                }
                probe!(Event::FastAbort);
                None
            }
        }
    }

    /// Rungs 2–3 of the escalation ladder, between the bare fast path
    /// (rung 1) and the lock (rung 4):
    ///
    /// * **rung 2** ([`CsConfig::cas_backoff`]): up to [`CM_RETRIES`]
    ///   weak-op retries, each paced by the thread's [`CasBackoff`]
    ///   failure history — the retries are ordinary lock-free attempts,
    ///   so successes count as `fast` and emit the fast-path probes;
    /// * **rung 3** ([`CsConfig::elimination`]): one rendezvous attempt
    ///   via [`Abortable::try_eliminate`], parking for a gate-scaled
    ///   poll budget. A completion touches neither the object's main
    ///   state nor the lock and counts as `eliminated`.
    ///
    /// Both rungs bail out the moment an uncounted peek shows
    /// `CONTENTION` raised: a lock holder is in its line-08 window and
    /// escalating (to queue behind it) beats interfering with it.
    /// Returns `None` to escalate to the slow path. Solo invocations
    /// never reach this method — their fast path succeeds — so
    /// Theorem 1's six-access bound is untouched, which the
    /// step-budget tests pin down with the ladder enabled.
    fn ladder(&self, op: &O::Op) -> Option<O::Response> {
        if self.config.cas_backoff {
            for _ in 0..CM_RETRIES {
                if self.config.contention_flag && self.contention.peek() {
                    break;
                }
                CAS_CM.with(|cm| cm.borrow_mut().wait());
                probe!(Event::FastAttempt);
                match self.inner.try_apply(op) {
                    Ok(res) => {
                        CAS_CM.with(|cm| cm.borrow_mut().on_success());
                        if self.config.adaptive_gate {
                            self.gate.record(false);
                        }
                        self.fast.fetch_add(1, Ordering::Relaxed);
                        if let Some(m) = self.metrics.get() {
                            m.fast.inc();
                            if self.config.adaptive_gate {
                                m.publish_gate(&self.gate);
                            }
                        }
                        probe!(Event::FastSuccess);
                        return Some(res);
                    }
                    Err(_) => {
                        CAS_CM.with(|cm| cm.borrow_mut().on_failure());
                        if self.config.adaptive_gate {
                            self.gate.record(true);
                        }
                        if let Some(m) = self.metrics.get() {
                            m.fast_aborts.inc();
                        }
                        probe!(Event::FastAbort);
                    }
                }
            }
        }
        if self.config.elimination {
            if self.config.contention_flag && self.contention.peek() {
                return None;
            }
            let polls = if self.gate.engaged() {
                ELIM_POLLS_LONG
            } else {
                ELIM_POLLS_SHORT
            };
            probe!(Event::ElimAttempt);
            if let Some(res) = self.inner.try_eliminate(op, polls) {
                self.eliminated.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.eliminated.inc();
                }
                probe!(Event::EliminatedComplete);
                return Some(res);
            }
        }
        None
    }

    /// The flat-combining slow path: post a publication record, then
    /// spin locally until either a combiner delivers the response or
    /// the lock is won — in which case *we* are the combiner.
    ///
    /// Progress: the record is withdrawn before combining (under the
    /// lock, so no claim can race it), and every combiner's sweep
    /// claims all records posted before it, so a posted request is
    /// served within the next full tenure — no waiter starves as long
    /// as some poster wins the (deadlock-free) lock.
    fn apply_combining(&self, proc: usize, op: &O::Op) -> O::Response {
        if let Some(rcv) = &self.recovery {
            rcv.live.announce(proc);
        }
        let rec: &PubRecord<O::Op, O::Response> = &self.records[proc];
        #[cfg(feature = "trace")]
        let posted_at = std::time::Instant::now();
        // SAFETY: this frame does not return until the record reaches
        // a terminal state it consumes (retract under the lock, take
        // after Done, reclaim after Poisoned/Tombstone), so `op` stays
        // valid for any claimer.
        unsafe { rec.post(op) };
        probe!(Event::RecordPost);
        fail_point!("cs::post");
        let mut spinner = Spinner::new();
        loop {
            match rec.state() {
                RecordState::Done => {
                    // Causal edge: the combiner stamped its trace-
                    // thread id before `complete`, and `state()`'s
                    // Acquire pairs with `complete`'s Release, so the
                    // stamp read here is the thread that executed us.
                    let helper = rec.helper();
                    let res = rec.take_response();
                    // An under-lock completion, attributed to this
                    // (invoking) process — the combiner only executed.
                    self.locked.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = self.metrics.get() {
                        m.combined.inc();
                    }
                    #[cfg(feature = "trace")]
                    probe!(Event::RecordHandoff(
                        u32::try_from(posted_at.elapsed().as_nanos()).unwrap_or(u32::MAX)
                    ));
                    probe_if!(helper != NO_HELPER, Event::HelpedByCombiner(helper));
                    probe!(Event::CombinedComplete);
                    return res;
                }
                RecordState::Poisoned => {
                    // The combiner unwound before applying us: the
                    // operation took no effect. Reclaim and repost.
                    rec.reclaim_poisoned();
                    self.record_poisoned.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = self.metrics.get() {
                        m.record_poisoned.inc();
                    }
                    probe!(Event::RecordPoisoned);
                    // SAFETY: as for the initial post above.
                    unsafe { rec.post(op) };
                    probe!(Event::RecordPost);
                }
                RecordState::Tombstone => {
                    // A combiner suspected us dead and retired the
                    // request *unapplied*. We are alive to read this,
                    // so the suspicion was false: refresh the lease,
                    // reclaim, and repost — the operation has still
                    // been applied exactly zero times.
                    rec.reclaim_tombstone();
                    if let Some(rcv) = &self.recovery {
                        rcv.live.announce(proc);
                    }
                    // SAFETY: as for the initial post above.
                    unsafe { rec.post(op) };
                    probe!(Event::RecordPost);
                }
                _ => {
                    if self.lock.inner().try_lock() {
                        self.lock.note_holder(proc);
                        probe!(Event::LockAcquire(proc as u32));
                        if rec.try_retract() {
                            return self.combine(proc, op);
                        }
                        // The previous holder moved our record to a
                        // terminal state just before we acquired;
                        // release and collect it on the next poll.
                        probe!(Event::LockRelease(proc as u32));
                        self.lock.raw_unlock(proc);
                    } else if let Some(rcv) = &self.recovery {
                        rcv.live.beat(proc);
                        // The lock is held: maybe by a live combiner
                        // about to serve us, maybe by a corpse. Try to
                        // seize custody of a suspected-dead holder's
                        // tenure (no-op before the grace period).
                        if self.lock.try_succeed_raw(proc) == Succession::Acquired {
                            self.note_degraded();
                            probe!(Event::LockAcquire(proc as u32));
                            // The corpse's in-flight claims will never
                            // complete; poison them so their (live)
                            // owners reclaim and repost. Our own
                            // record may be among them, in which case
                            // the retract below fails and the Poisoned
                            // arm of this loop reposts it.
                            self.poison_orphan_claims();
                            if rec.try_retract() {
                                return self.combine(proc, op);
                            }
                            probe!(Event::LockRelease(proc as u32));
                            self.lock.raw_unlock(proc);
                        } else {
                            spinner.spin();
                        }
                    } else {
                        spinner.spin();
                    }
                }
            }
        }
    }

    /// Called with the inner lock freshly *seized* from a suspected-
    /// dead combiner: every record still `Claimed` — the seizer's own
    /// included — was in flight under the corpse (claims happen only
    /// under the lock we now hold) and will never complete. Poison
    /// them so their owners reclaim and repost.
    ///
    /// Exactly-once caveat: if the corpse crashed *between* applying a
    /// claimed operation and writing `complete`, the owner's retry
    /// applies it twice. That two-instruction handoff window is the
    /// residual hazard of crash recovery without write-ahead intent
    /// logging; the chaos fail points sit before the apply, so every
    /// instrumented kill stays exactly-once (see DESIGN.md).
    fn poison_orphan_claims(&self) {
        for r in &self.records {
            if r.state() == RecordState::Claimed {
                r.poison();
                probe!(Event::RecordPoisoned);
            }
        }
    }

    /// The combiner's lock tenure: apply our own operation, then serve
    /// every pending publication record. Called with the inner lock
    /// held and our own record retracted; the guard releases the lock
    /// (and poisons in-flight claims) even on unwind.
    fn combine(&self, proc: usize, op: &O::Op) -> O::Response {
        let mut guard = CombinerGuard {
            cs: self,
            proc,
            claimed: Vec::new(),
            applied: 0,
            completed: false,
        };
        // Line 07: divert fast-path arrivals while we batch.
        if self.config.contention_flag && self.contention.write_lazy(true) {
            probe!(Event::ContentionRaise);
        }
        fail_point!("cs::locked");
        // Line 08 for our own operation.
        let mut spinner = Spinner::new();
        let res = loop {
            match self.inner.try_apply(op) {
                Ok(res) => break res,
                Err(_) => spinner.spin(),
            }
        };
        let served = self.serve_pending(&mut guard);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.combined.fetch_add(served, Ordering::Relaxed);
        let prev_max = self.max_batch.fetch_max(served + 1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.batches.inc();
            m.served.add(served);
            // Racing tenures may publish out of order; the gauge is a
            // best-effort view of the monotonic internal counter.
            m.max_batch.set(prev_max.max(served + 1) as f64);
        }
        probe!(Event::CombineBatch(
            u32::try_from(served + 1).unwrap_or(u32::MAX)
        ));
        guard.completed = true;
        drop(guard);
        res
    }

    /// Sweeps the publication list, claiming and applying every posted
    /// request, for up to [`COMBINE_ROUNDS`] rounds (bounding the
    /// tenure keeps the combiner itself from being starved by a steady
    /// request stream). Returns the number of requests served.
    fn serve_pending(&self, guard: &mut CombinerGuard<'_, O, L>) -> u64 {
        let mut ops: Vec<*const O::Op> = Vec::new();
        let mut served = 0u64;
        // This tenure's trace-thread id, stamped into every record we
        // complete so the owner can attribute its completion to us
        // (`NO_HELPER` in untraced builds — owners then skip the edge).
        let combiner_tid = cso_trace::probe::thread_id();
        for _ in 0..COMBINE_ROUNDS {
            // Claim phase: collect everything posted so far.
            ops.clear();
            guard.claimed.clear();
            guard.applied = 0;
            for (i, rec) in self.records.iter().enumerate() {
                if i == guard.proc {
                    continue;
                }
                if let Some(rcv) = &self.recovery {
                    // Orphan reclamation: a request whose poster is
                    // suspected dead is retired *unapplied* — nobody
                    // will collect its response. The POSTED→TOMBSTONE
                    // CAS makes this exactly-once: the record is
                    // either claimed (applied once) or tombstoned
                    // (applied zero times), never both; a falsely
                    // suspected poster reclaims and reposts.
                    if rec.state() == RecordState::Posted
                        && rcv.live.suspect(i, rcv.policy.grace)
                        && rec.try_tombstone_posted()
                    {
                        rcv.reclaimed.fetch_add(1, Ordering::Relaxed);
                        if let Some(m) = self.metrics.get() {
                            m.reclaimed.inc();
                        }
                        probe!(Event::SuspectRaised(i as u32));
                        probe!(Event::RecordReclaimed(i as u32));
                        continue;
                    }
                }
                if let Some(ptr) = rec.try_claim() {
                    guard.claimed.push(i);
                    ops.push(ptr);
                }
            }
            if ops.is_empty() {
                break;
            }
            // Apply phase: the object sees the batch boundaries.
            self.inner.batch_begin(ops.len());
            for (k, ptr) in ops.iter().enumerate() {
                fail_point!("cs::combine");
                // SAFETY: the claim pins the owner in
                // `apply_combining` until we publish a terminal state,
                // so the pointer it posted is still live.
                let claimed_op = unsafe { &**ptr };
                let mut spinner = Spinner::new();
                let res = loop {
                    match self.inner.try_apply(claimed_op) {
                        Ok(res) => break res,
                        Err(_) => spinner.spin(),
                    }
                };
                self.records[guard.claimed[k]].stamp_helper(combiner_tid);
                self.records[guard.claimed[k]].complete(res);
                guard.applied = k + 1;
            }
            self.inner.batch_end(ops.len());
            served += ops.len() as u64;
        }
        served
    }

    /// Snapshot of how many operations used each path.
    pub fn stats(&self) -> PathStats {
        PathStats {
            fast: self.fast.load(Ordering::Relaxed),
            eliminated: self.eliminated.load(Ordering::Relaxed),
            locked: self.locked.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the degradation counters (survived slow-path panics
    /// and deadline expiries). See the module docs for the fault model.
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            poisoned: self.poisoned.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            record_poisoned: self.record_poisoned.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the flat-combining activity counters (all zero
    /// unless [`CsConfig::combining`] is on).
    pub fn combining_stats(&self) -> CombiningStats {
        CombiningStats {
            batches: self.batches.load(Ordering::Relaxed),
            combined: self.combined.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
        }
    }

    /// The adaptive contention gate (for inspection, and for tests and
    /// experiments that need to force a deterministic gate state via
    /// [`AdaptiveGate::force_engage`]). It only routes operations when
    /// [`CsConfig::adaptive_gate`] is on.
    pub fn gate(&self) -> &AdaptiveGate {
        &self.gate
    }

    /// One coherent snapshot of [`PathStats`] and [`FaultStats`]
    /// together — see [`Telemetry`] for how the families relate.
    pub fn telemetry(&self) -> Telemetry {
        Telemetry {
            paths: self.stats(),
            faults: self.fault_stats(),
        }
    }

    /// Whether the slow path has permanently failed: the crash-
    /// succession budget is exhausted, [`ContentionSensitive::apply`]
    /// panics when diverted off the fast path and
    /// [`ContentionSensitive::try_apply_for`] reports
    /// [`CsError::Unrecoverable`]. Always `false` without
    /// [`CsConfig::recovery`]. The *fast* path keeps completing
    /// operations either way — only the lock is lost.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.lock.is_poisoned()
    }

    /// Snapshot of the crash-recovery counters; `None` unless
    /// [`CsConfig::recovery`] is set.
    #[must_use]
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        let rcv = self.recovery.as_ref()?;
        self.note_degraded();
        let sf = self.lock.recovery_stats()?;
        Some(RecoveryStats {
            reclaimed: rcv.reclaimed.load(Ordering::Relaxed),
            successions: sf.successions,
            fenced_unlocks: sf.fenced_unlocks,
            degraded: rcv.degraded.load(Ordering::Relaxed),
            failed: sf.failed,
        })
    }

    /// The per-process failure detector backing crash recovery;
    /// `None` unless [`CsConfig::recovery`] is set. Chaos harnesses
    /// use it to declare a stalled process dead
    /// ([`Liveness::mark_dead`]) without waiting out the grace period.
    #[must_use]
    pub fn liveness(&self) -> Option<&Arc<Liveness>> {
        self.recovery.as_ref().map(|r| &r.live)
    }

    /// Resets the path and fault statistics to zero.
    pub fn reset_stats(&self) {
        self.fast.store(0, Ordering::Relaxed);
        self.eliminated.store(0, Ordering::Relaxed);
        self.locked.store(0, Ordering::Relaxed);
        self.poisoned.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
        self.record_poisoned.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.combined.store(0, Ordering::Relaxed);
        self.max_batch.store(0, Ordering::Relaxed);
    }

    /// The number of processes this instance serves.
    #[must_use]
    pub fn n(&self) -> usize {
        self.lock.n()
    }

    /// The mechanism configuration in force.
    #[must_use]
    pub fn config(&self) -> CsConfig {
        self.config
    }

    /// The wrapped abortable object.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testobj::{Bump, ScriptedObject};
    use cso_locks::TasLock;
    use cso_memory::counting::CountScope;

    fn make(aborts: usize, config: CsConfig) -> ContentionSensitive<ScriptedObject, TasLock> {
        ContentionSensitive::with_config(
            ScriptedObject::with_aborts(aborts),
            TasLock::new(),
            4,
            config,
        )
    }

    #[test]
    fn solo_apply_takes_fast_path() {
        let cs = make(0, CsConfig::PAPER);
        assert_eq!(cs.apply(0, &Bump(7)), 7);
        assert_eq!(
            cs.stats(),
            PathStats {
                fast: 1,
                eliminated: 0,
                locked: 0
            }
        );
    }

    #[test]
    fn abort_falls_back_to_lock_and_succeeds() {
        let cs = make(1, CsConfig::PAPER);
        assert_eq!(cs.apply(2, &Bump(7)), 7);
        assert_eq!(
            cs.stats(),
            PathStats {
                fast: 0,
                eliminated: 0,
                locked: 1
            }
        );
    }

    #[test]
    fn repeated_aborts_are_absorbed_under_the_lock() {
        let cs = make(25, CsConfig::PAPER);
        assert_eq!(cs.apply(1, &Bump(1)), 1);
        assert_eq!(cs.apply(1, &Bump(1)), 2);
        let stats = cs.stats();
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn solo_fast_path_overhead_is_one_access() {
        // The transformation adds exactly one shared access (the read
        // of CONTENTION) to a solo weak operation. ScriptedObject does
        // no counted accesses, so the total must be exactly 1.
        let cs = make(0, CsConfig::PAPER);
        let scope = CountScope::start();
        cs.apply(0, &Bump(1));
        assert_eq!(scope.take().total(), 1);
    }

    #[test]
    fn ablation_no_flag_still_correct() {
        let cs = make(3, CsConfig::NO_FLAG);
        assert_eq!(cs.apply(0, &Bump(4)), 4);
        // Without the CONTENTION register the solo fast path costs 0
        // extra accesses.
        let scope = CountScope::start();
        cs.apply(0, &Bump(1));
        assert_eq!(scope.take().total(), 0);
    }

    #[test]
    fn ablation_unfair_still_correct() {
        let cs = make(2, CsConfig::UNFAIR);
        assert_eq!(cs.apply(3, &Bump(9)), 9);
        assert_eq!(cs.stats().locked, 1);
    }

    #[test]
    fn locked_path_stays_within_bound() {
        // Solo invocation forced onto the slow path (one scripted
        // abort defeats the fast path). ScriptedObject performs no
        // counted accesses, so the measurement isolates the
        // transformation's own footprint.
        let cs = make(1, CsConfig::PAPER);
        let scope = CountScope::start();
        cs.apply(2, &Bump(1));
        let counts = scope.take();
        assert_eq!(
            counts.total(),
            12,
            "solo slow path changed cost: {counts} (update the \
             LOCKED_SOLO_ACCESS_BOUND table if intentional)"
        );
        assert!(counts.total() <= LOCKED_SOLO_ACCESS_BOUND);
    }

    #[test]
    fn telemetry_partitions_finished_invocations() {
        let cs = make(1, CsConfig::PAPER);
        cs.apply(0, &Bump(1)); // locked (scripted abort)
        cs.apply(0, &Bump(1)); // fast
        assert!(cs
            .try_apply_for(1, &Bump(1), Duration::from_millis(50))
            .is_ok());
        let t = cs.telemetry();
        assert_eq!(t.paths, cs.stats());
        assert_eq!(t.faults, cs.fault_stats());
        assert_eq!(
            t.paths,
            PathStats {
                fast: 2,
                eliminated: 0,
                locked: 1
            }
        );
        assert_eq!(t.faults, FaultStats::default());
        assert_eq!(t.invocations(), 3);
        assert_eq!(t.degraded_fraction(), 0.0);
    }

    #[test]
    fn telemetry_counts_degradations() {
        let t = Telemetry {
            paths: PathStats {
                fast: 6,
                eliminated: 0,
                locked: 2,
            },
            faults: FaultStats {
                poisoned: 1,
                timeouts: 1,
                // Retried handoffs are not finished invocations.
                record_poisoned: 5,
            },
        };
        assert_eq!(t.invocations(), 10);
        assert!((t.degraded_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn telemetry_invocations_match_the_documented_closed_form() {
        // The documented identity: invocations = fast + eliminated +
        // locked + poisoned + timeouts, with `record_poisoned`
        // excluded (retried handoffs, not finished invocations) and
        // combined completions already inside `locked`.
        let t = Telemetry {
            paths: PathStats {
                fast: 3,
                eliminated: 2,
                locked: 5,
            },
            faults: FaultStats {
                poisoned: 1,
                timeouts: 4,
                record_poisoned: 99,
            },
        };
        assert_eq!(t.invocations(), 3 + 2 + 5 + 1 + 4);
        assert_eq!(
            t.invocations(),
            t.paths.fast
                + t.paths.eliminated
                + t.paths.locked
                + t.faults.poisoned
                + t.faults.timeouts
        );
    }

    #[test]
    fn with_recovery_builder_sets_the_policy() {
        assert_eq!(CsConfig::PAPER.recovery, None);
        assert_eq!(CsConfig::COMBINING.recovery, None);
        assert_eq!(CsConfig::LADDER.recovery, None);
        let cfg = CsConfig::PAPER.with_recovery(RecoveryPolicy::DEFAULT);
        assert_eq!(cfg.recovery, Some(RecoveryPolicy::DEFAULT));
        // Everything else is untouched.
        assert_eq!(
            CsConfig {
                recovery: None,
                ..cfg
            },
            CsConfig::PAPER
        );
    }

    #[test]
    fn recovery_accessors_are_inert_when_disabled() {
        let cs = make(0, CsConfig::PAPER);
        assert!(cs.recovery_stats().is_none());
        assert!(cs.liveness().is_none());
        assert!(!cs.is_poisoned());
    }

    /// Parks its first `try_apply` caller forever — a deterministic
    /// stand-in for a process that crashes inside the critical
    /// section. The parked thread is never unparked or joined; it
    /// plays the corpse for the rest of the test.
    struct ParkFirst {
        armed: std::sync::atomic::AtomicBool,
        parked: Arc<std::sync::atomic::AtomicBool>,
        inner: ScriptedObject,
    }

    impl Abortable for ParkFirst {
        type Op = Bump;
        type Response = u64;

        fn try_apply(&self, op: &Bump) -> Result<u64, crate::error::Aborted> {
            if self.armed.swap(false, Ordering::SeqCst) {
                self.parked.store(true, Ordering::SeqCst);
                loop {
                    std::thread::park();
                }
            }
            self.inner.try_apply(op)
        }
    }

    /// A recovery policy for tests: only an explicit `mark_dead`
    /// raises suspicion (huge grace) and waits retry quickly.
    fn recovery_policy() -> RecoveryPolicy {
        RecoveryPolicy {
            grace: Duration::from_secs(3600),
            max_successions: 4,
            backoff: Duration::from_millis(1),
        }
    }

    fn park_first(
        parked: &Arc<std::sync::atomic::AtomicBool>,
        config: CsConfig,
    ) -> Arc<ContentionSensitive<ParkFirst, TasLock>> {
        let obj = ParkFirst {
            armed: std::sync::atomic::AtomicBool::new(true),
            parked: Arc::clone(parked),
            inner: ScriptedObject::with_aborts(0),
        };
        Arc::new(ContentionSensitive::with_config(
            obj,
            TasLock::new(),
            4,
            config,
        ))
    }

    #[test]
    fn slow_path_survives_a_holder_that_dies_under_the_lock() {
        let parked = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let cs = park_first(
            &parked,
            CsConfig::PAPER
                .without_fast_path()
                .with_recovery(recovery_policy()),
        );
        let _corpse = {
            let cs = Arc::clone(&cs);
            std::thread::spawn(move || cs.apply(0, &Bump(100)))
        };
        while !parked.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        cs.liveness().expect("recovery enabled").mark_dead(0);

        // The survivor's operation completes via lock succession; the
        // corpse's operation was never applied.
        assert_eq!(cs.apply(1, &Bump(2)), 2);
        let stats = cs.recovery_stats().unwrap();
        assert_eq!(stats.successions, 1);
        assert_eq!(stats.fenced_unlocks, 0);
        assert_eq!(stats.degraded, 0, "half the budget is not yet spent");
        assert!(!stats.failed);
        assert!(!cs.is_poisoned());
        // And the object keeps working normally afterwards.
        assert_eq!(cs.apply(2, &Bump(3)), 5);
    }

    #[test]
    fn exhausted_succession_budget_poisons_the_slow_path() {
        let parked = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut policy = recovery_policy();
        policy.max_successions = 0;
        let cs = park_first(
            &parked,
            CsConfig::PAPER.without_fast_path().with_recovery(policy),
        );
        let _corpse = {
            let cs = Arc::clone(&cs);
            std::thread::spawn(move || cs.apply(0, &Bump(100)))
        };
        while !parked.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        cs.liveness().unwrap().mark_dead(0);

        // A zero budget means the very first needed succession fails
        // fast — a distinct failure mode from a timeout.
        assert_eq!(
            cs.try_apply_for(1, &Bump(2), Duration::from_secs(5)),
            Err(CsError::Unrecoverable)
        );
        assert!(cs.is_poisoned());
        let stats = cs.recovery_stats().unwrap();
        assert!(stats.failed);
        assert_eq!(stats.degraded, 2);
        assert_eq!(stats.successions, 0);
        assert_eq!(cs.fault_stats().timeouts, 0);

        // The infallible entry point fails fast too, by panicking.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cs.apply(2, &Bump(1))))
            .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("unrecoverable"), "{msg}");
    }

    #[test]
    fn combining_seizes_a_dead_combiners_tenure_and_degrades() {
        let parked = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut policy = recovery_policy();
        policy.max_successions = 2; // rung 1 after ceil(2/2) = 1
        let cs = park_first(
            &parked,
            CsConfig::COMBINING
                .without_fast_path()
                .with_recovery(policy),
        );
        // The corpse becomes a combiner (retracts its own record,
        // takes the inner lock) and parks applying its own operation.
        let _corpse = {
            let cs = Arc::clone(&cs);
            std::thread::spawn(move || cs.apply(0, &Bump(100)))
        };
        while !parked.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        cs.liveness().unwrap().mark_dead(0);

        // The survivor seizes the dead combiner's tenure raw (no
        // FLAG), combines, and completes.
        assert_eq!(cs.apply(1, &Bump(2)), 2);
        let stats = cs.recovery_stats().unwrap();
        assert_eq!(stats.successions, 1);
        assert_eq!(stats.degraded, 1, "combining disabled at half the budget");

        // Degraded arrivals fall back to the plain recovering lock —
        // and still complete.
        assert_eq!(cs.apply(2, &Bump(3)), 5);
        assert!(!cs.is_poisoned());
        assert_eq!(cs.fault_stats(), FaultStats::default());
    }

    #[test]
    fn stats_reset() {
        let cs = make(0, CsConfig::PAPER);
        cs.apply(0, &Bump(1));
        cs.reset_stats();
        assert_eq!(cs.stats().total(), 0);
    }

    #[test]
    fn locked_fraction_math() {
        let stats = PathStats {
            fast: 3,
            eliminated: 0,
            locked: 1,
        };
        assert!((stats.locked_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(PathStats::default().locked_fraction(), 0.0);
    }

    #[test]
    fn concurrent_strong_ops_all_complete() {
        use std::sync::Arc;
        let cs = Arc::new(make(0, CsConfig::PAPER));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let cs = Arc::clone(&cs);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        cs.apply(i, &Bump(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = cs.inner().applied.load(std::sync::atomic::Ordering::SeqCst);
        assert_eq!(total, 8_000);
        assert_eq!(cs.stats().total(), 8_000);
    }

    #[test]
    fn combining_solo_op_self_serves() {
        // Forced slow path + combining: a solo op posts, wins the
        // lock, retracts its own record, and serves an empty batch.
        let cs = make(0, CsConfig::COMBINING.without_fast_path());
        assert_eq!(cs.apply(0, &Bump(5)), 5);
        assert_eq!(
            cs.stats(),
            PathStats {
                fast: 0,
                eliminated: 0,
                locked: 1
            }
        );
        let combining = cs.combining_stats();
        assert_eq!(
            combining,
            CombiningStats {
                batches: 1,
                combined: 0,
                max_batch: 1,
            }
        );
        assert!((combining.avg_batch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn combining_absorbs_aborts_under_the_lock() {
        let cs = make(3, CsConfig::COMBINING.without_fast_path());
        assert_eq!(cs.apply(1, &Bump(2)), 2);
        assert_eq!(cs.apply(1, &Bump(2)), 4);
        assert_eq!(cs.stats().locked, 2);
    }

    #[test]
    fn combining_config_keeps_the_fast_path() {
        let cs = make(0, CsConfig::COMBINING);
        assert_eq!(cs.apply(0, &Bump(7)), 7);
        assert_eq!(
            cs.stats(),
            PathStats {
                fast: 1,
                eliminated: 0,
                locked: 0
            }
        );
        // And the fast path still costs exactly one extra access (the
        // CONTENTION read): gate and records are uncounted.
        let scope = CountScope::start();
        cs.apply(0, &Bump(1));
        assert_eq!(scope.take().total(), 1);
    }

    #[test]
    fn concurrent_combining_completes_everything_exactly_once() {
        use std::sync::Arc;
        const THREADS: usize = 4;
        const OPS: u64 = 2_000;
        let cs = Arc::new(make(0, CsConfig::COMBINING.without_fast_path()));
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let cs = Arc::clone(&cs);
                std::thread::spawn(move || {
                    for _ in 0..OPS {
                        cs.apply(i, &Bump(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected = THREADS as u64 * OPS;
        let total = cs.inner().applied.load(std::sync::atomic::Ordering::SeqCst);
        assert_eq!(total, expected, "every op applied exactly once");
        let stats = cs.stats();
        assert_eq!(
            stats,
            PathStats {
                fast: 0,
                eliminated: 0,
                locked: expected
            }
        );
        // Every under-lock completion is either a combiner's own op
        // (one per batch) or a served request.
        let combining = cs.combining_stats();
        assert_eq!(combining.batches + combining.combined, stats.locked);
        assert_eq!(cs.fault_stats(), FaultStats::default());
    }

    #[test]
    fn engaged_gate_diverts_then_probes_its_way_back() {
        let cs = make(0, CsConfig::COMBINING);
        cs.gate().force_engage();
        for _ in 0..2_000 {
            cs.apply(0, &Bump(1));
        }
        assert!(
            !cs.gate().engaged(),
            "probe successes must disengage the gate (ewma {})",
            cs.gate().abort_ewma()
        );
        let stats = cs.stats();
        assert!(stats.locked > 0, "engaged gate diverted nothing");
        assert!(stats.fast > 0, "probes and post-disengage ops run fast");
        assert_eq!(stats.total(), 2_000);
        assert!(cs.gate().stats().diverted > 0);
    }

    fn counter_value(snap: &cso_metrics::Snapshot, name: &str) -> Option<u64> {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    #[test]
    fn attached_metrics_mirror_path_counters() {
        let reg = Registry::new();
        let cs = make(1, CsConfig::PAPER);
        cs.attach_metrics(&reg, "t");
        cs.apply(0, &Bump(1)); // scripted abort → locked
        cs.apply(0, &Bump(1)); // fast
        assert!(cs
            .try_apply_for(1, &Bump(1), Duration::from_millis(50))
            .is_ok()); // fast again (the single abort is spent)
        let snap = reg.snapshot();
        assert_eq!(counter_value(&snap, "t_ops_fast_total"), Some(2));
        assert_eq!(counter_value(&snap, "t_ops_locked_total"), Some(1));
        assert_eq!(counter_value(&snap, "t_ops_combined_total"), Some(0));
        assert_eq!(counter_value(&snap, "t_fast_aborts_total"), Some(1));
        assert_eq!(counter_value(&snap, "t_timeouts_total"), Some(0));
        // The lock's own counters registered under the same prefix.
        assert_eq!(counter_value(&snap, "t_lock_acquires_total"), Some(1));
        // Per-path latency histograms saw each completion.
        let timer = |name: &str| {
            snap.timers
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.count)
        };
        assert_eq!(timer("t_fast_ns"), Some(2));
        assert_eq!(timer("t_locked_ns"), Some(1));
    }

    #[test]
    fn attach_metrics_first_call_wins() {
        let first = Registry::new();
        let second = Registry::new();
        let cs = make(0, CsConfig::PAPER);
        cs.attach_metrics(&first, "a");
        cs.attach_metrics(&second, "b");
        cs.apply(0, &Bump(1));
        assert_eq!(
            counter_value(&first.snapshot(), "a_ops_fast_total"),
            Some(1)
        );
        // The second attach was a full no-op: no "b_*" names were even
        // registered, let alone incremented.
        assert_eq!(counter_value(&second.snapshot(), "b_ops_fast_total"), None);
    }

    #[test]
    fn attached_metrics_split_combining_completions() {
        let reg = Registry::new();
        let cs = make(0, CsConfig::COMBINING.without_fast_path());
        cs.attach_metrics(&reg, "c");
        assert_eq!(cs.apply(0, &Bump(5)), 5);
        let snap = reg.snapshot();
        // A solo combiner completes its own op under the lock: locked,
        // not combined; one batch, nothing served.
        assert_eq!(counter_value(&snap, "c_ops_locked_total"), Some(1));
        assert_eq!(counter_value(&snap, "c_ops_combined_total"), Some(0));
        assert_eq!(counter_value(&snap, "c_combine_batches_total"), Some(1));
        assert_eq!(counter_value(&snap, "c_combine_served_total"), Some(0));
    }

    #[test]
    fn attached_metrics_keep_the_counted_access_budget() {
        // Attaching metrics must not add *counted* shared accesses:
        // the handles are uncounted atomics, so the step-budget
        // numbers of Theorem 1 are identical with a registry attached.
        let reg = Registry::new();
        let cs = make(0, CsConfig::PAPER);
        cs.attach_metrics(&reg, "budget");
        cs.apply(0, &Bump(1)); // warm the shard assignment
        let scope = CountScope::start();
        cs.apply(0, &Bump(1));
        assert_eq!(scope.take().total(), 1);
    }

    /// An abortable object with an always-available rendezvous
    /// partner: the weak op aborts like [`ScriptedObject`], but
    /// `try_eliminate` always succeeds — so the ladder's rung 3 can be
    /// driven deterministically, single-threaded.
    struct ElimWrap {
        inner: ScriptedObject,
        eliminations: AtomicU64,
    }

    impl Abortable for ElimWrap {
        type Op = Bump;
        type Response = u64;

        fn try_apply(&self, op: &Bump) -> Result<u64, crate::error::Aborted> {
            self.inner.try_apply(op)
        }

        fn try_eliminate(&self, op: &Bump, polls: u32) -> Option<u64> {
            assert!(polls > 0, "the ladder must grant a park budget");
            self.eliminations.fetch_add(1, Ordering::Relaxed);
            Some(op.0)
        }
    }

    #[test]
    fn ladder_cm_retry_completes_lock_free() {
        // One scripted abort defeats the fast path; the first
        // contention-managed retry then succeeds — a lock-free
        // completion, counted as fast, never touching the lock.
        let cs = make(1, CsConfig::PAPER.with_cas_backoff());
        assert_eq!(cs.apply(0, &Bump(7)), 7);
        assert_eq!(
            cs.stats(),
            PathStats {
                fast: 1,
                eliminated: 0,
                locked: 0
            }
        );
    }

    #[test]
    fn ladder_elimination_completes_without_lock() {
        let obj = ElimWrap {
            inner: ScriptedObject::with_aborts(2),
            eliminations: AtomicU64::new(0),
        };
        let cs = ContentionSensitive::with_config(
            obj,
            TasLock::new(),
            4,
            CsConfig::PAPER.with_elimination(),
        );
        assert_eq!(cs.apply(0, &Bump(9)), 9);
        assert_eq!(
            cs.stats(),
            PathStats {
                fast: 0,
                eliminated: 1,
                locked: 0
            }
        );
        assert_eq!(cs.inner().eliminations.load(Ordering::Relaxed), 1);
        // Eliminated completions are completions: the telemetry
        // families stay a partition.
        assert_eq!(cs.telemetry().invocations(), 1);
    }

    #[test]
    fn ladder_escalates_to_lock_when_both_rungs_fail() {
        // Four scripted aborts exhaust the fast attempt and all three
        // CM retries; the default try_eliminate declines; the lock
        // absorbs the rest (Figure 3's line 08).
        let cs = make(4, CsConfig::PAPER.with_cas_backoff().with_elimination());
        assert_eq!(cs.apply(3, &Bump(5)), 5);
        assert_eq!(
            cs.stats(),
            PathStats {
                fast: 0,
                eliminated: 0,
                locked: 1
            }
        );
    }

    #[test]
    fn ladder_config_keeps_the_solo_access_budget() {
        // Theorem 1 must be bit-for-bit intact with the full ladder
        // enabled: a solo op succeeds on the fast path and the ladder
        // is never entered, so the transformation still adds exactly
        // one counted access (the CONTENTION read).
        let cs = make(0, CsConfig::LADDER);
        let scope = CountScope::start();
        cs.apply(0, &Bump(1));
        assert_eq!(scope.take().total(), 1);
    }

    #[test]
    fn deadline_bounded_ladder_still_eliminates() {
        let obj = ElimWrap {
            inner: ScriptedObject::with_aborts(1),
            eliminations: AtomicU64::new(0),
        };
        let cs = ContentionSensitive::with_config(
            obj,
            TasLock::new(),
            4,
            CsConfig::PAPER.with_elimination(),
        );
        assert_eq!(
            cs.try_apply_for(1, &Bump(3), Duration::from_millis(100)),
            Ok(3)
        );
        assert_eq!(cs.stats().eliminated, 1);
    }

    #[test]
    fn attached_metrics_mirror_the_eliminated_path() {
        let reg = Registry::new();
        let obj = ElimWrap {
            inner: ScriptedObject::with_aborts(1),
            eliminations: AtomicU64::new(0),
        };
        let cs = ContentionSensitive::with_config(
            obj,
            TasLock::new(),
            4,
            CsConfig::PAPER.with_elimination(),
        );
        cs.attach_metrics(&reg, "e");
        cs.apply(0, &Bump(1)); // fast abort → eliminated
        cs.apply(0, &Bump(1)); // fast (the scripted abort is spent)
        let snap = reg.snapshot();
        assert_eq!(counter_value(&snap, "e_ops_eliminated_total"), Some(1));
        assert_eq!(counter_value(&snap, "e_ops_fast_total"), Some(1));
        assert_eq!(counter_value(&snap, "e_ops_locked_total"), Some(0));
    }

    #[test]
    fn batch_hooks_reach_the_inner_object() {
        // Two processes: one blocks as a waiter (scripted abort forces
        // it slow... not available deterministically here), so instead
        // drive the hook directly through the trait to pin the default
        // and the forwarding impls.
        let obj = ScriptedObject::with_aborts(0);
        obj.batch_begin(3); // default no-op must exist
        obj.batch_end(3);
        let by_ref: &ScriptedObject = &obj;
        by_ref.batch_begin(1);
        by_ref.batch_end(1);
    }
}
