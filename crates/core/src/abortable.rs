//! The abortable-object abstraction.

use crate::error::Aborted;

/// An *abortable* concurrent object (paper §1.2).
///
/// "An abortable concurrent object behaves like an ordinary object
/// when accessed sequentially, but may abort operations when accessed
/// concurrently (in that case the aborted operation **has no effect**
/// and returns a default value denoted ⊥)."
///
/// # Contract for implementors
///
/// * **Total**: `try_apply` always returns (it never blocks or loops
///   unboundedly);
/// * **Solo success**: an invocation that runs in a contention-free
///   context (no concurrent operation on the object) must return
///   `Ok(_)`;
/// * **Abort = no effect**: an `Err(Aborted)` invocation must leave
///   the abstract state of the object exactly as if it was never
///   invoked;
/// * **Linearizable**: the non-aborted operations must be linearizable
///   with respect to the object's sequential specification.
///
/// The operation is taken by reference so the retry-based
/// transformations ([`crate::NonBlocking`], [`crate::ContentionSensitive`])
/// can re-submit it without requiring `Op: Clone`.
///
/// An abortable object is *stronger* than an obstruction-free one:
/// both guarantee solo termination, but the abortable object also
/// terminates (with ⊥) under contention, instead of possibly not
/// terminating at all (§1.2).
pub trait Abortable: Send + Sync {
    /// The operation descriptor (e.g. `Push(v)` / `Pop` for a stack).
    type Op;

    /// The non-⊥ result of an operation (e.g. the popped value).
    type Response;

    /// Attempts the operation once.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] (the paper's ⊥) when a concurrent operation
    /// interfered; the object state is unchanged in that case.
    fn try_apply(&self, op: &Self::Op) -> Result<Self::Response, Aborted>;
}

// An `Arc<O>` or reference to an abortable object is itself abortable,
// so the transformations can share objects freely.
impl<O: Abortable + ?Sized> Abortable for &O {
    type Op = O::Op;
    type Response = O::Response;

    fn try_apply(&self, op: &Self::Op) -> Result<Self::Response, Aborted> {
        (**self).try_apply(op)
    }
}

impl<O: Abortable + ?Sized> Abortable for std::sync::Arc<O> {
    type Op = O::Op;
    type Response = O::Response;

    fn try_apply(&self, op: &Self::Op) -> Result<Self::Response, Aborted> {
        (**self).try_apply(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testobj::{Bump, ScriptedObject};
    use std::sync::Arc;

    #[test]
    fn scripted_object_aborts_then_succeeds() {
        let obj = ScriptedObject::with_aborts(2);
        assert_eq!(obj.try_apply(&Bump(1)), Err(Aborted));
        assert_eq!(obj.try_apply(&Bump(1)), Err(Aborted));
        assert_eq!(obj.try_apply(&Bump(1)), Ok(1));
        assert_eq!(obj.try_apply(&Bump(5)), Ok(6));
    }

    #[test]
    fn references_and_arcs_forward() {
        let obj = Arc::new(ScriptedObject::with_aborts(0));
        assert_eq!(obj.try_apply(&Bump(2)), Ok(2));
        let by_ref: &ScriptedObject = &obj;
        assert_eq!(by_ref.try_apply(&Bump(2)), Ok(4));
    }
}
