//! The abortable-object abstraction.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::Aborted;

/// An *abortable* concurrent object (paper §1.2).
///
/// "An abortable concurrent object behaves like an ordinary object
/// when accessed sequentially, but may abort operations when accessed
/// concurrently (in that case the aborted operation **has no effect**
/// and returns a default value denoted ⊥)."
///
/// # Contract for implementors
///
/// * **Total**: `try_apply` always returns (it never blocks or loops
///   unboundedly);
/// * **Solo success**: an invocation that runs in a contention-free
///   context (no concurrent operation on the object) must return
///   `Ok(_)`;
/// * **Abort = no effect**: an `Err(Aborted)` invocation must leave
///   the abstract state of the object exactly as if it was never
///   invoked;
/// * **Linearizable**: the non-aborted operations must be linearizable
///   with respect to the object's sequential specification.
///
/// The operation is taken by reference so the retry-based
/// transformations ([`crate::NonBlocking`], [`crate::ContentionSensitive`])
/// can re-submit it without requiring `Op: Clone`.
///
/// An abortable object is *stronger* than an obstruction-free one:
/// both guarantee solo termination, but the abortable object also
/// terminates (with ⊥) under contention, instead of possibly not
/// terminating at all (§1.2).
pub trait Abortable: Send + Sync {
    /// The operation descriptor (e.g. `Push(v)` / `Pop` for a stack).
    type Op;

    /// The non-⊥ result of an operation (e.g. the popped value).
    type Response;

    /// Attempts the operation once.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] (the paper's ⊥) when a concurrent operation
    /// interfered; the object state is unchanged in that case.
    fn try_apply(&self, op: &Self::Op) -> Result<Self::Response, Aborted>;

    /// Batch-apply hook: a combining transformation
    /// ([`crate::ContentionSensitive`] with [`crate::CsConfig::combining`])
    /// is about to apply `pending` requests posted by *other* processes
    /// in one lock tenure. The default is a no-op; objects may override
    /// it to account batches or prepare (e.g. prefetch). Called with the
    /// slow-path lock held — implementations must not block.
    fn batch_begin(&self, pending: usize) {
        let _ = pending;
    }

    /// Batch-apply hook: the combiner finished the batch announced by
    /// [`Abortable::batch_begin`], having applied `applied` requests.
    /// Not called if the batch unwinds mid-way (the combining guard
    /// poisons the in-flight records instead), so
    /// `batch_begin`/`batch_end` calls pair up only on clean tenures.
    fn batch_end(&self, applied: usize) {
        let _ = applied;
    }

    /// Elimination hook: attempts to complete `op` by *rendezvous*
    /// with a concurrent inverse operation (e.g. a stack's push/pop
    /// pair exchanging the value through `cso_memory::exchange`),
    /// without touching the object's main state. The escalation
    /// ladder of [`crate::ContentionSensitive`] (with
    /// [`crate::CsConfig::elimination`]) calls this after a weak-op
    /// abort, *before* raising `CONTENTION` or taking the lock.
    ///
    /// `polls` bounds how long the attempt may park waiting for a
    /// partner (in spin iterations) — the caller scales it with its
    /// contention estimate. The attempt must be bounded and must
    /// return `None` (no effect) when no partner commits.
    ///
    /// A returned response must be one the operation could have
    /// received from [`Abortable::try_apply`] in some linearizable
    /// execution — the pair linearizes back-to-back at the instant of
    /// the exchange. The default declines (objects without an inverse
    /// structure simply never eliminate).
    fn try_eliminate(&self, op: &Self::Op, polls: u32) -> Option<Self::Response> {
        let _ = (op, polls);
        None
    }
}

/// Plug-in counters for the [`Abortable::batch_begin`] /
/// [`Abortable::batch_end`] hooks: embed one in an abortable object
/// and forward the hooks to [`BatchCounters::begin`] /
/// [`BatchCounters::end`] to get per-object combining statistics.
#[derive(Debug, Default)]
pub struct BatchCounters {
    batches: AtomicU64,
    applied: AtomicU64,
    max_batch: AtomicU64,
}

/// Snapshot of a [`BatchCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches announced via [`Abortable::batch_begin`].
    pub batches: u64,
    /// Requests applied across all clean batches
    /// ([`Abortable::batch_end`] sums; an unwound batch contributes
    /// nothing here but still counts in `batches`).
    pub applied: u64,
    /// The largest batch announced.
    pub max_batch: u64,
}

impl BatchCounters {
    /// Fresh, all-zero counters.
    #[must_use]
    pub const fn new() -> BatchCounters {
        BatchCounters {
            batches: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        }
    }

    /// Forward [`Abortable::batch_begin`] here.
    pub fn begin(&self, pending: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(pending as u64, Ordering::Relaxed);
    }

    /// Forward [`Abortable::batch_end`] here.
    pub fn end(&self, applied: usize) {
        self.applied.fetch_add(applied as u64, Ordering::Relaxed);
    }

    /// The current totals.
    #[must_use]
    pub fn snapshot(&self) -> BatchStats {
        BatchStats {
            batches: self.batches.load(Ordering::Relaxed),
            applied: self.applied.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
        }
    }
}

// An `Arc<O>` or reference to an abortable object is itself abortable,
// so the transformations can share objects freely.
impl<O: Abortable + ?Sized> Abortable for &O {
    type Op = O::Op;
    type Response = O::Response;

    fn try_apply(&self, op: &Self::Op) -> Result<Self::Response, Aborted> {
        (**self).try_apply(op)
    }

    fn batch_begin(&self, pending: usize) {
        (**self).batch_begin(pending);
    }

    fn batch_end(&self, applied: usize) {
        (**self).batch_end(applied);
    }

    fn try_eliminate(&self, op: &Self::Op, polls: u32) -> Option<Self::Response> {
        (**self).try_eliminate(op, polls)
    }
}

impl<O: Abortable + ?Sized> Abortable for std::sync::Arc<O> {
    type Op = O::Op;
    type Response = O::Response;

    fn try_apply(&self, op: &Self::Op) -> Result<Self::Response, Aborted> {
        (**self).try_apply(op)
    }

    fn batch_begin(&self, pending: usize) {
        (**self).batch_begin(pending);
    }

    fn batch_end(&self, applied: usize) {
        (**self).batch_end(applied);
    }

    fn try_eliminate(&self, op: &Self::Op, polls: u32) -> Option<Self::Response> {
        (**self).try_eliminate(op, polls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testobj::{Bump, ScriptedObject};
    use std::sync::Arc;

    #[test]
    fn scripted_object_aborts_then_succeeds() {
        let obj = ScriptedObject::with_aborts(2);
        assert_eq!(obj.try_apply(&Bump(1)), Err(Aborted));
        assert_eq!(obj.try_apply(&Bump(1)), Err(Aborted));
        assert_eq!(obj.try_apply(&Bump(1)), Ok(1));
        assert_eq!(obj.try_apply(&Bump(5)), Ok(6));
    }

    #[test]
    fn references_and_arcs_forward() {
        let obj = Arc::new(ScriptedObject::with_aborts(0));
        assert_eq!(obj.try_apply(&Bump(2)), Ok(2));
        let by_ref: &ScriptedObject = &obj;
        assert_eq!(by_ref.try_apply(&Bump(2)), Ok(4));
    }
}
