//! Contention managers: what to do between retries.
//!
//! The paper's Figure 2 retries a weak operation immediately. §5 points
//! at the contention-manager literature (Fich et al. \[4\], Taubenfeld
//! \[25\], Guerraoui et al. \[5\]) for how obstruction-free or non-blocking
//! algorithms are boosted in practice. The policies here are the
//! standard spectrum; the benchmark harness compares them (E8).

use std::cell::RefCell;

use cso_memory::backoff::XorShift64;

/// A policy consulted by the retry transformations after each aborted
/// attempt.
///
/// Implementations must be cheap and must not access the object: their
/// only job is to *wait* in a way that lets conflicting operations
/// drain.
pub trait ContentionManager: Send + Sync {
    /// Called after the `attempt`-th consecutive abort of one logical
    /// operation (`attempt` starts at 0 and resets on success).
    fn on_abort(&self, attempt: u32);
}

/// Retry immediately — the literal Figure 2 loop.
///
/// ```
/// use cso_core::{ContentionManager, NoBackoff};
/// NoBackoff.on_abort(3); // returns immediately
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBackoff;

impl ContentionManager for NoBackoff {
    fn on_abort(&self, _attempt: u32) {}
}

/// Spin a fixed number of pause instructions between retries.
#[derive(Debug, Clone, Copy)]
pub struct SpinBackoff {
    pauses: u32,
}

impl SpinBackoff {
    /// A policy spinning `pauses` pause instructions per abort.
    #[must_use]
    pub fn new(pauses: u32) -> SpinBackoff {
        SpinBackoff { pauses }
    }
}

impl Default for SpinBackoff {
    fn default() -> SpinBackoff {
        SpinBackoff::new(32)
    }
}

impl ContentionManager for SpinBackoff {
    fn on_abort(&self, _attempt: u32) {
        for _ in 0..self.pauses {
            std::hint::spin_loop();
        }
    }
}

/// Randomized exponential backoff: wait a uniform number of pauses in
/// `[0, 2^min(attempt, cap))`, yielding the thread once attempts pile
/// up (essential on oversubscribed machines).
#[derive(Debug, Clone, Copy)]
pub struct ExpBackoff {
    /// `attempt` saturates at this exponent.
    cap: u32,
    /// Attempts at or beyond this yield the OS thread instead.
    yield_at: u32,
}

impl ExpBackoff {
    /// A policy with exponent cap `cap` and yield threshold `yield_at`.
    #[must_use]
    pub fn new(cap: u32, yield_at: u32) -> ExpBackoff {
        ExpBackoff { cap, yield_at }
    }
}

impl Default for ExpBackoff {
    fn default() -> ExpBackoff {
        ExpBackoff::new(10, 6)
    }
}

thread_local! {
    static RNG: RefCell<XorShift64> = RefCell::new(XorShift64::from_entropy());
}

impl ContentionManager for ExpBackoff {
    fn on_abort(&self, attempt: u32) {
        if attempt >= self.yield_at {
            std::thread::yield_now();
            return;
        }
        let exp = attempt.min(self.cap);
        let bound = 1u64 << exp;
        let pauses = RNG.with(|rng| rng.borrow_mut().next_below(bound + 1));
        for _ in 0..pauses {
            std::hint::spin_loop();
        }
    }
}

/// Yield the OS thread on every abort — the right default when threads
/// outnumber cores.
#[derive(Debug, Clone, Copy, Default)]
pub struct YieldBackoff;

impl ContentionManager for YieldBackoff {
    fn on_abort(&self, _attempt: u32) {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_return() {
        // Liveness smoke tests: each policy must come back promptly
        // for small and large attempt numbers.
        for attempt in [0, 1, 5, 31, 1000] {
            NoBackoff.on_abort(attempt);
            SpinBackoff::new(8).on_abort(attempt);
            ExpBackoff::default().on_abort(attempt);
            YieldBackoff.on_abort(attempt);
        }
    }

    #[test]
    fn exp_backoff_saturates_exponent() {
        // attempt > cap must not overflow the shift.
        ExpBackoff::new(3, 1000).on_abort(500);
    }

    #[test]
    fn policies_are_object_safe() {
        let policies: Vec<Box<dyn ContentionManager>> = vec![
            Box::new(NoBackoff),
            Box::new(SpinBackoff::default()),
            Box::new(ExpBackoff::default()),
            Box::new(YieldBackoff),
        ];
        for p in &policies {
            p.on_abort(2);
        }
    }
}
