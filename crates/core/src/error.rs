//! The ⊥ value.

use std::error::Error;
use std::fmt;

/// The paper's ⊥: an operation on an abortable object was aborted
/// because of contention, and **had no effect** on the object.
///
/// The definition used here is the paper's strengthening of Aguilera et
/// al. (reference \[1\]): an aborted operation *never* takes effect (in
/// \[1\] it may take effect without the invoker learning it). The object
/// state is never left inconsistent either way.
///
/// ```
/// use cso_core::Aborted;
/// let err = Aborted;
/// assert_eq!(err.to_string(), "operation aborted under contention (\u{22a5}) with no effect");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Aborted;

impl fmt::Display for Aborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("operation aborted under contention (\u{22a5}) with no effect")
    }
}

impl Error for Aborted {}

/// A deadline-bounded strong operation
/// ([`ContentionSensitive::try_apply_for`]) ran out of time before it
/// could acquire the slow-path lock or complete under it. The object
/// is unchanged: the operation either never reached the lock, or held
/// it only across aborted (effect-free) weak attempts.
///
/// This is the graceful-degradation answer to the paper's §5 caveat —
/// a process crashing *inside* the critical section wedges the lock
/// for every slow-path operation; a deadline turns that unbounded wait
/// into a bounded, reportable failure.
///
/// [`ContentionSensitive::try_apply_for`]: crate::ContentionSensitive::try_apply_for
///
/// ```
/// use cso_core::TimedOut;
/// assert_eq!(
///     TimedOut.to_string(),
///     "operation timed out waiting for the slow-path lock; no effect",
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TimedOut;

impl fmt::Display for TimedOut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("operation timed out waiting for the slow-path lock; no effect")
    }
}

impl Error for TimedOut {}

/// The slow path is permanently broken: the crash-recovery succession
/// budget ([`RecoveryPolicy::max_successions`]) was exhausted, so the
/// object fails fast instead of masking a correlated failure forever.
/// The failed operation had no effect; every subsequent deadline-bound
/// slow-path operation on the same object fails the same way.
///
/// [`RecoveryPolicy::max_successions`]: cso_memory::liveness::RecoveryPolicy
///
/// ```
/// use cso_core::Unrecoverable;
/// assert_eq!(
///     Unrecoverable.to_string(),
///     "slow path unrecoverable: crash-succession budget exhausted; no effect",
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Unrecoverable;

impl fmt::Display for Unrecoverable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("slow path unrecoverable: crash-succession budget exhausted; no effect")
    }
}

impl Error for Unrecoverable {}

/// The failure modes of a deadline-bounded strong operation
/// ([`ContentionSensitive::try_apply_for`]): either the deadline
/// expired ([`TimedOut`], transient — retry later) or the object
/// degraded past recovery ([`Unrecoverable`], permanent). Either way
/// the operation had **no effect**.
///
/// [`ContentionSensitive::try_apply_for`]: crate::ContentionSensitive::try_apply_for
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsError {
    /// The deadline expired before the operation completed.
    TimedOut,
    /// The crash-succession budget is exhausted; the slow path is
    /// permanently closed.
    Unrecoverable,
}

impl fmt::Display for CsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsError::TimedOut => TimedOut.fmt(f),
            CsError::Unrecoverable => Unrecoverable.fmt(f),
        }
    }
}

impl Error for CsError {}

impl From<TimedOut> for CsError {
    fn from(_: TimedOut) -> CsError {
        CsError::TimedOut
    }
}

impl From<Unrecoverable> for CsError {
    fn from(_: Unrecoverable) -> CsError {
        CsError::Unrecoverable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_well_behaved_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<Aborted>();
        assert_error::<Unrecoverable>();
        assert_error::<CsError>();
        assert!(Aborted.to_string().contains("aborted"));
    }

    #[test]
    fn cs_error_wraps_both_failure_modes() {
        assert_eq!(CsError::from(TimedOut), CsError::TimedOut);
        assert_eq!(CsError::from(Unrecoverable), CsError::Unrecoverable);
        assert_eq!(CsError::TimedOut.to_string(), TimedOut.to_string());
        assert_eq!(
            CsError::Unrecoverable.to_string(),
            Unrecoverable.to_string()
        );
    }
}
