//! Figure 2: the abortable → non-blocking transformation.

use crate::abortable::Abortable;
use crate::manager::{ContentionManager, NoBackoff};
use crate::progress::ProgressCondition;

/// Figure 2 of the paper, generalized to any [`Abortable`] object:
///
/// ```text
/// operation non_blocking_op(par):
///     repeat res ← weak_op(par) until res ≠ ⊥;
///     return res.
/// ```
///
/// Because a solo weak operation never aborts, the loop trivially
/// satisfies obstruction-freedom; because some concurrent weak
/// operation always succeeds (an abort means *another* operation's CAS
/// won), at least one looping process exits — the implementation is
/// **non-blocking** (lock-free). No operation of the wrapper ever
/// returns ⊥.
///
/// The `M` parameter selects the backoff policy between retries;
/// [`NoBackoff`] is the paper's literal loop.
///
/// ```
/// # use cso_core::{Abortable, Aborted, NonBlocking};
/// # use std::sync::atomic::{AtomicU64, Ordering};
/// # struct Obj(AtomicU64);
/// # impl Abortable for Obj {
/// #     type Op = u64;
/// #     type Response = u64;
/// #     fn try_apply(&self, op: &u64) -> Result<u64, Aborted> {
/// #         Ok(self.0.fetch_add(*op, Ordering::SeqCst) + *op)
/// #     }
/// # }
/// let nb = NonBlocking::new(Obj(AtomicU64::new(0)));
/// assert_eq!(nb.apply(&5), 5); // never ⊥
/// ```
#[derive(Debug)]
pub struct NonBlocking<O, M = NoBackoff> {
    inner: O,
    manager: M,
}

impl<O: Abortable> NonBlocking<O, NoBackoff> {
    /// Wraps `inner` with the paper's immediate-retry loop.
    #[must_use]
    pub fn new(inner: O) -> NonBlocking<O, NoBackoff> {
        NonBlocking {
            inner,
            manager: NoBackoff,
        }
    }
}

impl<O: Abortable, M: ContentionManager> NonBlocking<O, M> {
    /// Wraps `inner` with retries paced by `manager`.
    #[must_use]
    pub fn with_manager(inner: O, manager: M) -> NonBlocking<O, M> {
        NonBlocking { inner, manager }
    }

    /// The progress condition this transformation provides.
    pub const PROGRESS: ProgressCondition = ProgressCondition::NonBlocking;

    /// Applies `op`, retrying aborts until it takes effect. Never
    /// returns ⊥.
    pub fn apply(&self, op: &O::Op) -> O::Response {
        let mut attempt: u32 = 0;
        loop {
            match self.inner.try_apply(op) {
                Ok(res) => return res,
                Err(_) => {
                    self.manager.on_abort(attempt);
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }

    /// Applies `op` with a retry budget, returning `None` if every
    /// attempt aborted. Exposes the intermediate abort count for
    /// diagnostics (experiment E2 uses it).
    pub fn apply_bounded(&self, op: &O::Op, max_attempts: u32) -> Option<O::Response> {
        for attempt in 0..max_attempts {
            if let Ok(res) = self.inner.try_apply(op) {
                return Some(res);
            }
            self.manager.on_abort(attempt);
        }
        None
    }

    /// The wrapped abortable object.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the transformation.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{ExpBackoff, YieldBackoff};
    use crate::testobj::{Bump, ScriptedObject};

    #[test]
    fn retries_until_success() {
        let nb = NonBlocking::new(ScriptedObject::with_aborts(10));
        assert_eq!(nb.apply(&Bump(3)), 3);
        assert_eq!(
            nb.inner()
                .aborts_left
                .load(std::sync::atomic::Ordering::SeqCst),
            0
        );
    }

    #[test]
    fn works_with_every_manager() {
        let nb = NonBlocking::with_manager(ScriptedObject::with_aborts(5), ExpBackoff::default());
        assert_eq!(nb.apply(&Bump(1)), 1);
        let nb = NonBlocking::with_manager(ScriptedObject::with_aborts(5), YieldBackoff);
        assert_eq!(nb.apply(&Bump(1)), 1);
    }

    #[test]
    fn bounded_apply_gives_up() {
        let nb = NonBlocking::new(ScriptedObject::with_aborts(100));
        assert_eq!(nb.apply_bounded(&Bump(1), 10), None);
        // 10 attempts consumed 10 scripted aborts.
        assert_eq!(
            nb.inner()
                .aborts_left
                .load(std::sync::atomic::Ordering::SeqCst),
            90
        );
    }

    #[test]
    fn bounded_apply_succeeds_within_budget() {
        let nb = NonBlocking::new(ScriptedObject::with_aborts(3));
        assert_eq!(nb.apply_bounded(&Bump(2), 10), Some(2));
    }

    #[test]
    fn into_inner_round_trips() {
        let nb = NonBlocking::new(ScriptedObject::with_aborts(0));
        let obj = nb.into_inner();
        assert_eq!(obj.applied.load(std::sync::atomic::Ordering::SeqCst), 0);
    }
}
