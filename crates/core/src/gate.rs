//! The adaptive contention gate: an EWMA of fast-path abort rates
//! with hysteresis.
//!
//! Figure 3's `CONTENTION` register is binary: one slow-path tenure
//! diverts *every* arriving operation to the lock until it clears.
//! That is the right call while a lock holder is actually working, but
//! it has no memory — a single collision looks the same as a sustained
//! storm. The gate adds that memory: it tracks an exponentially
//! weighted moving average of recent fast-path outcomes (1 = aborted,
//! 0 = succeeded) and **engages** — diverting operations straight to
//! the slow path — only when the average says the fast path is
//! genuinely losing. Hysteresis (engage high, disengage low) keeps a
//! lone abort from stampeding everyone onto the lock, and a periodic
//! *probe* (every [`AdaptiveGate::PROBE_PERIOD`]-th operation is let
//! through while engaged) feeds the average fresh evidence so the gate
//! can disengage once contention drains — without it, an engaged gate
//! would starve itself of observations and stick forever.
//!
//! The gate is a heuristic layered *beside* the paper's machinery, not
//! a replacement for it: `CONTENTION` still guards the fast path and
//! still provides the Lemma 2 termination argument. Everything here
//! lives in plain (uncounted) atomics, so the contention-free fast
//! path still performs exactly the six counted shared-memory accesses
//! of Theorem 1 — enforced by the step-budget regression tests.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Fixed-point scale: `SCALE` represents an abort rate of 1.0.
const SCALE: u32 = 1 << 16;
/// EWMA smoothing: `alpha = 1 / 2^ALPHA_SHIFT` (1/8 — a few dozen
/// operations of memory).
const ALPHA_SHIFT: u32 = 3;
/// Engage when the smoothed abort rate exceeds one half…
const ENTER: u32 = SCALE / 2;
/// …and disengage only once it has decayed below one sixteenth.
const EXIT: u32 = SCALE / 16;

/// Cumulative gate activity, for diagnostics and the E12 report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Times the gate transitioned disengaged → engaged.
    pub engages: u64,
    /// Operations diverted to the slow path by an engaged gate.
    pub diverted: u64,
}

/// See the module docs. One instance guards one
/// [`crate::ContentionSensitive`]; all methods are lock-free and cost
/// a handful of relaxed atomic operations on *uncounted* memory.
#[derive(Debug)]
pub struct AdaptiveGate {
    /// Smoothed abort rate in fixed point (`SCALE` = 1.0). Updates are
    /// load/store rather than CAS: the occasional lost update under
    /// races is irrelevant to a smoothed heuristic and keeps the fast
    /// path cheap.
    ewma: AtomicU32,
    engaged: AtomicBool,
    /// Operations seen while engaged, for probe scheduling.
    tick: AtomicU32,
    engages: AtomicU64,
    diverted: AtomicU64,
}

impl AdaptiveGate {
    /// While engaged, every this-many-th operation probes the fast
    /// path instead of diverting, feeding the EWMA the evidence it
    /// needs to disengage.
    pub const PROBE_PERIOD: u32 = 16;

    /// A disengaged gate with a zero abort estimate.
    #[must_use]
    pub fn new() -> AdaptiveGate {
        AdaptiveGate {
            ewma: AtomicU32::new(0),
            engaged: AtomicBool::new(false),
            tick: AtomicU32::new(0),
            engages: AtomicU64::new(0),
            diverted: AtomicU64::new(0),
        }
    }

    /// Records one fast-path outcome and updates the engage/disengage
    /// state through the hysteresis band.
    pub fn record(&self, aborted: bool) {
        let old = self.ewma.load(Ordering::Relaxed);
        let sample = if aborted { SCALE } else { 0 };
        let new = old - (old >> ALPHA_SHIFT) + (sample >> ALPHA_SHIFT);
        self.ewma.store(new, Ordering::Relaxed);
        if new >= ENTER {
            if !self.engaged.swap(true, Ordering::Relaxed) {
                self.engages.fetch_add(1, Ordering::Relaxed);
                self.tick.store(0, Ordering::Relaxed);
            }
        } else if new <= EXIT {
            self.engaged.store(false, Ordering::Relaxed);
        }
    }

    /// Asks whether the next operation should skip the fast path.
    /// Disengaged: always `false` (one relaxed load). Engaged: `true`,
    /// except for the periodic probe that is let through to re-measure.
    pub fn should_divert(&self) -> bool {
        if !self.engaged.load(Ordering::Relaxed) {
            return false;
        }
        let t = self.tick.fetch_add(1, Ordering::Relaxed);
        if t % Self::PROBE_PERIOD == Self::PROBE_PERIOD - 1 {
            return false;
        }
        self.diverted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Whether the gate is currently diverting operations.
    #[must_use]
    pub fn engaged(&self) -> bool {
        self.engaged.load(Ordering::Relaxed)
    }

    /// The smoothed abort-rate estimate in `[0.0, 1.0]`.
    #[must_use]
    pub fn abort_ewma(&self) -> f64 {
        f64::from(self.ewma.load(Ordering::Relaxed)) / f64::from(SCALE)
    }

    /// Snapshot of the cumulative activity counters.
    #[must_use]
    pub fn stats(&self) -> GateStats {
        GateStats {
            engages: self.engages.load(Ordering::Relaxed),
            diverted: self.diverted.load(Ordering::Relaxed),
        }
    }

    /// Forces the gate into the engaged state with a saturated abort
    /// estimate — deterministic setup for tests and experiments (the
    /// probe/decay machinery then disengages it normally).
    pub fn force_engage(&self) {
        self.ewma.store(SCALE, Ordering::Relaxed);
        if !self.engaged.swap(true, Ordering::Relaxed) {
            self.engages.fetch_add(1, Ordering::Relaxed);
            self.tick.store(0, Ordering::Relaxed);
        }
    }

    /// Returns the gate to its initial state (estimate and counters).
    pub fn reset(&self) {
        self.ewma.store(0, Ordering::Relaxed);
        self.engaged.store(false, Ordering::Relaxed);
        self.tick.store(0, Ordering::Relaxed);
        self.engages.store(0, Ordering::Relaxed);
        self.diverted.store(0, Ordering::Relaxed);
    }
}

impl Default for AdaptiveGate {
    fn default() -> AdaptiveGate {
        AdaptiveGate::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_abort_does_not_stampede() {
        let gate = AdaptiveGate::new();
        gate.record(true);
        assert!(!gate.engaged(), "one collision must not engage the gate");
        assert!(!gate.should_divert());
        assert!(gate.abort_ewma() < 0.2);
    }

    #[test]
    fn sustained_aborts_engage_with_hysteresis() {
        let gate = AdaptiveGate::new();
        let mut to_engage = 0;
        while !gate.engaged() {
            gate.record(true);
            to_engage += 1;
            assert!(to_engage < 100, "gate never engaged");
        }
        // alpha = 1/8, enter at 0.5: needs several consecutive aborts.
        assert!(to_engage >= 4, "engaged after only {to_engage} aborts");
        assert_eq!(gate.stats().engages, 1);

        // One success must NOT disengage (hysteresis): the estimate has
        // to decay all the way below EXIT.
        gate.record(false);
        assert!(gate.engaged(), "hysteresis: one success disengaged");
        let mut to_disengage = 1;
        while gate.engaged() {
            gate.record(false);
            to_disengage += 1;
            assert!(to_disengage < 100, "gate never disengaged");
        }
        assert!(
            to_disengage > to_engage,
            "exit band must be slower than entry"
        );
    }

    #[test]
    fn engaged_gate_diverts_but_probes_periodically() {
        let gate = AdaptiveGate::new();
        gate.force_engage();
        let mut probes = 0;
        let rounds = AdaptiveGate::PROBE_PERIOD * 4;
        for _ in 0..rounds {
            if !gate.should_divert() {
                probes += 1;
            }
        }
        assert_eq!(probes, 4, "one probe per PROBE_PERIOD operations");
        assert_eq!(gate.stats().diverted, u64::from(rounds) - 4);
    }

    #[test]
    fn probe_successes_eventually_disengage() {
        let gate = AdaptiveGate::new();
        gate.force_engage();
        let mut ops = 0u32;
        while gate.engaged() {
            if !gate.should_divert() {
                // The probe went to the fast path and succeeded.
                gate.record(false);
            }
            ops += 1;
            assert!(ops < 10_000, "engaged gate never decayed");
        }
        assert!(!gate.should_divert(), "disengaged gate lets ops through");
    }

    #[test]
    fn reset_restores_initial_state() {
        let gate = AdaptiveGate::new();
        gate.force_engage();
        let _ = gate.should_divert();
        gate.reset();
        assert!(!gate.engaged());
        assert_eq!(gate.stats(), GateStats::default());
        assert_eq!(gate.abort_ewma(), 0.0);
    }
}
