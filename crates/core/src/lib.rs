//! Object model and generic transformations from Mostefaoui & Raynal
//! (2011).
//!
//! The paper builds its contention-sensitive stack in three layers and
//! notes that the upper two are generic (§1.2: the starvation-freedom
//! mechanism "constitute\[s\] a contention manager that can be used to
//! solve other fairness-related problems"). This crate implements the
//! layers once, for *any* object:
//!
//! 1. [`Abortable`] — the paper's abortable-object notion: an operation
//!    either takes effect and returns a value, or aborts (returns ⊥,
//!    here [`Aborted`]) **with no effect**, which may happen only under
//!    contention. Abortable objects terminate always; solo operations
//!    never abort.
//! 2. [`NonBlocking`] — Figure 2: `repeat weak_op() until res ≠ ⊥`,
//!    parameterized by a [`ContentionManager`] backoff policy.
//! 3. [`ContentionSensitive`] — Figure 3: a lock-free fast path guarded
//!    by the `CONTENTION` register, and a slow path under a
//!    deadlock-free lock boosted to starvation freedom by the
//!    `FLAG`/`TURN` round-robin of §4.4.
//!
//! The progress conditions themselves are catalogued in [`progress`]
//! (obstruction-freedom < non-blocking < starvation-freedom, §1.2).
//!
//! # Example
//!
//! `cso-stack`'s abortable stack plugged into both transformations:
//!
//! ```
//! use cso_core::{Abortable, Aborted};
//!
//! // A toy abortable object: a register with compare-and-set ops.
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! struct AbortableCounter(AtomicU64);
//!
//! enum Op { Incr }
//!
//! impl Abortable for AbortableCounter {
//!     type Op = Op;
//!     type Response = u64;
//!     fn try_apply(&self, _op: &Op) -> Result<u64, Aborted> {
//!         let v = self.0.load(Ordering::SeqCst);
//!         if self.0.compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
//!             Ok(v + 1)
//!         } else {
//!             Err(Aborted) // interfered with: abort with no effect
//!         }
//!     }
//! }
//!
//! use cso_core::NonBlocking;
//! let nb = NonBlocking::new(AbortableCounter(AtomicU64::new(0)));
//! assert_eq!(nb.apply(&Op::Incr), 1);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod abortable;
mod contention_sensitive;
mod error;
mod gate;
mod manager;
mod nonblocking;
pub mod progress;

pub use abortable::{Abortable, BatchCounters, BatchStats};
pub use contention_sensitive::{
    CombiningStats, ContentionSensitive, CsConfig, FaultStats, PathStats, RecoveryStats, Telemetry,
    LOCKED_SOLO_ACCESS_BOUND,
};
pub use cso_memory::liveness::{Liveness, RecoveryPolicy};
pub use error::{Aborted, CsError, TimedOut, Unrecoverable};
pub use gate::{AdaptiveGate, GateStats};
pub use manager::{ContentionManager, ExpBackoff, NoBackoff, SpinBackoff, YieldBackoff};
pub use nonblocking::NonBlocking;
pub use progress::ProgressCondition;

/// Every probe event the Figure 3 transformation in this crate emits,
/// paired with the causal site class a what-if profiling run delays it
/// under (`"-"` for events that are never delayed: completions,
/// timeouts, recovery markers). The class names mirror
/// `cso_trace::probe::SiteClass`; `cso-profile` carries a test keeping
/// this table and `Event::site_class` in sync, so a new probe site
/// added here without a class decision fails that test rather than
/// silently escaping causal injection.
pub const PROBE_SITES: &[(&str, &str)] = &[
    ("fast-attempt", "cas-retry"),
    ("fast-abort", "cas-retry"),
    ("fast-success", "-"),
    ("contention-raise", "-"),
    ("contention-clear", "-"),
    ("elim-attempt", "-"),
    ("eliminated-complete", "-"),
    ("lock-acquire", "flag-wait"),
    ("lock-release", "lock-handoff"),
    ("locked-complete", "-"),
    ("slow-timeout", "-"),
    ("slow-poisoned", "-"),
    ("record-post", "combining"),
    ("record-handoff", "combining"),
    ("combine-batch", "combining"),
    ("combined-complete", "combining"),
    ("record-poisoned", "combining"),
    ("suspect-raised", "-"),
    ("record-reclaimed", "-"),
    // Causal annotation (which thread's tenure executed our record);
    // never delayed — attribution, not work.
    ("helped-by-combiner", "-"),
];

#[cfg(test)]
pub(crate) mod testobj {
    //! A deterministic abortable object for testing the
    //! transformations: aborts a scripted number of times, then
    //! increments a counter.

    use super::{Abortable, Aborted};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[derive(Debug, Default)]
    pub struct ScriptedObject {
        /// Remaining aborts to serve before the next success.
        pub aborts_left: AtomicUsize,
        /// Successful applications so far.
        pub applied: AtomicU64,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Bump(pub u64);

    impl ScriptedObject {
        pub fn with_aborts(n: usize) -> ScriptedObject {
            ScriptedObject {
                aborts_left: AtomicUsize::new(n),
                applied: AtomicU64::new(0),
            }
        }
    }

    impl Abortable for ScriptedObject {
        type Op = Bump;
        type Response = u64;

        fn try_apply(&self, op: &Bump) -> Result<u64, Aborted> {
            let left = self.aborts_left.load(Ordering::SeqCst);
            if left > 0
                && self
                    .aborts_left
                    .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return Err(Aborted);
            }
            Ok(self.applied.fetch_add(op.0, Ordering::SeqCst) + op.0)
        }
    }
}
