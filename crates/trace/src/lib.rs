//! `cso-trace` — observability for the contention-sensitive objects.
//!
//! The paper's central quantitative claim (Theorem 1: a contention-free
//! strong operation costs **six** shared-memory accesses and no lock)
//! is checked offline by the E1 experiment; nothing in the seed could
//! say *why* an individual operation aborted, raised `CONTENTION`, or
//! queued behind `TURN`. This crate closes that gap with four pieces:
//!
//! * [`probe`] — a tracing event API ([`Event`], [`probe!`]) recorded
//!   into lock-free per-thread ring buffers with global logical
//!   timestamps. **Compiled to nothing unless the `trace` cargo
//!   feature is on** — the macro discards its tokens, so release
//!   builds carry zero code and zero cost (the same discipline as
//!   `cso_memory::fail_point!`).
//! * [`hist`] — log-bucketed (HDR-style) latency histograms with
//!   p50/p90/p99/max snapshots, std-only and always compiled (they
//!   are plain data structures; only *recording probes* is gated).
//! * [`audit`] — a live step-count auditor ([`StepAuditor`]) that
//!   wraps any operation in a `cso_memory::counting::CountScope` and
//!   asserts the paper's access budget per completed operation —
//!   the E1 bench bin's measurement promoted to a reusable runtime
//!   check that can fail a test run.
//! * [`export`] — Chrome `trace_event` JSON (open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>) and a plain
//!   counts summary, both driven off a collected [`Trace`].
//!
//! # Feature matrix
//!
//! | feature | effect |
//! |---|---|
//! | *(none)* | [`probe!`] compiles to nothing; [`probe::collect`] returns an empty [`Trace`]; histograms and the auditor still work |
//! | `trace` | probes record into per-thread rings; [`probe::last_path`] reports the completion path |
//! | `trace` + `chaos` | [`install_chaos_hook`] mirrors fail-point *fires* into the event stream |
//!
//! # Example (feature-independent surface)
//!
//! ```
//! use cso_trace::hist::LogHistogram;
//! use cso_trace::probe;
//!
//! let h = LogHistogram::new();
//! h.record_ns(250);
//! h.record_ns(900);
//! assert_eq!(h.snapshot().count, 2);
//!
//! // With the `trace` feature off this is free and collect() is empty.
//! cso_trace::probe!(cso_trace::Event::FastSuccess);
//! let trace = probe::collect();
//! # let _ = trace;
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod audit;
pub mod export;
pub mod hist;
pub mod probe;

pub use audit::{AuditReport, StepAuditor};
pub use hist::{HistSnapshot, LogHistogram};
pub use probe::{Event, Harvested, HelpKind, Path, SiteClass, Trace, TraceEvent, NO_TID};

/// Records a probe [`Event`] on the calling thread.
///
/// With the `trace` cargo feature **disabled** (the default) the event
/// expression is wrapped in a closure that is never called: it stays
/// type-checked (imports at the probe site remain used) but is never
/// evaluated and generates no code, so an un-traced build carries zero
/// cost at every probe site. With the feature enabled the macro
/// appends the event to this thread's ring buffer (see [`probe`]).
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! probe {
    ($event:expr) => {
        $crate::probe::record($event)
    };
}

/// Records a probe [`Event`] (disabled: compiles to nothing; enable
/// the `trace` cargo feature to activate).
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! probe {
    ($event:expr) => {{
        let _ = || $event;
    }};
}

/// Evaluates `$cond` and records `$event` when it is true.
///
/// The condition is evaluated **in both builds** (it may carry side
/// effects — the canonical use is a helping `C&S` whose success is the
/// event); only the recording disappears when the `trace` feature is
/// off. This shape exists so probe sites don't leave behind an empty
/// `if` body that `clippy::needless_if` would reject.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! probe_if {
    ($cond:expr, $event:expr) => {
        if $cond {
            $crate::probe::record($event);
        }
    };
}

/// Evaluates `$cond` for its side effects and leaves `$event`
/// type-checked but unevaluated (disabled form; enable the `trace`
/// cargo feature to record).
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! probe_if {
    ($cond:expr, $event:expr) => {{
        let _ = $cond;
        let _ = || $event;
    }};
}

/// Mirrors chaos fail-point **fires** into the probe event stream as
/// [`Event::FailPoint`] records, so a trace can show *which* fail
/// point caused each poisoning or abort storm.
///
/// A no-op unless both the `trace` and `chaos` cargo features are
/// enabled (callers need not gate the call). Idempotent.
pub fn install_chaos_hook() {
    #[cfg(all(feature = "trace", feature = "chaos"))]
    cso_memory::chaos::set_fire_hook(Some(|site| probe::record(Event::FailPoint(site))));
}

#[cfg(test)]
mod tests {
    #[test]
    fn install_chaos_hook_is_callable_in_any_build() {
        super::install_chaos_hook();
    }
}
