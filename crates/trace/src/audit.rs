//! The live step-count auditor: Theorem 1 as a runtime check.
//!
//! The paper proves (Theorem 1) that a contention-free strong operation
//! on the Figure 3 stack costs **six** shared-memory accesses and takes
//! no lock. The seed checked this only offline, in the `e1` bench bin.
//! A [`StepAuditor`] promotes the measurement to a reusable runtime
//! assertion: wrap each operation in [`StepAuditor::audit`] and the
//! auditor counts its shared accesses via
//! [`cso_memory::counting::CountScope`] — in *strict* mode a budget
//! violation panics immediately with the access breakdown, failing the
//! enclosing test.
//!
//! Two audit shapes exist:
//!
//! * [`StepAuditor::audit`] — enforce on every call. Correct for solo
//!   (contention-free by construction) operations.
//! * [`StepAuditor::audit_contention_free`] — enforce only when the
//!   operation actually completed on the fast path, as reported by
//!   [`crate::probe::last_path`]. Correct under concurrency, where
//!   some operations legitimately fall through to the lock and may
//!   spend more. Requires the `trace` feature to enforce (without it
//!   the path is unknown, so this shape only records).
//!
//! This module is always compiled; only the path-conditional
//! enforcement depends on the `trace` feature.

use crate::probe::{self, Path};
use cso_memory::counting::{AccessCounts, CountScope};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts the shared-memory accesses of audited operations against a
/// budget. Cheap enough to leave in test builds permanently; sharable
/// across threads (`&self` methods, atomic tallies).
#[derive(Debug)]
pub struct StepAuditor {
    budget: u64,
    strict: bool,
    checked: AtomicU64,
    violations: AtomicU64,
    worst: AtomicU64,
}

impl StepAuditor {
    /// An auditor that **panics** the moment an audited operation
    /// exceeds `budget` total shared accesses.
    #[must_use]
    pub fn strict(budget: u64) -> StepAuditor {
        StepAuditor {
            budget,
            strict: true,
            checked: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            worst: AtomicU64::new(0),
        }
    }

    /// An auditor that tallies violations in its [`AuditReport`]
    /// instead of panicking (for exploratory runs).
    #[must_use]
    pub fn recording(budget: u64) -> StepAuditor {
        StepAuditor {
            strict: false,
            ..StepAuditor::strict(budget)
        }
    }

    /// The access budget this auditor enforces.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Runs `op`, counts its shared accesses on this thread, and
    /// checks them against the budget. Returns `op`'s result.
    ///
    /// In strict mode, panics with the access breakdown on a
    /// violation. Use only where *every* call is expected to stay in
    /// budget (e.g. solo operations); under contention prefer
    /// [`StepAuditor::audit_contention_free`].
    pub fn audit<R>(&self, op: impl FnOnce() -> R) -> R {
        let scope = CountScope::start();
        let out = op();
        self.check(scope.take());
        out
    }

    /// Runs `op` and enforces the budget **only if** the operation
    /// completed on the fast path ([`probe::last_path`] reports
    /// [`Path::Fast`]); locked-path completions are counted in the
    /// report's `checked` but never violate. Without the `trace`
    /// feature the completion path is unknown and nothing is enforced
    /// — the call still runs `op` and records the worst cost seen.
    pub fn audit_contention_free<R>(&self, op: impl FnOnce() -> R) -> R {
        let scope = CountScope::start();
        let out = op();
        let counts = scope.take();
        if probe::last_path() == Some(Path::Fast) {
            self.check(counts);
        } else {
            self.checked.fetch_add(1, Ordering::Relaxed);
            self.worst.fetch_max(counts.total(), Ordering::Relaxed);
        }
        out
    }

    /// Feeds an externally measured [`AccessCounts`] through the same
    /// budget check as [`StepAuditor::audit`].
    pub fn observe(&self, counts: AccessCounts) {
        self.check(counts);
    }

    fn check(&self, counts: AccessCounts) {
        self.checked.fetch_add(1, Ordering::Relaxed);
        self.worst.fetch_max(counts.total(), Ordering::Relaxed);
        if counts.total() > self.budget {
            self.violations.fetch_add(1, Ordering::Relaxed);
            if self.strict {
                panic!(
                    "step budget exceeded: {} > {} allowed ({counts})",
                    counts.total(),
                    self.budget
                );
            }
        }
    }

    /// A snapshot of what this auditor has seen so far.
    #[must_use]
    pub fn report(&self) -> AuditReport {
        AuditReport {
            budget: self.budget,
            checked: self.checked.load(Ordering::Relaxed),
            violations: self.violations.load(Ordering::Relaxed),
            worst: self.worst.load(Ordering::Relaxed),
        }
    }
}

/// Tallies from a [`StepAuditor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditReport {
    /// The budget that was enforced.
    pub budget: u64,
    /// Operations audited (including locked-path completions under
    /// [`StepAuditor::audit_contention_free`]).
    pub checked: u64,
    /// Operations whose enforced total exceeded the budget.
    pub violations: u64,
    /// Largest access total seen on any audited operation, enforced
    /// or not.
    pub worst: u64,
}

impl AuditReport {
    /// True when every enforced operation stayed within budget.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_memory::counting::{record, AccessKind};

    fn spend(reads: u64, writes: u64, cas: u64) {
        for _ in 0..reads {
            record(AccessKind::Read);
        }
        for _ in 0..writes {
            record(AccessKind::Write);
        }
        for _ in 0..cas {
            record(AccessKind::Cas);
        }
    }

    #[test]
    fn within_budget_passes_and_tallies() {
        let auditor = StepAuditor::strict(6);
        let v = auditor.audit(|| {
            spend(3, 1, 2);
            42
        });
        assert_eq!(v, 42);
        let r = auditor.report();
        assert_eq!(r.checked, 1);
        assert_eq!(r.worst, 6);
        assert!(r.clean());
    }

    #[test]
    #[should_panic(expected = "step budget exceeded: 7 > 6")]
    fn strict_over_budget_panics() {
        StepAuditor::strict(6).audit(|| spend(4, 1, 2));
    }

    #[test]
    fn recording_over_budget_tallies_without_panic() {
        let auditor = StepAuditor::recording(6);
        auditor.audit(|| spend(10, 0, 0));
        auditor.audit(|| spend(1, 0, 0));
        let r = auditor.report();
        assert_eq!(r.checked, 2);
        assert_eq!(r.violations, 1);
        assert_eq!(r.worst, 10);
        assert!(!r.clean());
    }

    #[test]
    fn observe_feeds_external_counts() {
        let auditor = StepAuditor::recording(6);
        auditor.observe(AccessCounts {
            reads: 5,
            writes: 1,
            cas: 1,
        });
        assert_eq!(auditor.report().violations, 1);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn contention_free_audit_skips_locked_completions() {
        use crate::probe::record as precord;
        use crate::Event;
        let auditor = StepAuditor::strict(6);
        // A locked completion spending over budget must not violate.
        auditor.audit_contention_free(|| {
            spend(10, 0, 0);
            precord(Event::LockedComplete);
        });
        // A fast completion within budget is enforced and passes.
        auditor.audit_contention_free(|| {
            spend(5, 0, 0);
            precord(Event::FastSuccess);
        });
        let r = auditor.report();
        assert_eq!(r.checked, 2);
        assert!(r.clean());
        assert_eq!(r.worst, 10);
    }

    #[cfg(feature = "trace")]
    #[test]
    #[should_panic(expected = "step budget exceeded")]
    fn contention_free_audit_enforces_fast_completions() {
        use crate::probe::record as precord;
        use crate::Event;
        StepAuditor::strict(6).audit_contention_free(|| {
            spend(7, 0, 0);
            precord(Event::FastSuccess);
        });
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn contention_free_audit_only_records_without_trace() {
        let auditor = StepAuditor::strict(6);
        auditor.audit_contention_free(|| spend(10, 0, 0));
        let r = auditor.report();
        assert_eq!(r.checked, 1);
        assert!(r.clean(), "unknown path ⇒ no enforcement");
        assert_eq!(r.worst, 10);
    }
}
