//! The probe event API: what happened, on which thread, in what order.
//!
//! Probe sites in the object/lock crates call [`crate::probe!`] with an
//! [`Event`]. With the `trace` cargo feature enabled, each event is
//! appended to a **lock-free per-thread ring buffer** together with a
//! global logical timestamp (one relaxed `fetch_add`) and a wall-clock
//! offset; [`collect`] merges every thread's ring into one ordered
//! [`Trace`]. With the feature disabled the macro discards its tokens
//! and none of the machinery below is compiled.
//!
//! # Concurrency contract
//!
//! Each ring has exactly one writer (its owning thread); [`collect`]
//! reads the rings concurrently with relaxed loads below an
//! acquire-read head, so every event published before the collect is
//! seen intact. A ring that wraps overwrites its oldest events — the
//! overwritten count is reported as [`Trace::dropped`], never silently.
//! Collecting while writers are still recording can observe a slot
//! mid-overwrite for events *older than the ring capacity*; collect in
//! a quiescent moment (end of a benchmark cell) for exact results.

use std::fmt;

/// Which path a completed strong operation took (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Path {
    /// Lines 01–03: the lock-free fast path.
    Fast,
    /// The elimination middle rung of the escalation ladder: the
    /// operation completed by rendezvous with a concurrent inverse
    /// (never touching the object's main state or the lock).
    Eliminated,
    /// Lines 04–13: under the (boosted) lock.
    Locked,
}

/// One probe event. The taxonomy follows Figure 3's lifecycle plus the
/// lock substrate's fairness mechanics:
///
/// * fast path: [`Event::FastAttempt`] / [`Event::FastAbort`] /
///   [`Event::FastSuccess`];
/// * weak-operation internals: [`Event::CasFail`] (the decisive `C&S`
///   lost — the paper's only source of ⊥) and [`Event::HelpingWrite`]
///   (a lazy write finished on behalf of the previous operation);
/// * the `CONTENTION` register: [`Event::ContentionRaise`] /
///   [`Event::ContentionClear`] (lines 07/09);
/// * the slow path: [`Event::LockAcquire`] / [`Event::LockRelease`] /
///   [`Event::LockedComplete`] / [`Event::SlowTimeout`] /
///   [`Event::SlowPoisoned`];
/// * fairness: [`Event::FlagRaise`] (line 04 — the process announces
///   interest before competing for the lock), [`Event::TurnAdvance`]
///   (line 11) and [`Event::LockHandoff`] (queue locks passing custody
///   directly);
/// * flat combining: [`Event::RecordPost`] / [`Event::RecordHandoff`] /
///   [`Event::CombineBatch`] / [`Event::CombinedComplete`] /
///   [`Event::RecordPoisoned`] (the publication-record lifecycle of
///   the combining slow path);
/// * elimination: [`Event::ElimAttempt`] / [`Event::EliminatedComplete`]
///   (the escalation ladder's rendezvous middle rung);
/// * chaos: [`Event::FailPoint`] — a fail point *fired* (see
///   [`crate::install_chaos_hook`]);
/// * crash recovery: [`Event::SuspectRaised`] /
///   [`Event::RecordReclaimed`] / [`Event::LockSucceeded`] (liveness
///   suspicion, publication-record tombstoning, lock succession);
/// * causal edges: [`Event::HelpedByCombiner`] /
///   [`Event::HelpedByPartner`] / [`Event::HandoffFrom`] /
///   [`Event::CustodyFrom`] — cross-thread completion attribution.
///   Each carries the **trace thread id** (see [`thread_id`]) of the
///   thread that did the cross-thread work, recorded on the *invoking*
///   thread at the moment it observes the completion, so a replayer
///   can attach a helped-by edge to the span it is about to close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A fast-path weak operation is about to run (line 02 entered).
    FastAttempt,
    /// The fast-path weak operation returned ⊥.
    FastAbort,
    /// The operation completed on the fast path.
    FastSuccess,
    /// A decisive `Compare&Swap` failed; the payload names the
    /// register (e.g. `"stack::top"`).
    CasFail(&'static str),
    /// `CONTENTION ← true` (line 07).
    ContentionRaise,
    /// `CONTENTION ← false` (line 09).
    ContentionClear,
    /// Process `proc` acquired the slow-path lock (line 06 passed).
    LockAcquire(u32),
    /// Process `proc` released the slow-path lock (line 12).
    LockRelease(u32),
    /// A queue lock handed custody directly to its successor; the
    /// payload names the lock kind (e.g. `"mcs"`).
    LockHandoff(&'static str),
    /// `TURN` advanced to the given identity (line 11).
    TurnAdvance(u32),
    /// A helping `C&S` performed the previous operation's pending
    /// write; the payload names the helped register.
    HelpingWrite(&'static str),
    /// A chaos fail point fired; the payload is the site name.
    FailPoint(&'static str),
    /// The operation completed under the lock.
    LockedComplete,
    /// A deadline-bounded slow path gave up ([`cso_core::TimedOut`]
    /// terms — no effect took place).
    ///
    /// [`cso_core::TimedOut`]: ../../cso_core/struct.TimedOut.html
    SlowTimeout,
    /// A slow path unwound (panicked) under the lock and was survived
    /// by the RAII guard.
    SlowPoisoned,
    /// A contended operation posted its publication record (combining
    /// slow path entered).
    RecordPost,
    /// A waiter took the response a combiner wrote into its record;
    /// the payload is the post-to-done handoff latency in nanoseconds
    /// (saturated at `u32::MAX` ≈ 4.3 s).
    RecordHandoff(u32),
    /// A combiner finished one lock tenure; the payload is the batch
    /// size (its own operation plus every request it served).
    CombineBatch(u32),
    /// The operation completed via a combiner (an under-lock
    /// completion attributed to the *invoking* thread).
    CombinedComplete,
    /// A waiter reclaimed a record the combiner poisoned mid-batch
    /// (the operation was not applied; the waiter reposts).
    RecordPoisoned,
    /// Process `proc` raised its `FLAG` (line 04 — it is now owed the
    /// lock within a bounded number of bypasses, §4.4). The interval
    /// from this event to the same process's [`Event::LockAcquire`] is
    /// the window the bypass-bound analyzer counts other acquirers in.
    FlagRaise(u32),
    /// An aborted weak operation entered the elimination rendezvous
    /// (the escalation ladder's middle rung, before `CONTENTION`).
    ElimAttempt,
    /// The operation completed by exchanging with a concurrent inverse
    /// operation — neither the object's main state nor the lock was
    /// touched.
    EliminatedComplete,
    /// Process `proc` was suspected dead (stale liveness lease or an
    /// explicit kill) by a recovering peer. Opens the time-to-recover
    /// window the analyzer measures up to [`Event::LockSucceeded`] /
    /// [`Event::RecordReclaimed`].
    SuspectRaised(u32),
    /// A combiner retired a POSTED publication record whose owner
    /// `proc` was suspected dead (tombstoned, **not** applied).
    RecordReclaimed(u32),
    /// Process `proc` seized the slow-path lock from a suspected-dead
    /// holder (custody transfer; the inner lock word was never
    /// observably free in between).
    LockSucceeded(u32),
    /// This thread's operation was applied by a combiner running on
    /// the given trace thread (the CLAIMED→DONE cross-thread
    /// completion). Recorded just before [`Event::CombinedComplete`].
    HelpedByCombiner(u32),
    /// This thread's operation completed by elimination rendezvous
    /// with a partner running on the given trace thread. Recorded just
    /// before [`Event::EliminatedComplete`].
    HelpedByPartner(u32),
    /// This thread acquired the slow-path lock that the given trace
    /// thread released (the lock/TURN handoff edge). Recorded just
    /// after [`Event::LockAcquire`].
    HandoffFrom(u32),
    /// This thread seized lock custody from a suspected-dead holder
    /// whose last tenure ran on the given trace thread. Recorded just
    /// after [`Event::LockSucceeded`].
    CustodyFrom(u32),
}

/// The trace thread id recorded when a causal stamp could not be
/// attributed (the helper ran before ever registering a ring, or the
/// build is untraced). Causal events carrying this value are kept as
/// annotations but excluded from the helped-by graph.
pub const NO_TID: u32 = u32::MAX;

/// The kind of cross-thread help a causal edge records — which of the
/// four completion sites stamped it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HelpKind {
    /// Flat-combining CLAIMED→DONE: a combiner applied the op.
    Combiner,
    /// Elimination rendezvous: an inverse op exchanged with this one.
    Partner,
    /// Lock/TURN handoff: the previous holder passed the lock on.
    Handoff,
    /// Succession: custody was seized from a dead holder's tenure.
    Custody,
}

impl HelpKind {
    /// A stable short name (`combiner`, `partner`, `handoff`,
    /// `custody`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HelpKind::Combiner => "combiner",
            HelpKind::Partner => "partner",
            HelpKind::Handoff => "handoff",
            HelpKind::Custody => "custody",
        }
    }

    /// Every kind, in a stable order.
    pub const ALL: [HelpKind; 4] = [
        HelpKind::Combiner,
        HelpKind::Partner,
        HelpKind::Handoff,
        HelpKind::Custody,
    ];
}

impl fmt::Display for HelpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Event {
    /// A stable short name for summaries and Chrome trace rows.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Event::FastAttempt => "fast-attempt",
            Event::FastAbort => "fast-abort",
            Event::FastSuccess => "fast-success",
            Event::CasFail(_) => "cas-fail",
            Event::ContentionRaise => "contention-raise",
            Event::ContentionClear => "contention-clear",
            Event::LockAcquire(_) => "lock-acquire",
            Event::LockRelease(_) => "lock-release",
            Event::LockHandoff(_) => "lock-handoff",
            Event::TurnAdvance(_) => "turn-advance",
            Event::HelpingWrite(_) => "helping-write",
            Event::FailPoint(_) => "fail-point",
            Event::LockedComplete => "locked-complete",
            Event::SlowTimeout => "slow-timeout",
            Event::SlowPoisoned => "slow-poisoned",
            Event::RecordPost => "record-post",
            Event::RecordHandoff(_) => "record-handoff",
            Event::CombineBatch(_) => "combine-batch",
            Event::CombinedComplete => "combined-complete",
            Event::RecordPoisoned => "record-poisoned",
            Event::FlagRaise(_) => "flag-raise",
            Event::ElimAttempt => "elim-attempt",
            Event::EliminatedComplete => "eliminated-complete",
            Event::SuspectRaised(_) => "suspect-raised",
            Event::RecordReclaimed(_) => "record-reclaimed",
            Event::LockSucceeded(_) => "lock-succeeded",
            Event::HelpedByCombiner(_) => "helped-by-combiner",
            Event::HelpedByPartner(_) => "helped-by-partner",
            Event::HandoffFrom(_) => "handoff-from",
            Event::CustodyFrom(_) => "custody-from",
        }
    }

    /// The site payload, for the variants that carry one.
    #[must_use]
    pub fn site(&self) -> Option<&'static str> {
        match self {
            Event::CasFail(s)
            | Event::LockHandoff(s)
            | Event::HelpingWrite(s)
            | Event::FailPoint(s) => Some(s),
            _ => None,
        }
    }

    /// The process-identity payload, for the variants that carry one.
    #[must_use]
    pub fn proc(&self) -> Option<u32> {
        match self {
            Event::LockAcquire(p)
            | Event::LockRelease(p)
            | Event::TurnAdvance(p)
            | Event::FlagRaise(p)
            | Event::SuspectRaised(p)
            | Event::RecordReclaimed(p)
            | Event::LockSucceeded(p) => Some(*p),
            _ => None,
        }
    }

    /// The measurement payload, for the variants that carry one: the
    /// handoff latency of [`Event::RecordHandoff`] (nanoseconds), the
    /// batch size of [`Event::CombineBatch`], or the helper trace
    /// thread id of the causal-edge events.
    #[must_use]
    pub fn value(&self) -> Option<u32> {
        match self {
            Event::RecordHandoff(v)
            | Event::CombineBatch(v)
            | Event::HelpedByCombiner(v)
            | Event::HelpedByPartner(v)
            | Event::HandoffFrom(v)
            | Event::CustodyFrom(v) => Some(*v),
            _ => None,
        }
    }

    /// The causal edge this event records, for the four helped-by
    /// variants: `(kind, helper trace thread id)`. Returns `None` both
    /// for non-causal events and for causal events stamped [`NO_TID`]
    /// (an unattributable helper never enters the graph).
    #[must_use]
    pub fn help(&self) -> Option<(HelpKind, u32)> {
        let (kind, tid) = match self {
            Event::HelpedByCombiner(t) => (HelpKind::Combiner, *t),
            Event::HelpedByPartner(t) => (HelpKind::Partner, *t),
            Event::HandoffFrom(t) => (HelpKind::Handoff, *t),
            Event::CustodyFrom(t) => (HelpKind::Custody, *t),
            _ => return None,
        };
        (tid != NO_TID).then_some((kind, tid))
    }

    /// A qualified label: the name, plus `@site` or `(proc)` when the
    /// variant carries a payload. This is the key the summary table
    /// groups by, so e.g. `cas-fail@stack::top` and
    /// `fail-point@cs::locked` get separate rows.
    #[must_use]
    pub fn label(&self) -> String {
        if let Some(site) = self.site() {
            format!("{}@{}", self.name(), site)
        } else {
            self.name().to_owned()
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(proc) = self.proc() {
            write!(f, "{}({proc})", self.name())
        } else {
            f.write_str(&self.label())
        }
    }
}

/// The four candidate bottlenecks a causal (what-if) profiling run
/// ranks against each other. Every probe event maps to at most one
/// class (see [`Event::site_class`]); events outside the four classes
/// (completions, chaos fires, recovery markers) are never delayed.
///
/// The classes follow the transformation's cost structure:
/// [`SiteClass::CasRetry`] is the fast path's retry machinery,
/// [`SiteClass::FlagWait`] the FLAG-to-acquire wait of the §4.4 boosted
/// lock, [`SiteClass::LockHandoff`] the release/TURN/succession custody
/// transfer, and [`SiteClass::Combining`] the publication-record
/// lifecycle of the combining slow path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteClass {
    /// Fast-path retry machinery: `fast-attempt`, `fast-abort`,
    /// `cas-fail`, `helping-write`.
    CasRetry,
    /// FLAG raise through lock acquisition: `flag-raise`,
    /// `lock-acquire`.
    FlagWait,
    /// Lock custody transfer: `lock-release`, `turn-advance`,
    /// `lock-handoff`, `lock-succeeded`.
    LockHandoff,
    /// Combining tenure: `record-post`, `record-handoff`,
    /// `combine-batch`, `combined-complete`, `record-poisoned`.
    Combining,
}

impl SiteClass {
    /// Every class, in a stable order (bit index order).
    pub const ALL: [SiteClass; 4] = [
        SiteClass::CasRetry,
        SiteClass::FlagWait,
        SiteClass::LockHandoff,
        SiteClass::Combining,
    ];

    /// A stable short name (`cas-retry`, `flag-wait`, `lock-handoff`,
    /// `combining`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SiteClass::CasRetry => "cas-retry",
            SiteClass::FlagWait => "flag-wait",
            SiteClass::LockHandoff => "lock-handoff",
            SiteClass::Combining => "combining",
        }
    }

    /// The inverse of [`SiteClass::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<SiteClass> {
        SiteClass::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// This class's bit in a delay mask (see [`set_causal_delays`]).
    #[must_use]
    pub fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// The mask selecting every class.
    #[must_use]
    pub fn mask_all() -> u32 {
        SiteClass::ALL.iter().map(|c| c.bit()).fold(0, |a, b| a | b)
    }
}

impl fmt::Display for SiteClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Event {
    /// The causal site class this event belongs to, or `None` for
    /// events that a causal profiling run never delays.
    #[must_use]
    pub fn site_class(&self) -> Option<SiteClass> {
        match self {
            Event::FastAttempt | Event::FastAbort | Event::CasFail(_) | Event::HelpingWrite(_) => {
                Some(SiteClass::CasRetry)
            }
            Event::FlagRaise(_) | Event::LockAcquire(_) => Some(SiteClass::FlagWait),
            Event::LockRelease(_)
            | Event::TurnAdvance(_)
            | Event::LockHandoff(_)
            | Event::LockSucceeded(_) => Some(SiteClass::LockHandoff),
            Event::RecordPost
            | Event::RecordHandoff(_)
            | Event::CombineBatch(_)
            | Event::CombinedComplete
            | Event::RecordPoisoned => Some(SiteClass::Combining),
            _ => None,
        }
    }
}

/// One collected event: which thread, when (logical and wall), what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Recorder thread (dense ids in registration order, not OS tids).
    pub thread: u32,
    /// Global logical timestamp: a total order across threads.
    pub seq: u64,
    /// Nanoseconds since the first recorded event (approximately).
    pub wall_ns: u64,
    /// What happened.
    pub event: Event,
}

/// Every thread's ring merged and ordered by logical timestamp.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The surviving events, sorted by [`TraceEvent::seq`].
    pub events: Vec<TraceEvent>,
    /// Events overwritten by ring wrap-around before collection.
    pub dropped: u64,
    /// Per-thread truncation markers: `(thread, overwritten)` for every
    /// thread whose ring wrapped. A thread listed here has lost its
    /// *oldest* events — its surviving prefix starts mid-stream, so a
    /// span analyzer must treat that thread's leading partial operation
    /// as truncated rather than malformed. Threads that lost nothing
    /// are not listed.
    pub truncated: Vec<(u32, u64)>,
}

/// One harvester pass over every ring: the events drained since the
/// previous pass, plus how many were overwritten before this pass could
/// read them (see [`harvest`]).
#[derive(Debug, Clone, Default)]
pub struct Harvested {
    /// The drained events, sorted by [`TraceEvent::seq`].
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wrap-around between passes: they were
    /// overwritten (or observed mid-overwrite) before this pass read
    /// them. A harvester that keeps pace reports 0 here on every pass.
    pub lost: u64,
    /// Per-thread loss markers, `(thread, lost)`, for the threads that
    /// contributed to [`Harvested::lost`] — a streaming span analyzer
    /// desynchronises exactly those threads' state machines.
    pub truncated: Vec<(u32, u64)>,
}

impl Trace {
    /// True when nothing was recorded (always true without the
    /// `trace` feature).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Event counts grouped by [`Event::label`], descending by count
    /// (ties broken alphabetically for stable output).
    #[must_use]
    pub fn counts(&self) -> Vec<(String, u64)> {
        let mut map: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for e in &self.events {
            *map.entry(e.event.label()).or_insert(0) += 1;
        }
        let mut rows: Vec<(String, u64)> = map.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows
    }

    /// The number of distinct recording threads seen.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        let mut threads: Vec<u32> = self.events.iter().map(|e| e.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        threads.len()
    }
}

#[cfg(feature = "trace")]
mod imp {
    use super::{Event, Harvested, Path, Trace, TraceEvent};
    use std::cell::{Cell, OnceCell, RefCell};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::{Duration, Instant};

    /// Events kept per thread before the ring wraps (power of two).
    pub(super) const RING_CAPACITY: usize = 1 << 12;

    /// Runtime master switch (the compile-time switch is the feature).
    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// Causal-profiling delay config, packed `mask << 32 | delay_ns`
    /// where `mask` selects [`super::SiteClass`] bits. Zero when
    /// inactive, so the per-event cost outside a profiling window is
    /// one relaxed load.
    static CAUSAL: AtomicU64 = AtomicU64::new(0);

    /// The global logical clock: one relaxed `fetch_add` per event.
    static SEQ: AtomicU64 = AtomicU64::new(0);

    /// Wall-clock origin, fixed at the first recorded event.
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// Every thread's ring, in registration order.
    static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

    /// Interned site names (`&'static str` payloads), id = index.
    static SITES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

    struct Slot {
        seq: AtomicU64,
        wall_ns: AtomicU64,
        /// `code << 32 | arg`.
        word: AtomicU64,
    }

    pub(super) struct Ring {
        thread: u32,
        /// Events ever written (monotonic; slot = head % capacity).
        head: AtomicU64,
        /// Events logically discarded by [`super::clear`].
        floor: AtomicU64,
        slots: Box<[Slot]>,
    }

    impl Ring {
        fn push(&self, code: u8, arg: u32) {
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            let wall_ns = EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64;
            let head = self.head.load(Ordering::Relaxed);
            let slot = &self.slots[(head as usize) & (RING_CAPACITY - 1)];
            slot.seq.store(seq, Ordering::Relaxed);
            slot.wall_ns.store(wall_ns, Ordering::Relaxed);
            slot.word
                .store(u64::from(code) << 32 | u64::from(arg), Ordering::Relaxed);
            // Publish: collectors acquire-read the head, so the slot
            // stores above are visible for every index below it.
            self.head.store(head + 1, Ordering::Release);
        }
    }

    thread_local! {
        static MY_RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
        /// `(site pointer, interned id)` pairs already resolved by
        /// this thread — the global table is locked at most once per
        /// distinct site per thread.
        static SITE_CACHE: RefCell<Vec<(usize, u32)>> = const { RefCell::new(Vec::new()) };
        static LAST_PATH: Cell<Option<Path>> = const { Cell::new(None) };
    }

    fn register_ring() -> Arc<Ring> {
        let mut rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
        let ring = Arc::new(Ring {
            thread: rings.len() as u32,
            head: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            slots: (0..RING_CAPACITY)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    wall_ns: AtomicU64::new(0),
                    word: AtomicU64::new(0),
                })
                .collect(),
        });
        rings.push(Arc::clone(&ring));
        ring
    }

    fn site_id(site: &'static str) -> u32 {
        SITE_CACHE.with(|cache| {
            let key = site.as_ptr() as usize;
            let mut cache = cache.borrow_mut();
            if let Some(&(_, id)) = cache.iter().find(|(k, _)| *k == key) {
                return id;
            }
            let mut sites = SITES.lock().unwrap_or_else(|e| e.into_inner());
            let id = match sites.iter().position(|s| *s == site) {
                Some(i) => i as u32,
                None => {
                    sites.push(site);
                    (sites.len() - 1) as u32
                }
            };
            drop(sites);
            cache.push((key, id));
            id
        })
    }

    fn site_name(id: u32) -> &'static str {
        SITES
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(id as usize)
            .copied()
            .unwrap_or("?")
    }

    fn encode(event: Event) -> (u8, u32) {
        match event {
            Event::FastAttempt => (0, 0),
            Event::FastAbort => (1, 0),
            Event::FastSuccess => (2, 0),
            Event::CasFail(s) => (3, site_id(s)),
            Event::ContentionRaise => (4, 0),
            Event::ContentionClear => (5, 0),
            Event::LockAcquire(p) => (6, p),
            Event::LockRelease(p) => (7, p),
            Event::LockHandoff(s) => (8, site_id(s)),
            Event::TurnAdvance(p) => (9, p),
            Event::HelpingWrite(s) => (10, site_id(s)),
            Event::FailPoint(s) => (11, site_id(s)),
            Event::LockedComplete => (12, 0),
            Event::SlowTimeout => (13, 0),
            Event::SlowPoisoned => (14, 0),
            Event::RecordPost => (15, 0),
            Event::RecordHandoff(v) => (16, v),
            Event::CombineBatch(v) => (17, v),
            Event::CombinedComplete => (18, 0),
            Event::RecordPoisoned => (19, 0),
            Event::FlagRaise(p) => (20, p),
            Event::ElimAttempt => (21, 0),
            Event::EliminatedComplete => (22, 0),
            Event::SuspectRaised(p) => (23, p),
            Event::RecordReclaimed(p) => (24, p),
            Event::LockSucceeded(p) => (25, p),
            Event::HelpedByCombiner(t) => (26, t),
            Event::HelpedByPartner(t) => (27, t),
            Event::HandoffFrom(t) => (28, t),
            Event::CustodyFrom(t) => (29, t),
        }
    }

    fn decode(code: u8, arg: u32) -> Option<Event> {
        Some(match code {
            0 => Event::FastAttempt,
            1 => Event::FastAbort,
            2 => Event::FastSuccess,
            3 => Event::CasFail(site_name(arg)),
            4 => Event::ContentionRaise,
            5 => Event::ContentionClear,
            6 => Event::LockAcquire(arg),
            7 => Event::LockRelease(arg),
            8 => Event::LockHandoff(site_name(arg)),
            9 => Event::TurnAdvance(arg),
            10 => Event::HelpingWrite(site_name(arg)),
            11 => Event::FailPoint(site_name(arg)),
            12 => Event::LockedComplete,
            13 => Event::SlowTimeout,
            14 => Event::SlowPoisoned,
            15 => Event::RecordPost,
            16 => Event::RecordHandoff(arg),
            17 => Event::CombineBatch(arg),
            18 => Event::CombinedComplete,
            19 => Event::RecordPoisoned,
            20 => Event::FlagRaise(arg),
            21 => Event::ElimAttempt,
            22 => Event::EliminatedComplete,
            23 => Event::SuspectRaised(arg),
            24 => Event::RecordReclaimed(arg),
            25 => Event::LockSucceeded(arg),
            26 => Event::HelpedByCombiner(arg),
            27 => Event::HelpedByPartner(arg),
            28 => Event::HandoffFrom(arg),
            29 => Event::CustodyFrom(arg),
            _ => return None,
        })
    }

    pub(super) fn record(event: Event) {
        match event {
            Event::FastSuccess => LAST_PATH.with(|p| p.set(Some(Path::Fast))),
            Event::EliminatedComplete => LAST_PATH.with(|p| p.set(Some(Path::Eliminated))),
            Event::LockedComplete | Event::CombinedComplete => {
                LAST_PATH.with(|p| p.set(Some(Path::Locked)));
            }
            Event::SlowTimeout | Event::SlowPoisoned => LAST_PATH.with(|p| p.set(None)),
            _ => {}
        }
        let causal = CAUSAL.load(Ordering::Relaxed);
        if causal != 0 {
            if let Some(class) = event.site_class() {
                if (causal >> 32) as u32 & class.bit() != 0 {
                    spin_delay(causal as u32);
                }
            }
        }
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        let (code, arg) = encode(event);
        MY_RING.with(|cell| cell.get_or_init(register_ring).push(code, arg));
    }

    /// Busy-wait for `delay_ns`: causal injection must not yield the
    /// core (a sleep would let the scheduler hide the virtual slowdown).
    fn spin_delay(delay_ns: u32) {
        let deadline = Duration::from_nanos(u64::from(delay_ns));
        let start = Instant::now();
        while start.elapsed() < deadline {
            std::hint::spin_loop();
        }
    }

    pub(super) fn set_causal_delays(mask: u32, delay_ns: u32) {
        let packed = if mask == 0 || delay_ns == 0 {
            0
        } else {
            u64::from(mask) << 32 | u64::from(delay_ns)
        };
        CAUSAL.store(packed, Ordering::SeqCst);
    }

    pub(super) fn causal_delays() -> Option<(u32, u32)> {
        match CAUSAL.load(Ordering::Relaxed) {
            0 => None,
            packed => Some(((packed >> 32) as u32, packed as u32)),
        }
    }

    pub(super) fn last_path() -> Option<Path> {
        LAST_PATH.with(Cell::get)
    }

    pub(super) fn thread_id() -> u32 {
        MY_RING.with(|cell| cell.get_or_init(register_ring).thread)
    }

    pub(super) fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::SeqCst);
    }

    pub(super) fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// One ring's readable window: `(head, oldest)` where `oldest` is
    /// the first index still in the ring and above the floor. Indices
    /// in `floor..oldest` were overwritten unread — that gap *is* the
    /// ring's drop count, so every consumer below derives loss from
    /// this one helper and the global and per-thread counts agree by
    /// construction.
    fn ring_window(ring: &Ring) -> (u64, u64, u64) {
        let head = ring.head.load(Ordering::Acquire);
        let floor = ring.floor.load(Ordering::Acquire);
        let oldest = head.saturating_sub(RING_CAPACITY as u64).max(floor);
        (head, oldest, oldest - floor)
    }

    fn read_range(ring: &Ring, from: u64, to: u64, events: &mut Vec<TraceEvent>) {
        for i in from..to {
            let slot = &ring.slots[(i as usize) & (RING_CAPACITY - 1)];
            let word = slot.word.load(Ordering::Relaxed);
            let code = (word >> 32) as u8;
            let arg = word as u32;
            if let Some(event) = decode(code, arg) {
                events.push(TraceEvent {
                    thread: ring.thread,
                    seq: slot.seq.load(Ordering::Relaxed),
                    wall_ns: slot.wall_ns.load(Ordering::Relaxed),
                    event,
                });
            }
        }
    }

    pub(super) fn collect() -> Trace {
        let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
        let mut events = Vec::new();
        let mut truncated = Vec::new();
        for ring in rings.iter() {
            let (head, oldest, lost) = ring_window(ring);
            if lost > 0 {
                truncated.push((ring.thread, lost));
            }
            read_range(ring, oldest, head, &mut events);
        }
        events.sort_by_key(|e| e.seq);
        // The global count is the per-thread markers' sum *by
        // construction* — there is no second accounting path to drift.
        let dropped = truncated.iter().map(|(_, d)| d).sum();
        Trace {
            events,
            dropped,
            truncated,
        }
    }

    /// Events overwritten by ring wrap-around so far, summed over every
    /// ring (relative to the last [`super::clear`] / [`super::harvest`]).
    pub(super) fn dropped() -> u64 {
        let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
        rings.iter().map(|ring| ring_window(ring).2).sum()
    }

    /// Events ever pushed into any ring (monotonic; unaffected by
    /// [`super::clear`]).
    pub(super) fn emitted() -> u64 {
        let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
        rings
            .iter()
            .map(|ring| ring.head.load(Ordering::Acquire))
            .sum()
    }

    pub(super) fn harvest() -> Harvested {
        // The RINGS mutex serializes harvest against collect/clear and
        // against concurrent harvesters: each ring has exactly one
        // consumer at a time, so advancing the floor below is safe.
        let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
        let mut events = Vec::new();
        let mut lost = 0u64;
        let mut truncated = Vec::new();
        for ring in rings.iter() {
            let (head, oldest, gap) = ring_window(ring);
            let mut ring_lost = gap;
            let mut batch: Vec<(u64, TraceEvent)> = Vec::with_capacity((head - oldest) as usize);
            for i in oldest..head {
                let slot = &ring.slots[(i as usize) & (RING_CAPACITY - 1)];
                let word = slot.word.load(Ordering::Relaxed);
                if let Some(event) = decode((word >> 32) as u8, word as u32) {
                    batch.push((
                        i,
                        TraceEvent {
                            thread: ring.thread,
                            seq: slot.seq.load(Ordering::Relaxed),
                            wall_ns: slot.wall_ns.load(Ordering::Relaxed),
                            event,
                        },
                    ));
                }
            }
            // Writers kept pushing while we read. Any index the head
            // has since come within one capacity of was potentially
            // mid-overwrite during the read above — discard those reads
            // and count them lost rather than hand back torn slots.
            // The +1: a write publishes its head increment *after* the
            // slot stores, so when `head_now` reads `j` the writer may
            // still be scribbling index `j`'s slot — which index
            // `j - capacity` shares. Keeping that boundary index can
            // ingest the new lap's word under the old index and then
            // read the same word again next pass (a duplicate that
            // breaks `ingested + lost == emitted`).
            let head_now = ring.head.load(Ordering::Acquire);
            let safe_from = (head_now + 1).saturating_sub(RING_CAPACITY as u64);
            if safe_from > oldest {
                ring_lost += safe_from.min(head) - oldest;
                batch.retain(|(i, _)| *i >= safe_from);
            }
            events.extend(batch.into_iter().map(|(_, e)| e));
            if ring_lost > 0 {
                truncated.push((ring.thread, ring_lost));
            }
            lost += ring_lost;
            // Everything up to the observed head is now consumed:
            // overwriting it no longer counts as a drop. fetch_max
            // keeps a concurrent clear()'s higher floor intact.
            ring.floor.fetch_max(head, Ordering::AcqRel);
        }
        events.sort_by_key(|e| e.seq);
        Harvested {
            events,
            lost,
            truncated,
        }
    }

    pub(super) fn clear() {
        let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
        for ring in rings.iter() {
            let head = ring.head.load(Ordering::Acquire);
            ring.floor.store(head, Ordering::Release);
        }
    }
}

/// Appends `event` to the calling thread's ring buffer.
///
/// Prefer the [`crate::probe!`] macro at instrumentation sites: the
/// macro disappears entirely in un-traced builds, while calling this
/// function directly only exists when the `trace` feature is on.
#[cfg(feature = "trace")]
pub fn record(event: Event) {
    imp::record(event);
}

/// The path taken by the calling thread's most recently **completed**
/// strong operation: `Some(Fast)` after a fast-path success,
/// `Some(Eliminated)` after a rendezvous completion,
/// `Some(Locked)` after an under-lock completion, `None` initially and
/// after a timeout or survived panic (no completion took place).
///
/// Returns `None` always when the `trace` feature is off.
#[must_use]
pub fn last_path() -> Option<Path> {
    #[cfg(feature = "trace")]
    {
        imp::last_path()
    }
    #[cfg(not(feature = "trace"))]
    {
        None
    }
}

/// The calling thread's dense trace thread id — the same id every
/// [`TraceEvent`] recorded by this thread carries. Registering a ring
/// on first use makes the id stable for the thread's lifetime, so the
/// causal stamp sites can write it into shared (uncounted) cells for a
/// helped thread to read back. Returns [`NO_TID`] without the `trace`
/// feature (stamps then mark the edge unattributable, and readers skip
/// the probe).
#[must_use]
pub fn thread_id() -> u32 {
    #[cfg(feature = "trace")]
    {
        imp::thread_id()
    }
    #[cfg(not(feature = "trace"))]
    {
        NO_TID
    }
}

/// Runtime master switch for recording (default on). Turning it off
/// leaves probe sites at one relaxed atomic load each — useful for
/// measuring instrumentation overhead within a single traced build.
/// No-op without the `trace` feature.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "trace")]
    imp::set_enabled(on);
    #[cfg(not(feature = "trace"))]
    let _ = on;
}

/// Whether probes currently record: the `trace` feature is compiled in
/// *and* the runtime switch is on. Bench binaries use this to decide
/// whether trace artifacts are worth emitting.
#[must_use]
pub fn enabled() -> bool {
    #[cfg(feature = "trace")]
    {
        imp::enabled()
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Merges every thread's ring into one [`Trace`] ordered by logical
/// timestamp. Cheap relative to tracing itself; collect at quiescent
/// points for exact results (see the module docs). Empty without the
/// `trace` feature.
#[must_use]
pub fn collect() -> Trace {
    #[cfg(feature = "trace")]
    {
        imp::collect()
    }
    #[cfg(not(feature = "trace"))]
    {
        Trace::default()
    }
}

/// Events overwritten by ring wrap-around so far, summed over every
/// thread's ring (relative to the last [`clear`]). This is the live
/// counterpart of [`Trace::dropped`]: a metrics registry can poll it as
/// a gauge to surface trace loss without collecting. Zero without the
/// `trace` feature.
#[must_use]
pub fn dropped() -> u64 {
    #[cfg(feature = "trace")]
    {
        imp::dropped()
    }
    #[cfg(not(feature = "trace"))]
    {
        0
    }
}

/// Logically discards everything recorded so far (subsequent
/// [`collect`] calls return only newer events, and the dropped counter
/// restarts). No-op without the `trace` feature.
pub fn clear() {
    #[cfg(feature = "trace")]
    imp::clear();
}

/// Drains every ring since the previous harvest (or [`clear`]) and
/// advances the consumed watermark, so events a harvester has already
/// read are **not** counted as drops when the ring later overwrites
/// them. A background thread calling this faster than any ring wraps
/// makes long traces lossless: [`dropped`] stays 0 and the union of
/// all [`Harvested::events`] is the complete event stream.
///
/// Harvest passes are serialized against each other and against
/// [`collect`] / [`clear`] (single consumer per ring). A [`collect`]
/// *after* a harvest returns only the not-yet-harvested tail — the
/// harvester owns everything before its watermark. Empty without the
/// `trace` feature.
#[must_use]
pub fn harvest() -> Harvested {
    #[cfg(feature = "trace")]
    {
        imp::harvest()
    }
    #[cfg(not(feature = "trace"))]
    {
        Harvested::default()
    }
}

/// Events ever recorded into any thread's ring: a monotonic counter
/// unaffected by [`clear`] or [`harvest`]. The losslessness check is
/// `aggregated == emitted() delta` over a harvested window. Zero
/// without the `trace` feature.
#[must_use]
pub fn emitted() -> u64 {
    #[cfg(feature = "trace")]
    {
        imp::emitted()
    }
    #[cfg(not(feature = "trace"))]
    {
        0
    }
}

/// Arms causal-profiling delay injection: every probe event whose
/// [`Event::site_class`] bit is set in `mask` busy-waits `delay_ns`
/// nanoseconds before recording. A causal profiler delays every class
/// *except* the one under test and compares throughput against an
/// all-classes-delayed baseline (coz-style virtual speedup). Passing
/// `mask == 0` or `delay_ns == 0` disarms. Costs one relaxed atomic
/// load per probe event while disarmed; no-op without the `trace`
/// feature.
pub fn set_causal_delays(mask: u32, delay_ns: u32) {
    #[cfg(feature = "trace")]
    imp::set_causal_delays(mask, delay_ns);
    #[cfg(not(feature = "trace"))]
    let _ = (mask, delay_ns);
}

/// Disarms causal-profiling delay injection.
pub fn clear_causal_delays() {
    set_causal_delays(0, 0);
}

/// The armed `(mask, delay_ns)` pair, or `None` when injection is
/// disarmed (always `None` without the `trace` feature).
#[must_use]
pub fn causal_delays() -> Option<(u32, u32)> {
    #[cfg(feature = "trace")]
    {
        imp::causal_delays()
    }
    #[cfg(not(feature = "trace"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_labels_and_payloads() {
        assert_eq!(Event::FastSuccess.label(), "fast-success");
        assert_eq!(Event::CasFail("stack::top").label(), "cas-fail@stack::top");
        assert_eq!(Event::CasFail("stack::top").site(), Some("stack::top"));
        assert_eq!(Event::LockAcquire(3).proc(), Some(3));
        assert_eq!(Event::LockAcquire(3).to_string(), "lock-acquire(3)");
        assert_eq!(
            Event::FailPoint("cs::locked").to_string(),
            "fail-point@cs::locked"
        );
        assert_eq!(Event::CombineBatch(5).value(), Some(5));
        assert_eq!(Event::RecordHandoff(120).value(), Some(120));
        assert_eq!(Event::CombineBatch(5).label(), "combine-batch");
        assert_eq!(Event::RecordPost.value(), None);
        assert_eq!(Event::ElimAttempt.label(), "elim-attempt");
        assert_eq!(Event::EliminatedComplete.label(), "eliminated-complete");
        assert_eq!(Event::SuspectRaised(2).proc(), Some(2));
        assert_eq!(Event::SuspectRaised(2).to_string(), "suspect-raised(2)");
        assert_eq!(Event::RecordReclaimed(1).label(), "record-reclaimed");
        assert_eq!(Event::LockSucceeded(0).proc(), Some(0));
        assert_eq!(Event::LockSucceeded(0).to_string(), "lock-succeeded(0)");
    }

    #[test]
    fn causal_events_expose_their_edges() {
        assert_eq!(Event::HelpedByCombiner(3).label(), "helped-by-combiner");
        assert_eq!(Event::HelpedByPartner(1).name(), "helped-by-partner");
        assert_eq!(Event::HandoffFrom(2).name(), "handoff-from");
        assert_eq!(Event::CustodyFrom(0).name(), "custody-from");
        // The helper tid rides in the measurement payload (so it
        // survives the TSV `value` column round trip).
        assert_eq!(Event::HelpedByCombiner(3).value(), Some(3));
        assert_eq!(Event::HandoffFrom(2).value(), Some(2));
        assert_eq!(Event::HelpedByCombiner(3).proc(), None);
        assert_eq!(
            Event::HelpedByCombiner(3).help(),
            Some((HelpKind::Combiner, 3))
        );
        assert_eq!(
            Event::HelpedByPartner(1).help(),
            Some((HelpKind::Partner, 1))
        );
        assert_eq!(Event::HandoffFrom(2).help(), Some((HelpKind::Handoff, 2)));
        assert_eq!(Event::CustodyFrom(0).help(), Some((HelpKind::Custody, 0)));
        // NO_TID marks an unattributable edge: kept as an annotation,
        // excluded from the graph.
        assert_eq!(Event::HandoffFrom(NO_TID).help(), None);
        assert_eq!(Event::FastSuccess.help(), None);
        for kind in HelpKind::ALL {
            assert!(!kind.name().is_empty());
        }
        assert_eq!(HelpKind::Combiner.to_string(), "combiner");
    }

    #[test]
    fn trace_counts_group_and_sort() {
        let mk = |event, seq| TraceEvent {
            thread: 0,
            seq,
            wall_ns: seq,
            event,
        };
        let trace = Trace {
            events: vec![
                mk(Event::FastSuccess, 0),
                mk(Event::FastSuccess, 1),
                mk(Event::CasFail("top"), 2),
            ],
            dropped: 0,
            truncated: Vec::new(),
        };
        assert_eq!(
            trace.counts(),
            vec![
                ("fast-success".to_owned(), 2),
                ("cas-fail@top".to_owned(), 1)
            ]
        );
        assert_eq!(trace.thread_count(), 1);
        assert!(!trace.is_empty());
    }

    #[test]
    fn site_classes_partition_the_taxonomy() {
        use SiteClass::*;
        assert_eq!(Event::FastAttempt.site_class(), Some(CasRetry));
        assert_eq!(Event::FastAbort.site_class(), Some(CasRetry));
        assert_eq!(Event::CasFail("top").site_class(), Some(CasRetry));
        assert_eq!(Event::HelpingWrite("top").site_class(), Some(CasRetry));
        assert_eq!(Event::FlagRaise(0).site_class(), Some(FlagWait));
        assert_eq!(Event::LockAcquire(0).site_class(), Some(FlagWait));
        assert_eq!(Event::LockRelease(0).site_class(), Some(LockHandoff));
        assert_eq!(Event::TurnAdvance(0).site_class(), Some(LockHandoff));
        assert_eq!(Event::LockHandoff("mcs").site_class(), Some(LockHandoff));
        assert_eq!(Event::LockSucceeded(0).site_class(), Some(LockHandoff));
        assert_eq!(Event::RecordPost.site_class(), Some(Combining));
        assert_eq!(Event::CombineBatch(3).site_class(), Some(Combining));
        // Completions, chaos and recovery markers are never delayed.
        assert_eq!(Event::FastSuccess.site_class(), None);
        assert_eq!(Event::LockedComplete.site_class(), None);
        assert_eq!(Event::FailPoint("x").site_class(), None);
        assert_eq!(Event::SuspectRaised(0).site_class(), None);
        // Causal annotations must never be delayed either: they sit
        // inside completion windows a delay would skew.
        assert_eq!(Event::HelpedByCombiner(0).site_class(), None);
        assert_eq!(Event::HelpedByPartner(0).site_class(), None);
        assert_eq!(Event::HandoffFrom(0).site_class(), None);
        assert_eq!(Event::CustodyFrom(0).site_class(), None);
        for class in SiteClass::ALL {
            assert_eq!(SiteClass::parse(class.name()), Some(class));
        }
        assert_eq!(SiteClass::parse("nope"), None);
        assert_eq!(SiteClass::mask_all(), 0b1111);
        assert_eq!(SiteClass::CasRetry.to_string(), "cas-retry");
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_build_records_nothing() {
        crate::probe!(Event::FastSuccess);
        assert!(collect().is_empty());
        assert_eq!(last_path(), None);
        assert!(!enabled());
        assert_eq!(thread_id(), NO_TID, "untraced builds have no thread id");
        assert!(harvest().events.is_empty());
        assert_eq!(emitted(), 0);
        set_causal_delays(SiteClass::mask_all(), 1_000);
        assert_eq!(causal_delays(), None);
        clear_causal_delays();
    }

    #[cfg(feature = "trace")]
    mod live {
        use super::super::*;
        use std::sync::Mutex;

        /// The rings are process-global; live tests serialize.
        static SERIAL: Mutex<()> = Mutex::new(());

        fn serial() -> std::sync::MutexGuard<'static, ()> {
            SERIAL.lock().unwrap_or_else(|e| e.into_inner())
        }

        #[test]
        fn record_and_collect_round_trip() {
            let _serial = serial();
            clear();
            record(Event::FastAttempt);
            record(Event::CasFail("probe-test::site"));
            record(Event::FastSuccess);
            let trace = collect();
            let ours: Vec<&TraceEvent> = trace
                .events
                .iter()
                .filter(|e| {
                    matches!(
                        e.event,
                        Event::FastAttempt
                            | Event::CasFail("probe-test::site")
                            | Event::FastSuccess
                    )
                })
                .collect();
            assert!(ours.len() >= 3, "got {} events", ours.len());
            // Logical timestamps are strictly increasing in the merge.
            assert!(trace.events.windows(2).all(|w| w[0].seq < w[1].seq));
            clear();
        }

        #[test]
        fn thread_id_is_stable_and_matches_recorded_events() {
            let _serial = serial();
            clear();
            let me = thread_id();
            assert_eq!(me, thread_id(), "id is stable across calls");
            assert_ne!(me, NO_TID);
            record(Event::HandoffFrom(me));
            let trace = collect();
            let ev = trace
                .events
                .iter()
                .find(|e| e.event == Event::HandoffFrom(me))
                .expect("causal event round-trips through the ring");
            assert_eq!(ev.thread, me, "thread_id matches the ring's id");
            let other = std::thread::spawn(thread_id).join().unwrap();
            assert_ne!(other, me, "each thread gets a distinct id");
            clear();
        }

        #[test]
        fn last_path_tracks_completions() {
            let _serial = serial();
            record(Event::FastSuccess);
            assert_eq!(last_path(), Some(Path::Fast));
            record(Event::EliminatedComplete);
            assert_eq!(last_path(), Some(Path::Eliminated));
            record(Event::LockedComplete);
            assert_eq!(last_path(), Some(Path::Locked));
            record(Event::SlowTimeout);
            assert_eq!(last_path(), None);
            clear();
        }

        #[test]
        fn wraparound_reports_dropped() {
            let _serial = serial();
            clear();
            let n = super::super::imp::RING_CAPACITY as u64 + 100;
            for _ in 0..n {
                record(Event::FastAttempt);
            }
            let trace = collect();
            assert!(trace.dropped >= 100, "dropped {}", trace.dropped);
            assert_eq!(
                dropped(),
                trace.dropped,
                "live drop gauge matches the collected count"
            );
            clear();
            assert_eq!(collect().dropped, 0, "clear restarts the drop counter");
            assert_eq!(dropped(), 0);
        }

        #[test]
        fn wraparound_marks_truncated_thread_without_reordering() {
            let _serial = serial();
            clear();
            // Overflow this thread's ring so its oldest events are
            // overwritten; a second thread stays under capacity.
            let n = super::super::imp::RING_CAPACITY as u64 + 64;
            for _ in 0..n {
                record(Event::FastAttempt);
            }
            std::thread::spawn(|| record(Event::FastSuccess))
                .join()
                .unwrap();
            let trace = collect();
            // The wrapped thread must appear as a truncation marker with
            // its overwritten count — never a silent gap.
            let wrapped = trace
                .events
                .iter()
                .find(|e| e.event == Event::FastAttempt)
                .expect("surviving events present")
                .thread;
            let marker = trace.truncated.iter().find(|(t, _)| *t == wrapped);
            assert!(marker.is_some(), "wrapped thread gets a truncation marker");
            assert!(marker.unwrap().1 >= 64, "marker carries the drop count");
            assert_eq!(
                trace.truncated.iter().map(|(_, d)| d).sum::<u64>(),
                trace.dropped,
                "per-thread markers sum to the total"
            );
            // The other thread lost nothing and must not be marked.
            let other = trace
                .events
                .iter()
                .find(|e| e.event == Event::FastSuccess)
                .expect("second thread's event survives")
                .thread;
            assert!(trace.truncated.iter().all(|(t, _)| *t != other));
            // Survivors stay in logical order: truncation never reorders.
            assert!(trace.events.windows(2).all(|w| w[0].seq < w[1].seq));
            clear();
        }

        #[test]
        fn harvest_is_lossless_across_many_wraps() {
            let _serial = serial();
            clear();
            let emitted_before = emitted();
            let chunk = super::super::imp::RING_CAPACITY as u64 / 2;
            let rounds = 24; // 12x the ring capacity in total
            let mut harvested = 0u64;
            let mut lost = 0u64;
            for _ in 0..rounds {
                for _ in 0..chunk {
                    record(Event::FastAttempt);
                }
                let batch = harvest();
                harvested += batch.events.len() as u64;
                lost += batch.lost;
            }
            let total = emitted() - emitted_before;
            assert_eq!(total, chunk * rounds);
            assert_eq!(lost, 0, "a keeping-pace harvester loses nothing");
            assert_eq!(harvested, total, "every emitted event was drained");
            assert_eq!(dropped(), 0, "harvested overwrites are not drops");
            assert_eq!(collect().dropped, 0);
            clear();
        }

        #[test]
        fn unharvested_overflow_still_counts_as_lost() {
            let _serial = serial();
            clear();
            let n = super::super::imp::RING_CAPACITY as u64 + 200;
            for _ in 0..n {
                record(Event::FastAttempt);
            }
            let batch = harvest();
            assert!(batch.lost >= 200, "lost {}", batch.lost);
            assert_eq!(batch.events.len() as u64 + batch.lost, n);
            // The harvest consumed everything: the gauge restarts.
            assert_eq!(dropped(), 0);
            clear();
        }

        #[test]
        fn collect_after_harvest_returns_only_the_tail() {
            let _serial = serial();
            clear();
            record(Event::ContentionRaise);
            let batch = harvest();
            assert!(batch
                .events
                .iter()
                .any(|e| e.event == Event::ContentionRaise));
            record(Event::ContentionClear);
            let trace = collect();
            assert!(
                !trace
                    .events
                    .iter()
                    .any(|e| e.event == Event::ContentionRaise),
                "harvested events are owned by the harvester"
            );
            assert!(trace
                .events
                .iter()
                .any(|e| e.event == Event::ContentionClear));
            clear();
        }

        #[test]
        fn dropped_is_the_sum_of_per_thread_markers_across_clear() {
            let _serial = serial();
            clear();
            // Wrap this thread's ring, then add a second non-wrapped
            // ring: the global gauge must equal the marker sum.
            let n = super::super::imp::RING_CAPACITY as u64 + 500;
            for _ in 0..n {
                record(Event::FastAttempt);
            }
            std::thread::spawn(|| record(Event::FastSuccess))
                .join()
                .unwrap();
            let trace = collect();
            let marker_sum: u64 = trace.truncated.iter().map(|(_, d)| d).sum();
            assert_eq!(trace.dropped, marker_sum);
            assert_eq!(dropped(), marker_sum, "live gauge agrees with markers");
            // clear() resets both accountings together — they cannot
            // disagree afterwards because both derive from the floor.
            clear();
            assert_eq!(dropped(), 0);
            let trace = collect();
            assert_eq!(trace.dropped, 0);
            assert!(trace.truncated.is_empty());
            record(Event::FastAttempt);
            let trace = collect();
            assert_eq!(trace.dropped, 0);
            assert!(trace.truncated.is_empty());
            clear();
        }

        #[test]
        fn causal_delays_slow_only_masked_classes() {
            let _serial = serial();
            clear();
            clear_causal_delays();
            assert_eq!(causal_delays(), None);
            set_causal_delays(SiteClass::FlagWait.bit(), 200_000);
            assert_eq!(causal_delays(), Some((SiteClass::FlagWait.bit(), 200_000)));
            let t = std::time::Instant::now();
            record(Event::FlagRaise(0)); // flag-wait: delayed
            let delayed = t.elapsed();
            let t = std::time::Instant::now();
            record(Event::FastSuccess); // classless: never delayed
            let undelayed = t.elapsed();
            clear_causal_delays();
            assert_eq!(causal_delays(), None);
            assert!(
                delayed.as_nanos() >= 200_000,
                "masked class was delayed ({delayed:?})"
            );
            assert!(
                undelayed < delayed,
                "unmasked record ({undelayed:?}) is faster than delayed ({delayed:?})"
            );
            let t = std::time::Instant::now();
            record(Event::FlagRaise(0));
            assert!(t.elapsed().as_nanos() < 200_000, "disarm removes the delay");
            clear();
        }

        #[test]
        fn runtime_switch_pauses_recording() {
            let _serial = serial();
            clear();
            set_enabled(false);
            assert!(!enabled());
            record(Event::ContentionRaise);
            set_enabled(true);
            let raised = collect()
                .events
                .iter()
                .filter(|e| e.event == Event::ContentionRaise)
                .count();
            assert_eq!(raised, 0, "disabled recording must drop events");
            clear();
        }

        #[test]
        fn threads_get_distinct_ids() {
            let _serial = serial();
            clear();
            record(Event::TurnAdvance(1));
            std::thread::spawn(|| record(Event::TurnAdvance(2)))
                .join()
                .unwrap();
            let trace = collect();
            let turn_threads: Vec<u32> = trace
                .events
                .iter()
                .filter(|e| matches!(e.event, Event::TurnAdvance(_)))
                .map(|e| e.thread)
                .collect();
            assert!(turn_threads.len() >= 2);
            let mut distinct = turn_threads.clone();
            distinct.sort_unstable();
            distinct.dedup();
            assert!(distinct.len() >= 2, "each thread gets its own ring");
            clear();
        }
    }
}
