//! Log-bucketed latency histograms (HDR-style), std-only.
//!
//! A [`LogHistogram`] keeps one atomic counter per *log-linear* bucket:
//! values below 16 ns get exact buckets; above that, each power of two
//! is split into 16 linear sub-buckets, bounding the relative error of
//! any reported quantile by 1/16 (6.25%) — the same precision/footprint
//! trade HdrHistogram makes at 4 significant bits. The whole structure
//! is 976 `AtomicU64`s (≈7.6 KiB), needs no allocation after
//! construction, and is safe to record into from any number of threads
//! concurrently (relaxed atomics; a snapshot taken mid-recording is a
//! consistent-enough view for percentile reporting, see
//! [`LogHistogram::snapshot`]).
//!
//! Unlike the [`probe`](crate::probe) machinery this module is **always
//! compiled** — it is plain data, costs nothing unless used, and the
//! bench harness needs it in un-traced builds to report per-path
//! latency tables.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Exact buckets cover `0..LINEAR_LIMIT`; log-linear buckets above.
const LINEAR_LIMIT: u64 = 16;
/// Sub-buckets per power of two (4 significant bits).
const SUB_BUCKETS: usize = 16;
/// 16 exact + 16 per msb for msb in 4..=63.
const NUM_BUCKETS: usize = LINEAR_LIMIT as usize + (64 - 4) * SUB_BUCKETS;

/// Maps a value to its bucket index. Total order preserving.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 4 here
    let sub = ((v >> (msb - 4)) & 0xF) as usize;
    (msb - 4) * SUB_BUCKETS + LINEAR_LIMIT as usize + sub
}

/// The largest value a bucket can hold — the representative reported
/// for quantiles falling in it (conservative: never under-reports).
fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < LINEAR_LIMIT as usize {
        return idx as u64;
    }
    let rel = idx - LINEAR_LIMIT as usize;
    let msb = rel / SUB_BUCKETS + 4;
    let sub = (rel % SUB_BUCKETS) as u64;
    // Bucket covers [base + sub*width, base + (sub+1)*width). The top
    // bucket's exclusive end is 2^64, which does not fit in a u64 —
    // saturate so its representative is u64::MAX rather than a wrap to
    // zero (which would report the largest samples as the smallest).
    let base = 1u64 << msb;
    let width = 1u64 << (msb - 4);
    match base.checked_add((sub + 1) * width) {
        Some(end) => end - 1,
        None => u64::MAX,
    }
}

/// A concurrent log-bucketed histogram of `u64` samples (nanoseconds
/// by convention — [`LogHistogram::record`] takes a [`Duration`]).
pub struct LogHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram. Allocates its bucket array once.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample, in nanoseconds. Wait-free: three relaxed
    /// atomic RMWs plus a bounded max-update loop.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records one sample as a [`Duration`] (saturating at `u64` ns).
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count.load(Ordering::Relaxed) == 0
    }

    /// A point-in-time percentile summary.
    ///
    /// Taken with relaxed loads, so a snapshot racing concurrent
    /// [`record_ns`](Self::record_ns) calls may miss in-flight samples
    /// or observe a sample in the buckets before it is reflected in
    /// `count` (and vice versa); quantiles are computed against the
    /// bucket mass actually seen, so the result is always a valid
    /// summary of *some* recent prefix of samples. Quantile values are
    /// bucket upper bounds: within 6.25% above the true sample.
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            // Rank of the q-quantile sample, 1-based, clamped.
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (idx, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper_bound(idx);
                }
            }
            bucket_upper_bound(NUM_BUCKETS - 1)
        };
        HistSnapshot {
            count: total,
            mean_ns: self
                .sum
                .load(Ordering::Relaxed)
                .checked_div(total)
                .unwrap_or(0),
            p50_ns: quantile(0.50),
            p90_ns: quantile(0.90),
            p99_ns: quantile(0.99),
            max_ns: self.max.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero. Not atomic with respect to
    /// concurrent recorders; reset between measurement cells.
    pub fn clear(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time summary of a [`LogHistogram`], in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean (exact: kept as a running sum, not bucketed).
    pub mean_ns: u64,
    /// Median (bucket upper bound; ≤6.25% above the true sample).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Largest sample (exact).
    pub max_ns: u64,
}

impl HistSnapshot {
    /// Formats nanoseconds with an adaptive unit (`ns`/`µs`/`ms`/`s`),
    /// matching the bench harness's table style.
    #[must_use]
    pub fn fmt_ns(ns: u64) -> String {
        if ns < 1_000 {
            format!("{ns}ns")
        } else if ns < 1_000_000 {
            format!("{:.2}µs", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            format!("{:.2}ms", ns as f64 / 1e6)
        } else {
            format!("{:.2}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in 0..16 {
            h.record_ns(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 16);
        assert_eq!(s.max_ns, 15);
        assert_eq!(s.p50_ns, 7, "8th of 16 samples is value 7, exact bucket");
    }

    #[test]
    fn bucket_index_is_monotonic_and_in_range() {
        let mut values: Vec<u64> = Vec::new();
        for shift in 0..64 {
            for off in [0u64, 1, 3] {
                values.push((1u64 << shift).saturating_add(off));
            }
        }
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "v={v} idx={idx}");
            assert!(idx >= prev, "index must not decrease: v={v}");
            prev = idx;
            assert!(
                bucket_upper_bound(idx) >= v,
                "upper bound {} < value {v}",
                bucket_upper_bound(idx)
            );
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let h = LogHistogram::new();
        // All samples identical: every quantile must land within 1/16.
        for _ in 0..1000 {
            h.record_ns(1_000_000);
        }
        let s = h.snapshot();
        for q in [s.p50_ns, s.p90_ns, s.p99_ns] {
            assert!(q >= 1_000_000, "upper-bound representative");
            assert!(
                q <= 1_000_000 + 1_000_000 / 16 + 1,
                "q={q} exceeds 1/16 relative error"
            );
        }
        assert_eq!(s.max_ns, 1_000_000, "max is exact");
        assert_eq!(s.mean_ns, 1_000_000, "mean is exact");
    }

    #[test]
    fn top_bucket_saturates_instead_of_overflowing() {
        // The last bucket's exclusive end is 2^64; its representative
        // must saturate to u64::MAX, not wrap (a wrap would make the
        // largest samples report as the smallest).
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(NUM_BUCKETS - 1), u64::MAX);

        let h = LogHistogram::new();
        h.record_ns(u64::MAX);
        h.record_ns(u64::MAX - 1);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max_ns, u64::MAX, "max is exact");
        for q in [s.p50_ns, s.p90_ns, s.p99_ns] {
            assert_eq!(q, u64::MAX, "top-bucket quantile saturates");
        }
        // Every bucket's representative must cover the bucket.
        for idx in 0..NUM_BUCKETS - 1 {
            assert!(bucket_upper_bound(idx) < bucket_upper_bound(idx + 1));
        }
    }

    #[test]
    fn quantile_error_bounded_on_log_uniform_samples() {
        // Property test: across log-uniformly distributed samples (the
        // regime latency data lives in), every reported quantile must
        // sit in [true, true * (1 + 1/16)] — the documented ≤6.25%
        // relative error of 16 sub-buckets per power of two.
        let mut rng = cso_memory::backoff::XorShift64::new(0x5eed_cafe);
        for round in 0..8u64 {
            let h = LogHistogram::new();
            let mut samples: Vec<u64> = Vec::with_capacity(4096);
            for _ in 0..4096 {
                // Pick an exponent 4..=47, then a uniform mantissa.
                let e = 4 + (rng.next_u64() % 44) as u32;
                let v = (1u64 << e) | (rng.next_u64() & ((1u64 << e) - 1));
                samples.push(v);
                h.record_ns(v);
            }
            samples.sort_unstable();
            let s = h.snapshot();
            for (q, got) in [(0.50, s.p50_ns), (0.90, s.p90_ns), (0.99, s.p99_ns)] {
                let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
                let truth = samples[rank - 1];
                assert!(got >= truth, "round {round} q{q}: {got} < true {truth}");
                assert!(
                    got <= truth + truth / 16 + 1,
                    "round {round} q{q}: {got} exceeds 6.25% above true {truth}"
                );
            }
            assert_eq!(s.max_ns, *samples.last().unwrap(), "max is exact");
        }
    }

    #[test]
    fn percentiles_order_correctly() {
        let h = LogHistogram::new();
        for i in 1..=10_000u64 {
            h.record_ns(i * 100);
        }
        let s = h.snapshot();
        assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns);
        // Quantiles are bucket *upper bounds*, so p99 may exceed the
        // exact max — but never by more than the 1/16 bucket width.
        assert!(s.p99_ns <= s.max_ns + s.max_ns / 16 + 1);
        // p50 of uniform 100..=1_000_000 is ~500_000; allow bucket width.
        assert!((450_000..=600_000).contains(&s.p50_ns), "p50={}", s.p50_ns);
        assert!(s.p99_ns >= 950_000, "p99={}", s.p99_ns);
    }

    #[test]
    fn concurrent_recording_loses_nothing_at_quiescence() {
        let h = std::sync::Arc::new(LogHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record_ns(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 4000);
    }

    #[test]
    fn clear_resets() {
        let h = LogHistogram::new();
        h.record_ns(42);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(
            h.snapshot(),
            HistSnapshot {
                count: 0,
                mean_ns: 0,
                p50_ns: 0,
                p90_ns: 0,
                p99_ns: 0,
                max_ns: 0
            }
        );
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(HistSnapshot::fmt_ns(999), "999ns");
        assert_eq!(HistSnapshot::fmt_ns(1_500), "1.50µs");
        assert_eq!(HistSnapshot::fmt_ns(2_500_000), "2.50ms");
        assert_eq!(HistSnapshot::fmt_ns(3_000_000_000), "3.00s");
    }
}
