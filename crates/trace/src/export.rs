//! Exporters: Chrome `trace_event` JSON and a plain-text summary.
//!
//! Both render a collected [`Trace`]; neither depends on the `trace`
//! feature (an empty trace exports to an empty-but-valid document).
//! The JSON is hand-rolled — the workspace is deliberately
//! dependency-free — against the published `trace_event` format, so
//! the output opens directly in `chrome://tracing` or
//! <https://ui.perfetto.dev>.

use crate::probe::{Event, Trace};
use std::fmt::Write as _;

/// Minimal JSON string escaping (the only dynamic strings we embed are
/// event names and `&'static str` site labels, but stay correct for
/// arbitrary input).
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// One event rendered as a Chrome trace object (no trailing comma).
fn push_instant(out: &mut String, name: &str, tid: u32, ts_us: f64, args: &[(&str, String)]) {
    out.push_str("{\"name\":\"");
    escape(name, out);
    let _ = write!(
        out,
        "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us:.3}"
    );
    push_args(out, args);
    out.push('}');
}

fn push_complete(
    out: &mut String,
    name: &str,
    tid: u32,
    ts_us: f64,
    dur_us: f64,
    args: &[(&str, String)],
) {
    out.push_str("{\"name\":\"");
    escape(name, out);
    let _ = write!(
        out,
        "\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us:.3},\"dur\":{dur_us:.3}"
    );
    push_args(out, args);
    out.push('}');
}

fn push_args(out: &mut String, args: &[(&str, String)]) {
    if args.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape(k, out);
        out.push_str("\":\"");
        escape(v, out);
        out.push('"');
    }
    out.push('}');
}

fn event_args(event: &Event) -> Vec<(&'static str, String)> {
    let mut args = Vec::new();
    if let Some(site) = event.site() {
        args.push(("site", site.to_owned()));
    }
    if let Some(proc) = event.proc() {
        args.push(("proc", proc.to_string()));
    }
    args
}

/// Renders a [`Trace`] as Chrome `trace_event` JSON (object form:
/// `{"traceEvents":[...],"displayTimeUnit":"ns"}`).
///
/// Every probe event becomes a thread-scoped instant (`ph:"i"`) on its
/// recording thread's track. Additionally, each
/// [`Event::LockAcquire`]/[`Event::LockRelease`] pair observed on the
/// same thread is folded into a complete span (`ph:"X"`) named
/// `lock-held`, so the timeline shows lock-hold durations as bars
/// rather than dots. Timestamps are the recorded wall-clock offsets
/// converted to microseconds (the format's native unit), with the
/// logical sequence number attached as an arg for exact ordering of
/// same-microsecond events.
#[must_use]
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };
    // Open lock-acquires per (thread, proc), folded into spans on release.
    let mut open_locks: Vec<(u32, u32, u64)> = Vec::new();
    for e in &trace.events {
        let ts_us = e.wall_ns as f64 / 1e3;
        let mut args = event_args(&e.event);
        args.push(("seq", e.seq.to_string()));
        sep(&mut out);
        push_instant(&mut out, &e.event.label(), e.thread, ts_us, &args);
        match e.event {
            Event::LockAcquire(p) => open_locks.push((e.thread, p, e.wall_ns)),
            Event::LockRelease(p) => {
                if let Some(i) = open_locks
                    .iter()
                    .rposition(|&(t, pr, _)| t == e.thread && pr == p)
                {
                    let (_, _, start_ns) = open_locks.swap_remove(i);
                    let dur_us = e.wall_ns.saturating_sub(start_ns) as f64 / 1e3;
                    sep(&mut out);
                    push_complete(
                        &mut out,
                        "lock-held",
                        e.thread,
                        start_ns as f64 / 1e3,
                        dur_us,
                        &[("proc", p.to_string())],
                    );
                }
            }
            _ => {}
        }
    }
    if trace.dropped > 0 {
        sep(&mut out);
        push_instant(
            &mut out,
            "ring-dropped",
            0,
            0.0,
            &[("count", trace.dropped.to_string())],
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Renders a [`Trace`] as the `cso-trace-events v1` log: a line-based
/// TSV made for the `cso-analyze` span reconstructor (stable, greppable
/// and parseable without a JSON reader).
///
/// Layout:
///
/// ```text
/// # cso-trace-events v1
/// # dropped <total>
/// # truncated <thread> <count>      (one line per wrapped ring)
/// <seq>\t<thread>\t<wall_ns>\t<name>\t<site>\t<proc>\t<value>
/// ```
///
/// Absent payload columns hold `-`. Rows are in logical-timestamp
/// order (the order [`Trace::events`] already has). The `# truncated`
/// headers let a consumer classify a wrapped thread's leading partial
/// operation as *truncated* instead of *malformed*.
#[must_use]
pub fn event_log(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 + trace.events.len() * 48);
    out.push_str("# cso-trace-events v1\n");
    let _ = writeln!(out, "# dropped {}", trace.dropped);
    for (thread, count) in &trace.truncated {
        let _ = writeln!(out, "# truncated {thread} {count}");
    }
    for e in &trace.events {
        let _ = write!(
            out,
            "{}\t{}\t{}\t{}\t",
            e.seq,
            e.thread,
            e.wall_ns,
            e.event.name()
        );
        match e.event.site() {
            Some(site) => out.push_str(site),
            None => out.push('-'),
        }
        match e.event.proc() {
            Some(p) => {
                let _ = write!(out, "\t{p}");
            }
            None => out.push_str("\t-"),
        }
        match e.event.value() {
            Some(v) => {
                let _ = writeln!(out, "\t{v}");
            }
            None => out.push_str("\t-\n"),
        }
    }
    out
}

/// Renders a [`Trace`] as a plain-text counts table: one row per
/// distinct [`Event::label`] (so CAS fails and fail points break out
/// per site), descending by count, plus thread/drop totals.
#[must_use]
pub fn summary(trace: &Trace) -> String {
    let rows = trace.counts();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace summary: {} events on {} thread(s), {} dropped",
        trace.events.len(),
        trace.thread_count(),
        trace.dropped
    );
    let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(5).max(5);
    let _ = writeln!(out, "  {:<width$}  {:>10}", "event", "count");
    for (label, count) in rows {
        let _ = writeln!(out, "  {label:<width$}  {count:>10}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::TraceEvent;

    /// A compact structural JSON validity check: balanced containers
    /// outside strings, proper string termination, no trailing junk.
    fn assert_valid_json(s: &str) {
        let mut depth: Vec<char> = Vec::new();
        let mut in_string = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' => depth.push('}'),
                '[' => depth.push(']'),
                '}' | ']' => assert_eq!(depth.pop(), Some(c), "mismatched container in {s}"),
                _ => {}
            }
        }
        assert!(!in_string, "unterminated string");
        assert!(depth.is_empty(), "unbalanced containers");
        assert!(s.starts_with('{') && s.ends_with('}'));
        // No adjacent-value syntax errors from comma handling.
        assert!(!s.contains(",,") && !s.contains("[,") && !s.contains(",]"));
    }

    fn ev(thread: u32, seq: u64, wall_ns: u64, event: Event) -> TraceEvent {
        TraceEvent {
            thread,
            seq,
            wall_ns,
            event,
        }
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let json = chrome_trace_json(&Trace::default());
        assert_valid_json(&json);
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn events_render_with_sites_and_lock_spans() {
        let trace = Trace {
            events: vec![
                ev(0, 0, 100, Event::FastAttempt),
                ev(0, 1, 250, Event::CasFail("stack::top")),
                ev(1, 2, 300, Event::LockAcquire(1)),
                ev(1, 3, 2_300, Event::LockRelease(1)),
            ],
            dropped: 2,
            truncated: vec![(0, 2)],
        };
        let json = chrome_trace_json(&trace);
        assert_valid_json(&json);
        assert!(json.contains("\"name\":\"cas-fail@stack::top\""));
        assert!(json.contains("\"site\":\"stack::top\""));
        // 300ns..2300ns lock hold = 2.000µs complete event.
        assert!(json.contains("\"name\":\"lock-held\""), "{json}");
        assert!(json.contains("\"dur\":2.000"), "{json}");
        assert!(json.contains("ring-dropped"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 1);
        assert_eq!(
            json.matches("\"ph\":\"i\"").count(),
            5,
            "4 events + drop marker"
        );
    }

    #[test]
    fn unmatched_release_renders_no_span() {
        let trace = Trace {
            events: vec![ev(0, 0, 10, Event::LockRelease(3))],
            dropped: 0,
            truncated: Vec::new(),
        };
        let json = chrome_trace_json(&trace);
        assert_valid_json(&json);
        assert!(!json.contains("lock-held"));
    }

    #[test]
    fn escape_handles_specials() {
        let mut s = String::new();
        escape("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn event_log_round_trips_columns_and_headers() {
        let trace = Trace {
            events: vec![
                ev(0, 0, 100, Event::FastAttempt),
                ev(0, 1, 250, Event::CasFail("stack::top")),
                ev(1, 2, 300, Event::FlagRaise(1)),
                ev(1, 3, 400, Event::LockAcquire(1)),
                ev(1, 4, 900, Event::CombineBatch(5)),
            ],
            dropped: 3,
            truncated: vec![(1, 3)],
        };
        let log = event_log(&trace);
        let mut lines = log.lines();
        assert_eq!(lines.next(), Some("# cso-trace-events v1"));
        assert_eq!(lines.next(), Some("# dropped 3"));
        assert_eq!(lines.next(), Some("# truncated 1 3"));
        assert_eq!(lines.next(), Some("0\t0\t100\tfast-attempt\t-\t-\t-"));
        assert_eq!(lines.next(), Some("1\t0\t250\tcas-fail\tstack::top\t-\t-"));
        assert_eq!(lines.next(), Some("2\t1\t300\tflag-raise\t-\t1\t-"));
        assert_eq!(lines.next(), Some("3\t1\t400\tlock-acquire\t-\t1\t-"));
        assert_eq!(lines.next(), Some("4\t1\t900\tcombine-batch\t-\t-\t5"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn summary_groups_and_reports_totals() {
        let trace = Trace {
            events: vec![
                ev(0, 0, 0, Event::FastSuccess),
                ev(0, 1, 1, Event::FastSuccess),
                ev(1, 2, 2, Event::FailPoint("cs::locked")),
            ],
            dropped: 7,
            truncated: vec![(0, 3), (1, 4)],
        };
        let text = summary(&trace);
        assert!(text.contains("3 events on 2 thread(s), 7 dropped"));
        assert!(text.contains("fast-success"));
        assert!(text.contains("fail-point@cs::locked"));
        let fast_line = text.lines().find(|l| l.contains("fast-success")).unwrap();
        assert!(fast_line.trim_end().ends_with('2'));
    }
}
