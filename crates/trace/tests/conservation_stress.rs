//! Conservation under saturated, unpaced writers: however hard the
//! rings overflow, every emitted event is either harvested or counted
//! lost — `ingested + lost == emitted` exactly, provided the final
//! drain starts after the writers stop. This is the invariant the
//! `cso-profile` harvester and the scrape-under-load smoke rely on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cso_trace::probe;

#[test]
fn conservation_under_saturated_writers() {
    const WORKERS: usize = 8;
    probe::clear();
    let before = probe::emitted();
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..WORKERS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Acquire) {
                    cso_trace::probe!(cso_trace::Event::FastAttempt);
                    cso_trace::probe!(cso_trace::Event::FastSuccess);
                    n += 2;
                }
                n
            })
        })
        .collect();

    let mut ingested = 0u64;
    let mut lost = 0u64;
    for _ in 0..200 {
        let batch = probe::harvest();
        ingested += batch.events.len() as u64;
        lost += batch.lost;
        std::thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::Release);
    let emitted_by_workers: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    // Final drain after all writers stopped.
    let batch = probe::harvest();
    ingested += batch.events.len() as u64;
    lost += batch.lost;

    let emitted = probe::emitted() - before;
    eprintln!(
        "workers emitted {emitted_by_workers}, ring-emitted {emitted}, \
         ingested {ingested}, lost {lost}, ingested+lost {}",
        ingested + lost
    );
    assert_eq!(
        ingested + lost,
        emitted,
        "conservation: ingested + lost == emitted (delta {})",
        (ingested + lost) as i64 - emitted as i64
    );
    probe::clear();
}
