//! The virtual shared memory.

/// An address in the virtual memory.
pub type Addr = usize;

/// A virtual shared memory of 64-bit atomic registers.
///
/// Exploration is single-threaded, so "atomic" is by construction:
/// the explorer executes one machine step — hence one access — at a
/// time. Snapshots are plain clones.
///
/// ```
/// use cso_explore::mem::Mem;
///
/// let mut mem = Mem::new(vec![0, 7]);
/// assert_eq!(mem.read(1), 7);
/// assert!(mem.cas(1, 7, 9));
/// assert!(!mem.cas(1, 7, 9));
/// assert_eq!(mem.swap(0, 5), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mem {
    words: Vec<u64>,
}

impl Mem {
    /// Creates a memory with the given initial register contents.
    #[must_use]
    pub fn new(words: Vec<u64>) -> Mem {
        Mem { words }
    }

    /// Number of registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the memory has no registers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Atomic read.
    #[must_use]
    pub fn read(&self, addr: Addr) -> u64 {
        self.words[addr]
    }

    /// Atomic write.
    pub fn write(&mut self, addr: Addr, value: u64) {
        self.words[addr] = value;
    }

    /// The paper's `C&S(old, new)` (§2.2).
    pub fn cas(&mut self, addr: Addr, old: u64, new: u64) -> bool {
        if self.words[addr] == old {
            self.words[addr] = new;
            true
        } else {
            false
        }
    }

    /// Atomic swap (returns the previous value).
    pub fn swap(&mut self, addr: Addr, value: u64) -> u64 {
        std::mem::replace(&mut self.words[addr], value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_operations() {
        let mut mem = Mem::new(vec![1, 2, 3]);
        assert_eq!(mem.len(), 3);
        assert!(!mem.is_empty());
        mem.write(0, 10);
        assert_eq!(mem.read(0), 10);
        assert!(mem.cas(1, 2, 20));
        assert_eq!(mem.read(1), 20);
        assert!(!mem.cas(1, 2, 30));
        assert_eq!(mem.swap(2, 30), 3);
        assert_eq!(mem.read(2), 30);
    }

    #[test]
    fn clone_is_a_snapshot() {
        let mut mem = Mem::new(vec![0]);
        let snap = mem.clone();
        mem.write(0, 1);
        assert_eq!(snap.read(0), 0);
        assert_eq!(mem.read(0), 1);
    }
}
