//! Schedule exploration: exhaustive DFS and random sampling.

use cso_lincheck::history::{Event, History};
use cso_memory::backoff::XorShift64;

use crate::machine::{Bot, Step, StepMachine};
use crate::mem::Mem;

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// A single operation taking more steps than this prunes the
    /// schedule (guards the busy-wait loops of the Figure 3 machines;
    /// the loop-free weak operations never come close).
    pub max_steps_per_op: usize,
    /// Stop after visiting this many terminal executions.
    pub max_executions: usize,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            max_steps_per_op: 10_000,
            max_executions: 5_000_000,
        }
    }
}

/// Counters reported by an exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Terminal executions visited.
    pub executions: usize,
    /// Schedules abandoned because an operation exceeded the step
    /// budget.
    pub pruned: usize,
}

/// Step count and outcome of one operation within an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSteps {
    /// The process that ran the operation.
    pub proc: usize,
    /// The operation's index within the process's script.
    pub op_index: usize,
    /// Shared-memory accesses the operation performed.
    pub steps: usize,
    /// Whether the operation returned ⊥.
    pub aborted: bool,
}

/// One complete execution, as handed to the visitor.
#[derive(Debug, Clone)]
pub struct Terminal<Op, Resp> {
    /// The execution's history with aborted (⊥, no-effect) operations
    /// removed — exactly the history linearizability is judged on.
    pub history: History<Op, Resp>,
    /// How many operations aborted.
    pub aborted: usize,
    /// The final memory.
    pub mem: Mem,
    /// Per-operation step counts, in completion order.
    pub op_steps: Vec<OpSteps>,
}

struct OpRec<Op, Resp> {
    proc: usize,
    op_index: usize,
    op: Op,
    invoke_seq: u64,
    result: Option<(Result<Resp, Bot>, u64)>,
    steps: usize,
}

impl<Op: Clone, Resp: Clone> Clone for OpRec<Op, Resp> {
    fn clone(&self) -> Self {
        OpRec {
            proc: self.proc,
            op_index: self.op_index,
            op: self.op.clone(),
            invoke_seq: self.invoke_seq,
            result: self.result.clone(),
            steps: self.steps,
        }
    }
}

struct Config<'s, Op, Resp> {
    mem: Mem,
    /// Per-process: index of the next script op to start, and the
    /// index into `records` of the active operation (if any).
    procs: Vec<(usize, Option<usize>)>,
    records: Vec<OpRec<Op, Resp>>,
    seq: u64,
    scripts: &'s [Vec<Op>],
}

impl<Op: Clone, Resp: Clone> Clone for Config<'_, Op, Resp> {
    fn clone(&self) -> Self {
        Config {
            mem: self.mem.clone(),
            procs: self.procs.clone(),
            records: self.records.clone(),
            seq: self.seq,
            scripts: self.scripts,
        }
    }
}

enum StepOutcome {
    Progress,
    Pruned,
}

impl<'s, Op, Resp> Config<'s, Op, Resp>
where
    Op: Clone,
    Resp: Clone,
{
    fn new<M: StepMachine<Resp> + Clone>(
        mem: Mem,
        scripts: &'s [Vec<Op>],
        factory: &impl Fn(usize, &Op) -> M,
    ) -> (Self, Vec<Option<M>>) {
        let mut config = Config {
            mem,
            procs: scripts.iter().map(|_| (0usize, None)).collect(),
            records: Vec::new(),
            seq: 0,
            scripts,
        };
        let mut machines: Vec<Option<M>> = scripts.iter().map(|_| None).collect();
        for proc in 0..scripts.len() {
            config.activate(proc, factory, &mut machines);
        }
        (config, machines)
    }

    /// Starts the next scripted operation of `proc` (records its
    /// invocation — eager, matching program order).
    fn activate<M: StepMachine<Resp> + Clone>(
        &mut self,
        proc: usize,
        factory: &impl Fn(usize, &Op) -> M,
        machines: &mut [Option<M>],
    ) {
        let (next_op, active) = &mut self.procs[proc];
        debug_assert!(active.is_none());
        if let Some(op) = self.scripts[proc].get(*next_op) {
            machines[proc] = Some(factory(proc, op));
            self.records.push(OpRec {
                proc,
                op_index: *next_op,
                op: op.clone(),
                invoke_seq: self.seq,
                result: None,
                steps: 0,
            });
            self.seq += 1;
            *active = Some(self.records.len() - 1);
            *next_op += 1;
        }
    }

    fn enabled(&self) -> Vec<usize> {
        (0..self.procs.len())
            .filter(|&p| self.procs[p].1.is_some())
            .collect()
    }

    fn step_proc<M: StepMachine<Resp> + Clone>(
        &mut self,
        proc: usize,
        factory: &impl Fn(usize, &Op) -> M,
        machines: &mut [Option<M>],
        max_steps: usize,
    ) -> StepOutcome {
        let rec_idx = self.procs[proc].1.expect("stepping an enabled process");
        let machine = machines[proc]
            .as_mut()
            .expect("active process has a machine");
        let step = machine.step(&mut self.mem);
        self.records[rec_idx].steps += 1;
        match step {
            Step::Continue => {
                if self.records[rec_idx].steps > max_steps {
                    StepOutcome::Pruned
                } else {
                    StepOutcome::Progress
                }
            }
            Step::Done(result) => {
                self.records[rec_idx].result = Some((result, self.seq));
                self.seq += 1;
                self.procs[proc].1 = None;
                machines[proc] = None;
                self.activate(proc, factory, machines);
                StepOutcome::Progress
            }
        }
    }

    fn to_terminal(&self) -> Terminal<Op, Resp> {
        // Order events by sequence number; drop aborted operations
        // (they returned ⊥ with no effect, so the remaining history
        // must still be linearizable — that is precisely the check).
        let mut timeline: Vec<(u64, Event<Op, Resp>)> = Vec::new();
        let mut aborted = 0;
        let mut op_steps = Vec::new();
        for rec in &self.records {
            let Some((result, return_seq)) = &rec.result else {
                continue; // pending (only on pruned paths, not visited)
            };
            match result {
                Ok(resp) => {
                    timeline.push((
                        rec.invoke_seq,
                        Event::Invoke {
                            proc: rec.proc,
                            op: rec.op.clone(),
                        },
                    ));
                    timeline.push((
                        *return_seq,
                        Event::Return {
                            proc: rec.proc,
                            resp: resp.clone(),
                        },
                    ));
                    op_steps.push(OpSteps {
                        proc: rec.proc,
                        op_index: rec.op_index,
                        steps: rec.steps,
                        aborted: false,
                    });
                }
                Err(Bot) => {
                    aborted += 1;
                    op_steps.push(OpSteps {
                        proc: rec.proc,
                        op_index: rec.op_index,
                        steps: rec.steps,
                        aborted: true,
                    });
                }
            }
        }
        timeline.sort_by_key(|(seq, _)| *seq);
        let history = History::from_events(timeline.into_iter().map(|(_, e)| e).collect());
        Terminal {
            history,
            aborted,
            mem: self.mem.clone(),
            op_steps,
        }
    }
}

/// Exhaustively explores **every** schedule of the given scripts,
/// invoking `visit` on each terminal execution.
///
/// Suitable for the loop-free weak operations (Figure 1 and the queue
/// analogue); loop-based machines should use [`explore_random`]. Keep
/// configurations small: the schedule tree grows combinatorially.
pub fn explore_exhaustive<M, Op, Resp>(
    initial_mem: &Mem,
    scripts: &[Vec<Op>],
    factory: impl Fn(usize, &Op) -> M,
    config: &ExploreConfig,
    mut visit: impl FnMut(&Terminal<Op, Resp>),
) -> ExploreStats
where
    M: StepMachine<Resp> + Clone,
    Op: Clone,
    Resp: Clone,
{
    let mut stats = ExploreStats::default();
    let (root, machines) = Config::new(initial_mem.clone(), scripts, &factory);
    dfs(root, machines, &factory, config, &mut stats, &mut visit);
    stats
}

fn dfs<M, Op, Resp>(
    node: Config<'_, Op, Resp>,
    machines: Vec<Option<M>>,
    factory: &impl Fn(usize, &Op) -> M,
    config: &ExploreConfig,
    stats: &mut ExploreStats,
    visit: &mut impl FnMut(&Terminal<Op, Resp>),
) where
    M: StepMachine<Resp> + Clone,
    Op: Clone,
    Resp: Clone,
{
    if stats.executions >= config.max_executions {
        return;
    }
    let enabled = node.enabled();
    if enabled.is_empty() {
        stats.executions += 1;
        visit(&node.to_terminal());
        return;
    }
    for proc in enabled {
        let mut child = node.clone();
        let mut child_machines = machines.clone();
        match child.step_proc(proc, factory, &mut child_machines, config.max_steps_per_op) {
            StepOutcome::Progress => dfs(child, child_machines, factory, config, stats, visit),
            StepOutcome::Pruned => stats.pruned += 1,
        }
    }
}

/// Runs a single execution under an explicit scheduling policy:
/// `choose` receives the enabled process list and picks the next one
/// to step. Returns the terminal execution, or `None` if an operation
/// exceeded the step budget.
///
/// This is the primitive behind [`crate::fair`]'s round-robin runs.
pub fn run_scheduled<M, Op, Resp>(
    initial_mem: &Mem,
    scripts: &[Vec<Op>],
    factory: impl Fn(usize, &Op) -> M,
    config: &ExploreConfig,
    mut choose: impl FnMut(&[usize]) -> usize,
) -> Option<Terminal<Op, Resp>>
where
    M: StepMachine<Resp> + Clone,
    Op: Clone,
    Resp: Clone,
{
    let (mut node, mut machines) = Config::new(initial_mem.clone(), scripts, &factory);
    loop {
        let enabled = node.enabled();
        if enabled.is_empty() {
            return Some(node.to_terminal());
        }
        let pick = choose(&enabled);
        debug_assert!(
            enabled.contains(&pick),
            "scheduler must pick an enabled process"
        );
        match node.step_proc(pick, &factory, &mut machines, config.max_steps_per_op) {
            StepOutcome::Progress => {}
            StepOutcome::Pruned => return None,
        }
    }
}

/// Explores `samples` uniformly random schedules (seeded, hence
/// reproducible), invoking `visit` on each terminal execution.
///
/// This is the mode for the loop-based Figure 3 machines, whose
/// busy-wait loops make the full schedule tree infinite.
pub fn explore_random<M, Op, Resp>(
    initial_mem: &Mem,
    scripts: &[Vec<Op>],
    factory: impl Fn(usize, &Op) -> M,
    config: &ExploreConfig,
    samples: usize,
    seed: u64,
    mut visit: impl FnMut(&Terminal<Op, Resp>),
) -> ExploreStats
where
    M: StepMachine<Resp> + Clone,
    Op: Clone,
    Resp: Clone,
{
    let mut stats = ExploreStats::default();
    let mut rng = XorShift64::new(seed);
    for _ in 0..samples {
        let (mut node, mut machines) = Config::new(initial_mem.clone(), scripts, &factory);
        let outcome = loop {
            let enabled = node.enabled();
            if enabled.is_empty() {
                break StepOutcome::Progress;
            }
            let pick = enabled[rng.next_below(enabled.len() as u64) as usize];
            match node.step_proc(pick, &factory, &mut machines, config.max_steps_per_op) {
                StepOutcome::Progress => {}
                StepOutcome::Pruned => break StepOutcome::Pruned,
            }
        };
        match outcome {
            StepOutcome::Progress => {
                stats.executions += 1;
                visit(&node.to_terminal());
            }
            StepOutcome::Pruned => stats.pruned += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Bot, Step, StepMachine};

    /// Read-then-CAS increment (aborts on interference).
    #[derive(Debug, Clone)]
    struct Incr {
        pc: u8,
        seen: u64,
    }

    fn incr_factory(_proc: usize, _op: &()) -> Incr {
        Incr { pc: 0, seen: 0 }
    }

    impl StepMachine<u64> for Incr {
        fn step(&mut self, mem: &mut Mem) -> Step<u64> {
            match self.pc {
                0 => {
                    self.seen = mem.read(0);
                    self.pc = 1;
                    Step::Continue
                }
                _ => {
                    if mem.cas(0, self.seen, self.seen + 1) {
                        Step::Done(Ok(self.seen + 1))
                    } else {
                        Step::Done(Err(Bot))
                    }
                }
            }
        }
    }

    #[test]
    fn exhaustive_covers_all_interleavings_of_two_two_step_machines() {
        // Two 2-step machines have C(4, 2) = 6 interleavings.
        let scripts = vec![vec![()], vec![()]];
        let mut terminals = 0;
        let stats = explore_exhaustive(
            &Mem::new(vec![0]),
            &scripts,
            incr_factory,
            &ExploreConfig::default(),
            |_| terminals += 1,
        );
        assert_eq!(stats.executions, 6);
        assert_eq!(terminals, 6);
        assert_eq!(stats.pruned, 0);
    }

    #[test]
    fn aborts_appear_only_in_interleaved_schedules() {
        let scripts = vec![vec![()], vec![()]];
        let mut saw_abort = false;
        let mut saw_both_succeed = false;
        explore_exhaustive(
            &Mem::new(vec![0]),
            &scripts,
            incr_factory,
            &ExploreConfig::default(),
            |t: &Terminal<(), u64>| {
                match t.aborted {
                    0 => {
                        saw_both_succeed = true;
                        assert_eq!(t.mem.read(0), 2);
                    }
                    1 => {
                        saw_abort = true;
                        // The aborted op had no effect.
                        assert_eq!(t.mem.read(0), 1);
                    }
                    _ => panic!("at most one of two increments can abort"),
                }
            },
        );
        assert!(saw_abort && saw_both_succeed);
    }

    #[test]
    fn solo_script_has_single_schedule() {
        let scripts = vec![vec![(), ()]];
        let stats = explore_exhaustive(
            &Mem::new(vec![0]),
            &scripts,
            incr_factory,
            &ExploreConfig::default(),
            |t: &Terminal<(), u64>| {
                assert_eq!(t.aborted, 0, "solo machines never abort");
                assert_eq!(t.mem.read(0), 2);
                assert!(t.op_steps.iter().all(|s| s.steps == 2));
                assert_eq!(t.history.operations().len(), 2);
            },
        );
        assert_eq!(stats.executions, 1);
    }

    #[test]
    fn random_explorer_is_reproducible() {
        let scripts = vec![vec![()], vec![()]];
        let mut a = Vec::new();
        let mut b = Vec::new();
        explore_random(
            &Mem::new(vec![0]),
            &scripts,
            incr_factory,
            &ExploreConfig::default(),
            50,
            42,
            |t: &Terminal<(), u64>| a.push(t.aborted),
        );
        explore_random(
            &Mem::new(vec![0]),
            &scripts,
            incr_factory,
            &ExploreConfig::default(),
            50,
            42,
            |t: &Terminal<(), u64>| b.push(t.aborted),
        );
        assert_eq!(a, b);
    }

    /// A machine that never terminates (models a busy-wait loop).
    #[derive(Debug, Clone)]
    struct Spin;

    impl StepMachine<u64> for Spin {
        fn step(&mut self, mem: &mut Mem) -> Step<u64> {
            let _ = mem.read(0);
            Step::Continue
        }
    }

    #[test]
    fn step_budget_prunes_divergent_schedules() {
        let scripts = vec![vec![()]];
        let config = ExploreConfig {
            max_steps_per_op: 10,
            max_executions: 100,
        };
        let stats = explore_exhaustive(
            &Mem::new(vec![0]),
            &scripts,
            |_, _: &()| Spin,
            &config,
            |_: &Terminal<(), u64>| panic!("a spinning machine cannot terminate"),
        );
        assert_eq!(stats.executions, 0);
        assert_eq!(stats.pruned, 1);
    }
}
