//! Fair-scheduler runs: the mechanical shadow of Lemmas 2–3.
//!
//! Starvation-freedom is a liveness property over infinite fair
//! executions, which finite exploration cannot decide outright. What
//! it *can* decide is the bounded form: under a round-robin fair
//! scheduler (every live process steps once per round), every
//! operation of the Figure 3 machines completes within a bounded
//! number of its own steps — for any of the sampled adversarial
//! interleavings of the operations' start times, and for every process
//! identity. A violation of Lemma 2 or Lemma 3 would show up here as
//! an operation spinning past the bound.

use crate::explorer::{run_scheduled, ExploreConfig, Terminal};
use crate::machine::StepMachine;
use crate::mem::Mem;

/// The outcome of a fair run.
#[derive(Debug, Clone)]
pub struct FairReport<Op, Resp> {
    /// The terminal execution (`None` if some operation exceeded the
    /// step budget — a starvation-freedom violation for these
    /// machines).
    pub terminal: Option<Terminal<Op, Resp>>,
    /// The largest number of steps any single operation needed.
    pub max_op_steps: usize,
}

/// Runs the scripts under a strict round-robin scheduler and reports
/// the worst per-operation step count.
///
/// `max_steps_per_op` is the starvation bound: machines that busy-wait
/// (Figure 3) must complete within it under fair scheduling, or the
/// run reports `terminal: None`.
pub fn run_fair<M, Op, Resp>(
    initial_mem: &Mem,
    scripts: &[Vec<Op>],
    factory: impl Fn(usize, &Op) -> M,
    max_steps_per_op: usize,
) -> FairReport<Op, Resp>
where
    M: StepMachine<Resp> + Clone,
    Op: Clone,
    Resp: Clone,
{
    let config = ExploreConfig {
        max_steps_per_op,
        max_executions: 1,
    };
    let mut cursor = 0usize;
    let terminal = run_scheduled(initial_mem, scripts, factory, &config, |enabled| {
        // Strict round-robin over live processes: pick the first
        // enabled process at or after the cursor.
        let pick = *enabled
            .iter()
            .find(|&&p| p >= cursor)
            .unwrap_or_else(|| enabled.first().expect("non-empty"));
        cursor = pick + 1;
        pick
    });
    let max_op_steps = terminal
        .as_ref()
        .map(|t: &Terminal<Op, Resp>| t.op_steps.iter().map(|s| s.steps).max().unwrap_or(0))
        .unwrap_or(usize::MAX);
    FairReport {
        terminal,
        max_op_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::cs_stack::{cs_stack_layout, strong_stack_factory};
    use cso_lincheck::specs::stack::{SpecStackOp, SpecStackResp};

    /// Lemma 2 + Lemma 3, bounded form: with every process
    /// simultaneously pushing through Figure 3 under fair scheduling,
    /// every operation completes within a modest step bound.
    #[test]
    fn all_strong_ops_complete_under_fair_scheduling() {
        for n in [2, 3, 4] {
            let layout = cs_stack_layout(16, n);
            let scripts: Vec<Vec<SpecStackOp>> = (0..n)
                .map(|i| vec![SpecStackOp::Push(i as u32), SpecStackOp::Pop])
                .collect();
            let report: FairReport<SpecStackOp, SpecStackResp> = run_fair(
                &layout.initial_mem(),
                &scripts,
                strong_stack_factory(layout),
                2_000,
            );
            let terminal = report
                .terminal
                .expect("no operation may starve under fairness");
            assert_eq!(terminal.aborted, 0, "strong operations never return ⊥");
            assert_eq!(terminal.history.operations().len(), 2 * n);
            assert!(
                report.max_op_steps <= 500,
                "n={n}: an operation needed {} steps",
                report.max_op_steps
            );
        }
    }

    #[test]
    fn round_robin_is_deterministic() {
        let layout = cs_stack_layout(8, 2);
        let scripts = vec![vec![SpecStackOp::Push(1)], vec![SpecStackOp::Push(2)]];
        let a: FairReport<_, SpecStackResp> = run_fair(
            &layout.initial_mem(),
            &scripts,
            strong_stack_factory(layout),
            1_000,
        );
        let b: FairReport<_, SpecStackResp> = run_fair(
            &layout.initial_mem(),
            &scripts,
            strong_stack_factory(layout),
            1_000,
        );
        assert_eq!(a.max_op_steps, b.max_op_steps);
    }
}
