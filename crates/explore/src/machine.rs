//! Step machines: one shared access per step.

use crate::mem::Mem;

/// The ⊥ marker: the machine's operation aborted with no effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bot;

/// The result of one machine step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step<R> {
    /// The operation needs more steps.
    Continue,
    /// The operation finished: either a definitive response or ⊥.
    Done(Result<R, Bot>),
}

/// A hand-compiled algorithm: a program-counter automaton whose every
/// [`StepMachine::step`] performs **exactly one** shared-memory access
/// (plus any amount of process-local computation, which is free in the
/// model of §2.1).
///
/// `Clone` is required so the explorer can snapshot configurations
/// when branching over schedules.
pub trait StepMachine<R>: Clone {
    /// Executes one shared-memory access.
    fn step(&mut self, mem: &mut Mem) -> Step<R>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-step machine: read a register, then CAS it up by one.
    #[derive(Debug, Clone)]
    struct Incr {
        pc: u8,
        seen: u64,
    }

    impl StepMachine<u64> for Incr {
        fn step(&mut self, mem: &mut Mem) -> Step<u64> {
            match self.pc {
                0 => {
                    self.seen = mem.read(0);
                    self.pc = 1;
                    Step::Continue
                }
                _ => {
                    if mem.cas(0, self.seen, self.seen + 1) {
                        Step::Done(Ok(self.seen + 1))
                    } else {
                        Step::Done(Err(Bot))
                    }
                }
            }
        }
    }

    #[test]
    fn solo_machine_runs_to_completion() {
        let mut mem = Mem::new(vec![0]);
        let mut m = Incr { pc: 0, seen: 0 };
        assert_eq!(m.step(&mut mem), Step::Continue);
        assert_eq!(m.step(&mut mem), Step::Done(Ok(1)));
        assert_eq!(mem.read(0), 1);
    }

    #[test]
    fn interleaved_machine_aborts_without_effect() {
        let mut mem = Mem::new(vec![0]);
        let mut a = Incr { pc: 0, seen: 0 };
        let mut b = Incr { pc: 0, seen: 0 };
        a.step(&mut mem); // a reads 0
        b.step(&mut mem); // b reads 0
        assert_eq!(b.step(&mut mem), Step::Done(Ok(1)));
        assert_eq!(a.step(&mut mem), Step::Done(Err(Bot))); // a's CAS loses
        assert_eq!(mem.read(0), 1, "the aborted machine had no effect");
    }
}
