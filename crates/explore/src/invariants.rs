//! Terminal-state invariants: the memory must agree with the
//! linearization.
//!
//! A linearization witness predicts a final abstract state; the
//! virtual memory, read back through the representation invariant
//! (Figure 1's "the value of `STACK[TOP.index]` is `TOP.value`" lazy
//! rule), must hold exactly that state. Together with per-execution
//! linearizability this checks that aborted operations truly had no
//! effect and that the helping discipline leaves no slot corrupted.

use cso_lincheck::checker::check_linearizable;
use cso_lincheck::history::History;
use cso_lincheck::spec::SeqSpec;
use cso_lincheck::specs::queue::{QueueSpec, SpecQueueOp, SpecQueueResp};
use cso_lincheck::specs::stack::{SpecStackOp, SpecStackResp, StackSpec};
use cso_memory::packed::{HeadWord, SlotWord, TailWord, TopWord};

use crate::algos::queue::QueueLayout;
use crate::algos::stack::StackLayout;
use crate::explorer::Terminal;
use crate::mem::Mem;

/// Reads the abstract stack content (bottom first) out of a quiescent
/// memory, honouring the lazy-write rule: the value at `TOP.index` is
/// `TOP.value`, not necessarily `STACK[TOP.index].val`.
#[must_use]
pub fn abstract_stack(mem: &Mem, layout: &StackLayout) -> Vec<u32> {
    let top = TopWord::unpack(mem.read(layout.top()));
    (1..=top.index)
        .map(|x| {
            if x == top.index {
                top.value
            } else {
                SlotWord::unpack(mem.read(layout.slot(x))).value
            }
        })
        .collect()
}

/// Reads the abstract queue content (front first) out of a quiescent
/// memory, honouring the lazy-write rule at the tail element.
#[must_use]
pub fn abstract_queue(mem: &Mem, layout: &QueueLayout) -> Vec<u32> {
    let head = HeadWord::unpack(mem.read(layout.head()));
    let tail = TailWord::unpack(mem.read(layout.tail()));
    let size = tail.count.wrapping_sub(head.count);
    (1..=size)
        .map(|offset| {
            let element = head.count.wrapping_add(offset);
            if element == tail.count {
                tail.value
            } else {
                SlotWord::unpack(mem.read(layout.slot_of(element))).value
            }
        })
        .collect()
}

/// Replays a linearization witness through a spec, returning the
/// predicted final state.
///
/// # Panics
///
/// Panics if a witnessed response disagrees with the spec (the
/// witness would not be valid — checker bug).
#[must_use]
pub fn replay_witness<S: SeqSpec>(
    spec: &S,
    history: &History<S::Op, S::Resp>,
    witness: &[usize],
) -> S::State {
    let ops = history.operations();
    let mut state = spec.initial();
    for &idx in witness {
        let (next, resp) = spec.apply(&state, &ops[idx].op);
        if let Some((actual, _)) = &ops[idx].returned {
            assert!(
                resp == *actual,
                "witness replay must reproduce observed responses"
            );
        }
        state = next;
    }
    state
}

/// The full per-execution check for stack explorations: the history
/// (aborted ops dropped), *extended with a sequential drain of the
/// observed final memory*, must be linearizable.
///
/// Encoding the final state as trailing sequential pops makes the
/// check exact without privileging one linearization order: the
/// combined history is linearizable **iff** the concurrent part is
/// linearizable *and* some valid linearization leaves the stack in
/// exactly the state the memory holds.
///
/// # Panics
///
/// Panics — with a diagnostic — when the check fails; designed for
/// use as an exploration visitor.
pub fn check_stack_terminal(
    capacity: usize,
    initial: &[u32],
    layout: &StackLayout,
    terminal: &Terminal<SpecStackOp, SpecStackResp>,
) {
    // Prepend the pre-fill as completed pushes so the spec starts
    // from the right state.
    let mut history: History<SpecStackOp, SpecStackResp> = History::new();
    const SETUP: usize = usize::MAX - 1;
    for &v in initial {
        history.invoke(SETUP, SpecStackOp::Push(v));
        history.ret(SETUP, SpecStackResp::Pushed);
    }
    for event in terminal.history.events() {
        match event {
            cso_lincheck::history::Event::Invoke { proc, op } => history.invoke(*proc, *op),
            cso_lincheck::history::Event::Return { proc, resp } => history.ret(*proc, *resp),
        }
    }
    // Append the observed final content as a sequential drain
    // (top first), closed by an Empty.
    let observed = abstract_stack(&terminal.mem, layout);
    for &v in observed.iter().rev() {
        history.invoke(SETUP, SpecStackOp::Pop);
        history.ret(SETUP, SpecStackResp::Popped(v));
    }
    history.invoke(SETUP, SpecStackOp::Pop);
    history.ret(SETUP, SpecStackResp::Empty);

    let spec = StackSpec::new(capacity);
    if !check_linearizable(&spec, &history).is_linearizable() {
        panic!("execution (with final-memory drain) not linearizable:\n{history}");
    }
}

/// The queue analogue of [`check_stack_terminal`].
///
/// # Panics
///
/// Panics — with a diagnostic — when either check fails.
pub fn check_queue_terminal(
    capacity: usize,
    initial: &[u32],
    layout: &QueueLayout,
    terminal: &Terminal<SpecQueueOp, SpecQueueResp>,
) {
    let mut history: History<SpecQueueOp, SpecQueueResp> = History::new();
    const SETUP: usize = usize::MAX - 1;
    for &v in initial {
        history.invoke(SETUP, SpecQueueOp::Enqueue(v));
        history.ret(SETUP, SpecQueueResp::Enqueued);
    }
    for event in terminal.history.events() {
        match event {
            cso_lincheck::history::Event::Invoke { proc, op } => history.invoke(*proc, *op),
            cso_lincheck::history::Event::Return { proc, resp } => history.ret(*proc, *resp),
        }
    }
    // Sequential drain of the observed final content (front first),
    // closed by an Empty.
    let observed = abstract_queue(&terminal.mem, layout);
    for &v in &observed {
        history.invoke(SETUP, SpecQueueOp::Dequeue);
        history.ret(SETUP, SpecQueueResp::Dequeued(v));
    }
    history.invoke(SETUP, SpecQueueOp::Dequeue);
    history.ret(SETUP, SpecQueueResp::Empty);

    let spec = QueueSpec::new(capacity);
    if !check_linearizable(&spec, &history).is_linearizable() {
        panic!("execution (with final-memory drain) not linearizable");
    }
}

/// The sequential specification of the linear-arena HLM deque:
/// state = (left nulls, items left-to-right); right nulls are implied
/// by the arena size.
#[derive(Debug, Clone, Copy)]
pub struct ArenaDequeSpec {
    /// Value capacity (arena = capacity + 2).
    pub capacity: usize,
}

impl cso_lincheck::spec::SeqSpec for ArenaDequeSpec {
    type State = (usize, std::collections::VecDeque<u32>);
    type Op = crate::algos::deque::MDequeOp;
    type Resp = crate::algos::deque::ModelDequeResp;

    fn initial(&self) -> Self::State {
        (
            1 + self.capacity.div_ceil(2),
            std::collections::VecDeque::new(),
        )
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Resp) {
        use crate::algos::deque::{MDequeOp, ModelDequeResp, ModelEnd};
        let arena = self.capacity + 2;
        let (mut left, mut items) = state.clone();
        let right = arena - left - items.len();
        let resp = match op {
            MDequeOp::Push(ModelEnd::Right, v) => {
                if right == 1 {
                    ModelDequeResp::Full
                } else {
                    items.push_back(*v);
                    ModelDequeResp::Pushed
                }
            }
            MDequeOp::Push(ModelEnd::Left, v) => {
                if left == 1 {
                    ModelDequeResp::Full
                } else {
                    left -= 1;
                    items.push_front(*v);
                    ModelDequeResp::Pushed
                }
            }
            MDequeOp::Pop(ModelEnd::Right) => match items.pop_back() {
                Some(v) => ModelDequeResp::Popped(v),
                None => ModelDequeResp::Empty,
            },
            MDequeOp::Pop(ModelEnd::Left) => match items.pop_front() {
                Some(v) => {
                    left += 1;
                    ModelDequeResp::Popped(v)
                }
                None => ModelDequeResp::Empty,
            },
        };
        ((left, items), resp)
    }
}

/// The full per-execution check for deque explorations: the
/// representation invariant holds in the terminal memory, and the
/// history — extended with a sequential drain of the observed final
/// values *and* a Full probe pinning down the final left-null count —
/// is linearizable against [`ArenaDequeSpec`].
///
/// # Panics
///
/// Panics — with a diagnostic — when a check fails.
pub fn check_deque_terminal(
    capacity: usize,
    initial: &[u32],
    layout: &crate::algos::deque::DequeLayout,
    terminal: &Terminal<crate::algos::deque::MDequeOp, crate::algos::deque::ModelDequeResp>,
) {
    use crate::algos::deque::{abstract_deque, MDequeOp, ModelDequeResp, ModelEnd};
    // Representation invariant (panics internally if broken).
    let (left, values, _right) = abstract_deque(&terminal.mem, layout);

    const SETUP: usize = usize::MAX - 1;
    let mut history: History<MDequeOp, ModelDequeResp> = History::new();
    let spec = ArenaDequeSpec { capacity };
    // Pre-fill (built with right pushes, matching the test setup).
    for &v in initial {
        history.invoke(SETUP, MDequeOp::Push(ModelEnd::Right, v));
        history.ret(SETUP, ModelDequeResp::Pushed);
    }
    for event in terminal.history.events() {
        match event {
            cso_lincheck::history::Event::Invoke { proc, op } => history.invoke(*proc, *op),
            cso_lincheck::history::Event::Return { proc, resp } => history.ret(*proc, *resp),
        }
    }
    // Drain the observed values from the left.
    for &v in &values {
        history.invoke(SETUP, MDequeOp::Pop(ModelEnd::Left));
        history.ret(SETUP, ModelDequeResp::Popped(v));
    }
    history.invoke(SETUP, MDequeOp::Pop(ModelEnd::Left));
    history.ret(SETUP, ModelDequeResp::Empty);
    // Pin the final left-null count: after draining from the left,
    // the spec's left block is `left + values.len()`; pushing left
    // that many times less one must succeed, one more must be Full.
    let pushable_left = left + values.len() - 1;
    for _ in 0..pushable_left {
        history.invoke(SETUP, MDequeOp::Push(ModelEnd::Left, 0));
        history.ret(SETUP, ModelDequeResp::Pushed);
    }
    history.invoke(SETUP, MDequeOp::Push(ModelEnd::Left, 0));
    history.ret(SETUP, ModelDequeResp::Full);

    if !check_linearizable(&spec, &history).is_linearizable() {
        panic!("deque execution (with drain + Full probe) not linearizable");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::queue::queue_layout;
    use crate::algos::stack::stack_layout;

    #[test]
    fn abstract_stack_reads_lazy_top() {
        let layout = stack_layout(4);
        let mem = layout.initial_mem_with(&[3, 1, 4]);
        assert_eq!(abstract_stack(&mem, &layout), vec![3, 1, 4]);
        let empty = layout.initial_mem();
        assert!(abstract_stack(&empty, &layout).is_empty());
    }

    #[test]
    fn abstract_queue_reads_lazy_tail() {
        let layout = queue_layout(4);
        let mem = layout.initial_mem_with(&[2, 7]);
        assert_eq!(abstract_queue(&mem, &layout), vec![2, 7]);
        let empty = layout.initial_mem();
        assert!(abstract_queue(&empty, &layout).is_empty());
    }
}
