//! A deterministic model checker for the paper's algorithms.
//!
//! The proofs in §4.3 of Mostefaoui & Raynal (2011) are manual. This
//! crate checks the same properties mechanically — by exhaustion on
//! bounded instances:
//!
//! 1. Every algorithm is hand-compiled into a **step machine**
//!    ([`machine::StepMachine`]): a program-counter automaton whose
//!    every `step` performs *exactly one* shared-memory access against
//!    a virtual memory ([`mem::Mem`]). A schedule — which process
//!    steps next — is then the only source of non-determinism, exactly
//!    the asynchronous model of §2.1.
//! 2. The [`explorer`] enumerates **all** schedules of small
//!    configurations (loop-free weak operations), or samples random
//!    schedules for the loop-based Figure 3 machines, and hands every
//!    terminal execution to a visitor.
//! 3. Visitors check linearizability (via `cso-lincheck`), the
//!    abort-only-under-contention contract, exact solo step counts,
//!    and the final-memory/abstraction agreement ([`invariants`]).
//! 4. [`fair`] runs loop-based machines under a round-robin fair
//!    scheduler and checks bounded completion (the mechanical shadow
//!    of Lemmas 2–3).
//!
//! The machines mirror `cso-stack`/`cso-queue` line by line but live
//! on the virtual memory, so the logic is validated independently of
//! `std::sync::atomic` and of the 16-bit tag packing.
//!
//! # Example: exhaustively check two racing pushes
//!
//! ```
//! use cso_explore::algos::stack::{stack_layout, weak_stack_factory};
//! use cso_explore::explorer::{explore_exhaustive, ExploreConfig};
//! use cso_lincheck::specs::stack::{SpecStackOp, SpecStackResp, StackSpec};
//! use cso_lincheck::checker::check_linearizable;
//!
//! let layout = stack_layout(4);
//! let scripts = vec![vec![SpecStackOp::Push(1)], vec![SpecStackOp::Push(2)]];
//! let stats = explore_exhaustive(
//!     &layout.initial_mem(),
//!     &scripts,
//!     weak_stack_factory(layout),
//!     &ExploreConfig::default(),
//!     |terminal| {
//!         // Every interleaving is linearizable once aborted (⊥,
//!         // no-effect) operations are dropped.
//!         assert!(check_linearizable(&StackSpec::new(4), &terminal.history).is_linearizable());
//!     },
//! );
//! assert!(stats.executions > 1); // genuinely explored many schedules
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod algos;
pub mod explorer;
pub mod fair;
pub mod invariants;
pub mod machine;
pub mod mem;

pub use explorer::{explore_exhaustive, explore_random, ExploreConfig, ExploreStats, Terminal};
pub use machine::{Bot, Step, StepMachine};
pub use mem::Mem;
