//! Step-machine transcriptions of the workspace's algorithms.
//!
//! Each module hand-compiles an algorithm into a
//! [`crate::machine::StepMachine`] over the virtual memory, mirroring
//! the production implementation line by line:
//!
//! * [`stack`] — Figure 1's `weak_push`/`weak_pop` (mirrors
//!   `cso_stack::AbortableStack`);
//! * [`queue`] — the abortable bounded queue (mirrors
//!   `cso_queue::AbortableQueue`);
//! * [`fig3`] — the *generic* Figure 3 protocol machine (`CONTENTION`
//!   register, `FLAG`/`TURN` booster, TAS lock) over any weak machine;
//! * [`cs_stack`] / [`cs_queue`] — Figure 3 bound to the stack and to
//!   the queue (mirror `cso_stack::CsStack` / `cso_queue::CsQueue`);
//! * [`locks`] — lock cycles (TAS, Peterson, the §4.4 booster) with an
//!   in-execution mutual-exclusion detector.

pub mod cs_queue;
pub mod cs_stack;
pub mod deque;
pub mod exchanger;
pub mod fig3;
pub mod locks;
pub mod queue;
pub mod stack;
