//! The abortable bounded queue as step machines.

use cso_lincheck::specs::queue::{SpecQueueOp, SpecQueueResp};
use cso_memory::packed::{HeadWord, SlotWord, TailWord};

use crate::machine::{Bot, Step, StepMachine};
use crate::mem::{Addr, Mem};

const BOTTOM: u32 = 0;

/// Memory layout of one abortable queue instance: `HEAD` at 0, `TAIL`
/// at 1, ring slot `x` at `2 + x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueLayout {
    /// The capacity (a power of two).
    pub capacity: usize,
}

/// Builds the layout for a queue of the given capacity.
#[must_use]
pub fn queue_layout(capacity: usize) -> QueueLayout {
    assert!(
        capacity.is_power_of_two() && capacity <= 1 << 15,
        "capacity must be a power of two ≤ 2^15"
    );
    QueueLayout { capacity }
}

impl QueueLayout {
    /// Address of `HEAD`.
    #[must_use]
    pub fn head(&self) -> Addr {
        0
    }

    /// Address of `TAIL`.
    #[must_use]
    pub fn tail(&self) -> Addr {
        1
    }

    /// Address of the ring slot of element number `element`.
    #[must_use]
    pub fn slot_of(&self, element: u16) -> Addr {
        2 + (usize::from(element) & (self.capacity - 1))
    }

    /// The initial memory of an empty queue.
    #[must_use]
    pub fn initial_mem(&self) -> Mem {
        self.initial_mem_with(&[])
    }

    /// The memory of a quiescent queue already holding `values`
    /// (front first).
    ///
    /// # Panics
    ///
    /// Panics if more values than capacity are supplied.
    #[must_use]
    pub fn initial_mem_with(&self, values: &[u32]) -> Mem {
        assert!(
            values.len() <= self.capacity,
            "more initial values than capacity"
        );
        let mut words = vec![0u64; 2 + self.capacity];
        for x in 0..self.capacity {
            let seq = if x == 0 && values.is_empty() {
                u16::MAX
            } else {
                0
            };
            words[2 + x] = SlotWord { value: BOTTOM, seq }.pack();
        }
        for (i, &v) in values.iter().enumerate() {
            let element = (i + 1) as u16;
            words[self.slot_of(element)] = SlotWord { value: v, seq: 1 }.pack();
        }
        words[self.head()] = HeadWord { count: 0 }.pack();
        let tail = if values.is_empty() {
            TailWord {
                count: 0,
                seq: 0,
                value: BOTTOM,
            }
        } else {
            TailWord {
                count: values.len() as u16,
                seq: 1,
                value: values[values.len() - 1],
            }
        };
        words[self.tail()] = tail.pack();
        Mem::new(words)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    // Enqueue path.
    EnqReadTail,
    EnqHelpRead,
    EnqHelpCas,
    EnqReadHead,
    EnqRevalidateTail,
    EnqReadNextSlot,
    EnqCasTail,
    // Dequeue path.
    DeqReadHead,
    DeqReadTail,
    DeqHelpRead,
    DeqHelpCas,
    DeqRevalidateHead,
    DeqReadSlot,
    DeqCasHead,
}

/// The abortable queue's `weak_enqueue(v)` / `weak_dequeue()` as a
/// six-access machine (see `cso_queue::AbortableQueue` for the
/// production twin and the invariant argument).
#[derive(Debug, Clone)]
pub struct WeakQueueMachine {
    layout: QueueLayout,
    op: SpecQueueOp,
    pc: Pc,
    head: HeadWord,
    tail: TailWord,
    slot_value: u32,
    new_tail: TailWord,
    deq_value: u32,
}

impl WeakQueueMachine {
    /// A machine ready to run `op` against a queue with `layout`.
    #[must_use]
    pub fn new(layout: QueueLayout, op: SpecQueueOp) -> WeakQueueMachine {
        let pc = match op {
            SpecQueueOp::Enqueue(_) => Pc::EnqReadTail,
            SpecQueueOp::Dequeue => Pc::DeqReadHead,
        };
        WeakQueueMachine {
            layout,
            op,
            pc,
            head: HeadWord::default(),
            tail: TailWord::default(),
            slot_value: 0,
            new_tail: TailWord::default(),
            deq_value: 0,
        }
    }

    fn help_old_new(&self) -> (u64, u64) {
        let old = SlotWord {
            value: self.slot_value,
            seq: self.tail.seq.wrapping_sub(1),
        };
        let new = SlotWord {
            value: self.tail.value,
            seq: self.tail.seq,
        };
        (old.pack(), new.pack())
    }
}

impl StepMachine<SpecQueueResp> for WeakQueueMachine {
    fn step(&mut self, mem: &mut Mem) -> Step<SpecQueueResp> {
        match self.pc {
            // ----- enqueue -----
            Pc::EnqReadTail => {
                self.tail = TailWord::unpack(mem.read(self.layout.tail()));
                self.pc = Pc::EnqHelpRead;
                Step::Continue
            }
            Pc::EnqHelpRead => {
                self.slot_value =
                    SlotWord::unpack(mem.read(self.layout.slot_of(self.tail.count))).value;
                self.pc = Pc::EnqHelpCas;
                Step::Continue
            }
            Pc::EnqHelpCas => {
                let (old, new) = self.help_old_new();
                mem.cas(self.layout.slot_of(self.tail.count), old, new);
                self.pc = Pc::EnqReadHead;
                Step::Continue
            }
            Pc::EnqReadHead => {
                self.head = HeadWord::unpack(mem.read(self.layout.head()));
                if usize::from(self.tail.count.wrapping_sub(self.head.count))
                    == self.layout.capacity
                {
                    self.pc = Pc::EnqRevalidateTail;
                } else {
                    self.pc = Pc::EnqReadNextSlot;
                }
                Step::Continue
            }
            Pc::EnqRevalidateTail => {
                let revalidated = TailWord::unpack(mem.read(self.layout.tail()));
                if revalidated == self.tail {
                    Step::Done(Ok(SpecQueueResp::Full))
                } else {
                    Step::Done(Err(Bot))
                }
            }
            Pc::EnqReadNextSlot => {
                let SpecQueueOp::Enqueue(v) = self.op else {
                    unreachable!("enqueue path")
                };
                let element = self.tail.count.wrapping_add(1);
                let next = SlotWord::unpack(mem.read(self.layout.slot_of(element)));
                self.new_tail = TailWord {
                    count: element,
                    value: v,
                    seq: next.seq.wrapping_add(1),
                };
                self.pc = Pc::EnqCasTail;
                Step::Continue
            }
            Pc::EnqCasTail => {
                if mem.cas(self.layout.tail(), self.tail.pack(), self.new_tail.pack()) {
                    Step::Done(Ok(SpecQueueResp::Enqueued))
                } else {
                    Step::Done(Err(Bot))
                }
            }
            // ----- dequeue -----
            Pc::DeqReadHead => {
                self.head = HeadWord::unpack(mem.read(self.layout.head()));
                self.pc = Pc::DeqReadTail;
                Step::Continue
            }
            Pc::DeqReadTail => {
                self.tail = TailWord::unpack(mem.read(self.layout.tail()));
                self.pc = Pc::DeqHelpRead;
                Step::Continue
            }
            Pc::DeqHelpRead => {
                self.slot_value =
                    SlotWord::unpack(mem.read(self.layout.slot_of(self.tail.count))).value;
                self.pc = Pc::DeqHelpCas;
                Step::Continue
            }
            Pc::DeqHelpCas => {
                let (old, new) = self.help_old_new();
                mem.cas(self.layout.slot_of(self.tail.count), old, new);
                if self.head.count == self.tail.count {
                    self.pc = Pc::DeqRevalidateHead;
                } else {
                    self.pc = Pc::DeqReadSlot;
                }
                Step::Continue
            }
            Pc::DeqRevalidateHead => {
                let revalidated = HeadWord::unpack(mem.read(self.layout.head()));
                if revalidated == self.head {
                    Step::Done(Ok(SpecQueueResp::Empty))
                } else {
                    Step::Done(Err(Bot))
                }
            }
            Pc::DeqReadSlot => {
                let element = self.head.count.wrapping_add(1);
                self.deq_value = SlotWord::unpack(mem.read(self.layout.slot_of(element))).value;
                self.pc = Pc::DeqCasHead;
                Step::Continue
            }
            Pc::DeqCasHead => {
                let new_head = HeadWord {
                    count: self.head.count.wrapping_add(1),
                };
                if mem.cas(self.layout.head(), self.head.pack(), new_head.pack()) {
                    Step::Done(Ok(SpecQueueResp::Dequeued(self.deq_value)))
                } else {
                    Step::Done(Err(Bot))
                }
            }
        }
    }
}

/// The factory the explorer uses to start queue operations.
pub fn weak_queue_factory(layout: QueueLayout) -> impl Fn(usize, &SpecQueueOp) -> WeakQueueMachine {
    move |_proc, op| WeakQueueMachine::new(layout, *op)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_solo(mem: &mut Mem, layout: QueueLayout, op: SpecQueueOp) -> (SpecQueueResp, usize) {
        let mut machine = WeakQueueMachine::new(layout, op);
        let mut steps = 0;
        loop {
            steps += 1;
            match machine.step(mem) {
                Step::Continue => {}
                Step::Done(Ok(resp)) => return (resp, steps),
                Step::Done(Err(_)) => panic!("solo operations never abort"),
            }
        }
    }

    #[test]
    fn solo_fifo_six_steps() {
        let layout = queue_layout(4);
        let mut mem = layout.initial_mem();
        let (resp, steps) = run_solo(&mut mem, layout, SpecQueueOp::Enqueue(7));
        assert_eq!((resp, steps), (SpecQueueResp::Enqueued, 6));
        let (resp, _) = run_solo(&mut mem, layout, SpecQueueOp::Enqueue(9));
        assert_eq!(resp, SpecQueueResp::Enqueued);
        let (resp, steps) = run_solo(&mut mem, layout, SpecQueueOp::Dequeue);
        assert_eq!((resp, steps), (SpecQueueResp::Dequeued(7), 6));
        let (resp, _) = run_solo(&mut mem, layout, SpecQueueOp::Dequeue);
        assert_eq!(resp, SpecQueueResp::Dequeued(9));
        let (resp, steps) = run_solo(&mut mem, layout, SpecQueueOp::Dequeue);
        assert_eq!((resp, steps), (SpecQueueResp::Empty, 5));
    }

    #[test]
    fn full_detected_with_revalidation() {
        let layout = queue_layout(2);
        let mut mem = layout.initial_mem();
        run_solo(&mut mem, layout, SpecQueueOp::Enqueue(1));
        run_solo(&mut mem, layout, SpecQueueOp::Enqueue(2));
        let (resp, steps) = run_solo(&mut mem, layout, SpecQueueOp::Enqueue(3));
        assert_eq!((resp, steps), (SpecQueueResp::Full, 5));
    }

    #[test]
    fn ring_wraps_in_the_model_too() {
        let layout = queue_layout(2);
        let mut mem = layout.initial_mem();
        for round in 0..50 {
            let (resp, _) = run_solo(&mut mem, layout, SpecQueueOp::Enqueue(round));
            assert_eq!(resp, SpecQueueResp::Enqueued);
            let (resp, _) = run_solo(&mut mem, layout, SpecQueueOp::Dequeue);
            assert_eq!(resp, SpecQueueResp::Dequeued(round));
        }
    }

    #[test]
    fn prefilled_memory_dequeues_front_first() {
        let layout = queue_layout(4);
        let mut mem = layout.initial_mem_with(&[5, 6, 7]);
        assert_eq!(
            run_solo(&mut mem, layout, SpecQueueOp::Dequeue).0,
            SpecQueueResp::Dequeued(5)
        );
        assert_eq!(
            run_solo(&mut mem, layout, SpecQueueOp::Dequeue).0,
            SpecQueueResp::Dequeued(6)
        );
        assert_eq!(
            run_solo(&mut mem, layout, SpecQueueOp::Dequeue).0,
            SpecQueueResp::Dequeued(7)
        );
        assert_eq!(
            run_solo(&mut mem, layout, SpecQueueOp::Dequeue).0,
            SpecQueueResp::Empty
        );
    }
}
