//! Mutual-exclusion algorithms as step machines.
//!
//! Each machine performs one full `lock → critical section → unlock`
//! cycle; the critical section is entered by an atomic swap on an
//! occupancy register, so a mutual-exclusion violation is *observable
//! in the execution itself* (the machine returns `false`). The tests
//! sweep random and fair schedules asserting that no schedule ever
//! observes a violation — the model-checking complement of the
//! stress tests in `cso-locks`.

use crate::machine::{Step, StepMachine};
use crate::mem::{Addr, Mem};

/// The verdict of one lock cycle: `true` iff the critical section was
/// exclusive (and, for Peterson, the protocol held).
pub type CycleOk = bool;

// ----------------------------------------------------------------
// Test-and-set lock.
// ----------------------------------------------------------------

/// Memory layout of a TAS-lock instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TasLayout {
    /// The lock register.
    pub lock: Addr,
    /// The critical-section occupancy register.
    pub cs: Addr,
}

impl TasLayout {
    /// The canonical layout at the start of memory.
    #[must_use]
    pub fn new() -> TasLayout {
        TasLayout { lock: 0, cs: 1 }
    }

    /// The initial memory (lock free, section empty).
    #[must_use]
    pub fn initial_mem(&self) -> Mem {
        Mem::new(vec![0; 2])
    }
}

impl Default for TasLayout {
    fn default() -> TasLayout {
        TasLayout::new()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TasPc {
    TryLock,
    EnterCs,
    ExitCs,
    Unlock,
}

/// One `lock(); CS; unlock()` cycle through a TAS lock.
#[derive(Debug, Clone)]
pub struct TasCycleMachine {
    layout: TasLayout,
    pc: TasPc,
    exclusive: bool,
}

impl TasCycleMachine {
    /// A fresh cycle.
    #[must_use]
    pub fn new(layout: TasLayout) -> TasCycleMachine {
        TasCycleMachine {
            layout,
            pc: TasPc::TryLock,
            exclusive: true,
        }
    }
}

impl StepMachine<CycleOk> for TasCycleMachine {
    fn step(&mut self, mem: &mut Mem) -> Step<CycleOk> {
        match self.pc {
            TasPc::TryLock => {
                if mem.swap(self.layout.lock, 1) == 0 {
                    self.pc = TasPc::EnterCs;
                }
                Step::Continue
            }
            TasPc::EnterCs => {
                // Exclusive iff nobody is inside.
                self.exclusive = mem.swap(self.layout.cs, 1) == 0;
                self.pc = TasPc::ExitCs;
                Step::Continue
            }
            TasPc::ExitCs => {
                mem.write(self.layout.cs, 0);
                self.pc = TasPc::Unlock;
                Step::Continue
            }
            TasPc::Unlock => {
                mem.write(self.layout.lock, 0);
                Step::Done(Ok(self.exclusive))
            }
        }
    }
}

// ----------------------------------------------------------------
// Peterson's 2-process lock.
// ----------------------------------------------------------------

/// Memory layout of a Peterson instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PetersonLayout {
    /// `flag[side]` at `flag_base + side`.
    pub flag_base: Addr,
    /// The victim register.
    pub victim: Addr,
    /// The critical-section occupancy register.
    pub cs: Addr,
}

impl PetersonLayout {
    /// The canonical layout at the start of memory.
    #[must_use]
    pub fn new() -> PetersonLayout {
        PetersonLayout {
            flag_base: 0,
            victim: 2,
            cs: 3,
        }
    }

    /// The initial memory.
    #[must_use]
    pub fn initial_mem(&self) -> Mem {
        Mem::new(vec![0; 4])
    }
}

impl Default for PetersonLayout {
    fn default() -> PetersonLayout {
        PetersonLayout::new()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PetersonPc {
    SetFlag,
    SetVictim,
    ReadOtherFlag,
    ReadVictim,
    EnterCs,
    ExitCs,
    Unlock,
}

/// One Peterson `lock(side); CS; unlock(side)` cycle.
#[derive(Debug, Clone)]
pub struct PetersonCycleMachine {
    layout: PetersonLayout,
    side: usize,
    pc: PetersonPc,
    exclusive: bool,
}

impl PetersonCycleMachine {
    /// A fresh cycle for `side` (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `side > 1`.
    #[must_use]
    pub fn new(layout: PetersonLayout, side: usize) -> PetersonCycleMachine {
        assert!(side < 2, "Peterson sides are 0 and 1");
        PetersonCycleMachine {
            layout,
            side,
            pc: PetersonPc::SetFlag,
            exclusive: true,
        }
    }
}

impl StepMachine<CycleOk> for PetersonCycleMachine {
    fn step(&mut self, mem: &mut Mem) -> Step<CycleOk> {
        match self.pc {
            PetersonPc::SetFlag => {
                mem.write(self.layout.flag_base + self.side, 1);
                self.pc = PetersonPc::SetVictim;
                Step::Continue
            }
            PetersonPc::SetVictim => {
                mem.write(self.layout.victim, self.side as u64);
                self.pc = PetersonPc::ReadOtherFlag;
                Step::Continue
            }
            PetersonPc::ReadOtherFlag => {
                if mem.read(self.layout.flag_base + (1 - self.side)) == 0 {
                    self.pc = PetersonPc::EnterCs;
                } else {
                    self.pc = PetersonPc::ReadVictim;
                }
                Step::Continue
            }
            PetersonPc::ReadVictim => {
                if mem.read(self.layout.victim) == self.side as u64 {
                    // Still the victim: keep waiting.
                    self.pc = PetersonPc::ReadOtherFlag;
                } else {
                    self.pc = PetersonPc::EnterCs;
                }
                Step::Continue
            }
            PetersonPc::EnterCs => {
                self.exclusive = mem.swap(self.layout.cs, 1) == 0;
                self.pc = PetersonPc::ExitCs;
                Step::Continue
            }
            PetersonPc::ExitCs => {
                mem.write(self.layout.cs, 0);
                self.pc = PetersonPc::Unlock;
                Step::Continue
            }
            PetersonPc::Unlock => {
                mem.write(self.layout.flag_base + self.side, 0);
                Step::Done(Ok(self.exclusive))
            }
        }
    }
}

// ----------------------------------------------------------------
// The §4.4 booster over a TAS lock.
// ----------------------------------------------------------------

/// Memory layout of a boosted-lock instance: `FLAG[0..n]`, `TURN`,
/// `LOCK`, `CS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoostedLayout {
    /// Number of processes.
    pub n: usize,
}

impl BoostedLayout {
    /// Address of `FLAG[i]`.
    #[must_use]
    pub fn flag(&self, i: usize) -> Addr {
        i
    }

    /// Address of `TURN`.
    #[must_use]
    pub fn turn(&self) -> Addr {
        self.n
    }

    /// Address of the inner TAS lock.
    #[must_use]
    pub fn lock(&self) -> Addr {
        self.n + 1
    }

    /// Address of the occupancy register.
    #[must_use]
    pub fn cs(&self) -> Addr {
        self.n + 2
    }

    /// The initial memory.
    #[must_use]
    pub fn initial_mem(&self) -> Mem {
        Mem::new(vec![0; self.n + 3])
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoostPc {
    SetFlag,
    ReadTurn,
    ReadFlagOfTurn,
    TryLock,
    EnterCs,
    ExitCs,
    ClearFlag,
    HandoffReadTurn,
    HandoffReadFlag,
    AdvanceTurn,
    Unlock,
}

/// One cycle through the §4.4 starvation-free booster wrapping a TAS
/// lock (the starred lines of Figure 3, isolated).
#[derive(Debug, Clone)]
pub struct BoostedCycleMachine {
    layout: BoostedLayout,
    proc: usize,
    pc: BoostPc,
    turn_seen: usize,
    exclusive: bool,
}

impl BoostedCycleMachine {
    /// A fresh cycle for process `proc`.
    ///
    /// # Panics
    ///
    /// Panics if `proc >= layout.n`.
    #[must_use]
    pub fn new(layout: BoostedLayout, proc: usize) -> BoostedCycleMachine {
        assert!(proc < layout.n, "process id out of range");
        BoostedCycleMachine {
            layout,
            proc,
            pc: BoostPc::SetFlag,
            turn_seen: 0,
            exclusive: true,
        }
    }
}

impl StepMachine<CycleOk> for BoostedCycleMachine {
    fn step(&mut self, mem: &mut Mem) -> Step<CycleOk> {
        match self.pc {
            // Line 04.
            BoostPc::SetFlag => {
                mem.write(self.layout.flag(self.proc), 1);
                self.pc = BoostPc::ReadTurn;
                Step::Continue
            }
            // Line 05.
            BoostPc::ReadTurn => {
                self.turn_seen = mem.read(self.layout.turn()) as usize;
                self.pc = if self.turn_seen == self.proc {
                    BoostPc::TryLock
                } else {
                    BoostPc::ReadFlagOfTurn
                };
                Step::Continue
            }
            BoostPc::ReadFlagOfTurn => {
                self.pc = if mem.read(self.layout.flag(self.turn_seen)) == 0 {
                    BoostPc::TryLock
                } else {
                    BoostPc::ReadTurn
                };
                Step::Continue
            }
            // Line 06.
            BoostPc::TryLock => {
                if mem.swap(self.layout.lock(), 1) == 0 {
                    self.pc = BoostPc::EnterCs;
                }
                Step::Continue
            }
            BoostPc::EnterCs => {
                self.exclusive = mem.swap(self.layout.cs(), 1) == 0;
                self.pc = BoostPc::ExitCs;
                Step::Continue
            }
            BoostPc::ExitCs => {
                mem.write(self.layout.cs(), 0);
                self.pc = BoostPc::ClearFlag;
                Step::Continue
            }
            // Line 10.
            BoostPc::ClearFlag => {
                mem.write(self.layout.flag(self.proc), 0);
                self.pc = BoostPc::HandoffReadTurn;
                Step::Continue
            }
            // Line 11.
            BoostPc::HandoffReadTurn => {
                self.turn_seen = mem.read(self.layout.turn()) as usize;
                self.pc = BoostPc::HandoffReadFlag;
                Step::Continue
            }
            BoostPc::HandoffReadFlag => {
                self.pc = if mem.read(self.layout.flag(self.turn_seen)) == 0 {
                    BoostPc::AdvanceTurn
                } else {
                    BoostPc::Unlock
                };
                Step::Continue
            }
            BoostPc::AdvanceTurn => {
                mem.write(
                    self.layout.turn(),
                    ((self.turn_seen + 1) % self.layout.n) as u64,
                );
                self.pc = BoostPc::Unlock;
                Step::Continue
            }
            // Line 12.
            BoostPc::Unlock => {
                mem.write(self.layout.lock(), 0);
                Step::Done(Ok(self.exclusive))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{explore_random, ExploreConfig, Terminal};
    use crate::fair::run_fair;

    fn assert_all_exclusive(terminal: &Terminal<(), CycleOk>) {
        for op in terminal.history.operations() {
            let (ok, _) = op.returned.as_ref().expect("cycles complete");
            assert!(*ok, "mutual exclusion violated in a schedule");
        }
    }

    #[test]
    fn tas_mutual_exclusion_over_random_schedules() {
        let layout = TasLayout::new();
        let scripts = vec![vec![(), ()], vec![(), ()], vec![()]];
        let config = ExploreConfig {
            max_steps_per_op: 5_000,
            max_executions: usize::MAX,
        };
        let stats = explore_random(
            &layout.initial_mem(),
            &scripts,
            |_p, _op: &()| TasCycleMachine::new(layout),
            &config,
            1_500,
            1,
            assert_all_exclusive,
        );
        assert_eq!(stats.executions, 1_500);
    }

    #[test]
    fn peterson_mutual_exclusion_over_random_schedules() {
        let layout = PetersonLayout::new();
        let scripts = vec![vec![(), (), ()], vec![(), (), ()]];
        let config = ExploreConfig {
            max_steps_per_op: 5_000,
            max_executions: usize::MAX,
        };
        let stats = explore_random(
            &layout.initial_mem(),
            &scripts,
            |side, _op: &()| PetersonCycleMachine::new(layout, side),
            &config,
            2_000,
            2,
            assert_all_exclusive,
        );
        assert_eq!(stats.executions, 2_000);
    }

    /// A deliberately broken "lock" (no lock at all) must be caught by
    /// the same harness — the violation detector is not vacuous.
    #[test]
    fn the_violation_detector_detects() {
        #[derive(Clone)]
        struct NoLock {
            pc: u8,
            exclusive: bool,
        }
        impl StepMachine<CycleOk> for NoLock {
            fn step(&mut self, mem: &mut Mem) -> Step<CycleOk> {
                match self.pc {
                    0 => {
                        self.exclusive = mem.swap(0, 1) == 0;
                        self.pc = 1;
                        Step::Continue
                    }
                    _ => {
                        mem.write(0, 0);
                        Step::Done(Ok(self.exclusive))
                    }
                }
            }
        }
        let scripts = vec![vec![()], vec![()]];
        let mut violations = 0;
        explore_random(
            &Mem::new(vec![0]),
            &scripts,
            |_p, _op: &()| NoLock {
                pc: 0,
                exclusive: true,
            },
            &ExploreConfig::default(),
            500,
            3,
            |t: &Terminal<(), CycleOk>| {
                for op in t.history.operations() {
                    if !op.returned.as_ref().unwrap().0 {
                        violations += 1;
                    }
                }
            },
        );
        assert!(violations > 0, "an unprotected section must show overlap");
    }

    #[test]
    fn boosted_lock_mutual_exclusion_over_random_schedules() {
        for n in [2, 3] {
            let layout = BoostedLayout { n };
            let scripts: Vec<Vec<()>> = (0..n).map(|_| vec![(), ()]).collect();
            let config = ExploreConfig {
                max_steps_per_op: 5_000,
                max_executions: usize::MAX,
            };
            let stats = explore_random(
                &layout.initial_mem(),
                &scripts,
                |proc, _op: &()| BoostedCycleMachine::new(layout, proc),
                &config,
                1_000,
                4,
                assert_all_exclusive,
            );
            assert_eq!(stats.executions, 1_000, "n={n}");
        }
    }

    /// Lemma 3, bounded form: under fair scheduling every boosted-lock
    /// cycle completes within a modest step bound, for every process.
    #[test]
    fn boosted_lock_is_fair_under_fair_scheduling() {
        for n in [2, 3, 4] {
            let layout = BoostedLayout { n };
            let scripts: Vec<Vec<()>> = (0..n).map(|_| vec![(), (), ()]).collect();
            let report = run_fair::<_, _, CycleOk>(
                &layout.initial_mem(),
                &scripts,
                |proc, _op: &()| BoostedCycleMachine::new(layout, proc),
                2_000,
            );
            let terminal = report.terminal.expect("no cycle may starve under fairness");
            assert_all_exclusive(&terminal);
            assert!(
                report.max_op_steps <= 300,
                "n={n}: a cycle needed {} steps",
                report.max_op_steps
            );
        }
    }

    #[test]
    fn solo_cycles_complete_quickly() {
        let layout = BoostedLayout { n: 4 };
        let mut mem = layout.initial_mem();
        let mut machine = BoostedCycleMachine::new(layout, 2);
        let mut steps = 0;
        loop {
            steps += 1;
            if let Step::Done(result) = machine.step(&mut mem) {
                assert_eq!(result, Ok(true));
                break;
            }
        }
        // flag, turn, flag[turn], lock, cs×2, flag, turn, flag[turn],
        // advance, unlock — 11 accesses solo.
        assert_eq!(steps, 11);
        assert_eq!(mem.read(layout.lock()), 0);
        // TURN was 0 and idle, so the handoff advances it to 1.
        assert_eq!(mem.read(layout.turn()), 1);
    }
}
