//! Figure 3 over the stack — the paper's exact construction — as a
//! step machine.
//!
//! The protocol logic lives in the generic [`Fig3Machine`]
//! (`CONTENTION` + `FLAG`/`TURN` booster + TAS lock); this module
//! binds it to the Figure 1 weak stack and fixes the memory layout.
//! Contains busy-wait loops: explore with [`crate::explore_random`] /
//! [`crate::fair`].

use cso_lincheck::specs::stack::{SpecStackOp, SpecStackResp};

use crate::algos::fig3::{Fig3Addrs, Fig3Machine};
use crate::algos::stack::{StackLayout, WeakStackMachine};
use crate::mem::{Addr, Mem};

/// Memory layout of one Figure 3 stack instance: the [`StackLayout`]
/// registers first, then `CONTENTION`, `FLAG[0..n]`, `TURN`, `LOCK`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsStackLayout {
    /// The embedded weak stack's layout.
    pub stack: StackLayout,
    /// Number of processes (size of `FLAG`).
    pub n: usize,
}

/// Builds the layout for a Figure 3 stack.
#[must_use]
pub fn cs_stack_layout(capacity: usize, n: usize) -> CsStackLayout {
    assert!(n >= 1, "at least one process");
    CsStackLayout {
        stack: crate::algos::stack::stack_layout(capacity),
        n,
    }
}

impl CsStackLayout {
    /// The coordination-register addresses (after the stack's
    /// `TOP` + `STACK[0..k]` block).
    #[must_use]
    pub fn addrs(&self) -> Fig3Addrs {
        let base = self.stack.capacity + 2;
        Fig3Addrs {
            contention: base,
            flag_base: base + 1,
            n: self.n,
            turn: base + 1 + self.n,
            lock: base + 2 + self.n,
        }
    }

    /// Address of the `CONTENTION` register.
    #[must_use]
    pub fn contention(&self) -> Addr {
        self.addrs().contention
    }

    /// Address of `FLAG[i]`.
    #[must_use]
    pub fn flag(&self, i: usize) -> Addr {
        self.addrs().flag(i)
    }

    /// Address of `TURN`.
    #[must_use]
    pub fn turn(&self) -> Addr {
        self.addrs().turn
    }

    /// Address of the TAS lock register.
    #[must_use]
    pub fn lock(&self) -> Addr {
        self.addrs().lock
    }

    /// The initial memory: an empty stack, `CONTENTION = false`,
    /// all flags down, `TURN = 0`, lock free.
    #[must_use]
    pub fn initial_mem(&self) -> Mem {
        self.initial_mem_with(&[])
    }

    /// The initial memory with a pre-filled stack.
    #[must_use]
    pub fn initial_mem_with(&self, values: &[u32]) -> Mem {
        let stack_mem = self.stack.initial_mem_with(values);
        let mut words: Vec<u64> = (0..stack_mem.len()).map(|a| stack_mem.read(a)).collect();
        words.resize(self.addrs().end(), 0);
        Mem::new(words)
    }
}

/// Figure 3's `strong_push_or_pop(par)` for the stack. Never returns
/// ⊥ (Lemma 1 — structurally: every `Done` carries `Ok`).
pub type StrongStackMachine = Fig3Machine<WeakStackMachine, SpecStackResp>;

/// A machine ready to run `op` on behalf of `proc`.
///
/// # Panics
///
/// Panics if `proc >= layout.n`.
#[must_use]
pub fn strong_stack_machine(
    layout: CsStackLayout,
    proc: usize,
    op: SpecStackOp,
) -> StrongStackMachine {
    Fig3Machine::new(
        layout.addrs(),
        proc,
        WeakStackMachine::new(layout.stack, op),
    )
}

/// The factory the explorer uses to start Figure 3 stack operations.
pub fn strong_stack_factory(
    layout: CsStackLayout,
) -> impl Fn(usize, &SpecStackOp) -> StrongStackMachine {
    move |proc, op| strong_stack_machine(layout, proc, *op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Step, StepMachine};

    fn run_solo(
        mem: &mut Mem,
        layout: CsStackLayout,
        proc: usize,
        op: SpecStackOp,
    ) -> (SpecStackResp, usize) {
        let mut machine = strong_stack_machine(layout, proc, op);
        let mut steps = 0;
        loop {
            steps += 1;
            match machine.step(mem) {
                Step::Continue => {}
                Step::Done(Ok(resp)) => return (resp, steps),
                Step::Done(Err(_)) => unreachable!("strong ops never return ⊥"),
            }
        }
    }

    /// Theorem 1 in the model: a contention-free strong operation is
    /// exactly six accesses and never touches the lock.
    #[test]
    fn solo_strong_op_is_exactly_six_accesses() {
        let layout = cs_stack_layout(4, 3);
        let mut mem = layout.initial_mem();
        let (resp, steps) = run_solo(&mut mem, layout, 0, SpecStackOp::Push(5));
        assert_eq!((resp, steps), (SpecStackResp::Pushed, 6));
        assert_eq!(mem.read(layout.lock()), 0, "lock untouched");
        let (resp, steps) = run_solo(&mut mem, layout, 2, SpecStackOp::Pop);
        assert_eq!((resp, steps), (SpecStackResp::Popped(5), 6));
    }

    #[test]
    fn contention_flag_diverts_to_lock_path() {
        let layout = cs_stack_layout(4, 2);
        let mut mem = layout.initial_mem();
        // Simulate the transient state where CONTENTION is set but the
        // lock is free: the op must go through FLAG/TURN + lock and
        // still complete.
        mem.write(layout.contention(), 1);
        let mut machine = strong_stack_machine(layout, 0, SpecStackOp::Push(1));
        let mut steps = 0;
        let resp = loop {
            steps += 1;
            assert!(steps < 1_000, "must terminate");
            match machine.step(&mut mem) {
                Step::Continue => {}
                Step::Done(Ok(resp)) => break resp,
                Step::Done(Err(_)) => unreachable!(),
            }
        };
        assert_eq!(resp, SpecStackResp::Pushed);
        assert_eq!(mem.read(layout.lock()), 0, "lock released");
        assert_eq!(mem.read(layout.flag(0)), 0, "flag lowered");
    }

    #[test]
    fn turn_advances_after_uncontended_lock_path() {
        let layout = cs_stack_layout(4, 3);
        let mut mem = layout.initial_mem();
        mem.write(layout.contention(), 1); // force the slow path once
        let mut machine = strong_stack_machine(layout, 0, SpecStackOp::Push(1));
        while let Step::Continue = machine.step(&mut mem) {}
        // TURN was 0 and FLAG[0] is down at handoff: TURN moves to 1.
        assert_eq!(mem.read(layout.turn()), 1);
    }
}
