//! Figure 3 over the bounded queue (the `cso-queue` extension) as a
//! step machine.
//!
//! Binds the generic [`Fig3Machine`] protocol to the weak queue
//! machine, validating `cso_queue::CsQueue`'s logic under per-access
//! interleaving. Contains busy-wait loops: explore with
//! [`crate::explore_random`] / [`crate::fair`].

use cso_lincheck::specs::queue::{SpecQueueOp, SpecQueueResp};

use crate::algos::fig3::{Fig3Addrs, Fig3Machine};
use crate::algos::queue::{QueueLayout, WeakQueueMachine};
use crate::mem::{Addr, Mem};

/// Memory layout of one Figure 3 queue instance: the [`QueueLayout`]
/// registers first (`HEAD`, `TAIL`, ring), then `CONTENTION`,
/// `FLAG[0..n]`, `TURN`, `LOCK`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsQueueLayout {
    /// The embedded weak queue's layout.
    pub queue: QueueLayout,
    /// Number of processes (size of `FLAG`).
    pub n: usize,
}

/// Builds the layout for a Figure 3 queue.
#[must_use]
pub fn cs_queue_layout(capacity: usize, n: usize) -> CsQueueLayout {
    assert!(n >= 1, "at least one process");
    CsQueueLayout {
        queue: crate::algos::queue::queue_layout(capacity),
        n,
    }
}

impl CsQueueLayout {
    /// The coordination-register addresses (after the queue's
    /// `HEAD` + `TAIL` + ring block).
    #[must_use]
    pub fn addrs(&self) -> Fig3Addrs {
        let base = 2 + self.queue.capacity;
        Fig3Addrs {
            contention: base,
            flag_base: base + 1,
            n: self.n,
            turn: base + 1 + self.n,
            lock: base + 2 + self.n,
        }
    }

    /// Address of the TAS lock register.
    #[must_use]
    pub fn lock(&self) -> Addr {
        self.addrs().lock
    }

    /// The initial memory: an empty queue, coordination registers
    /// cleared.
    #[must_use]
    pub fn initial_mem(&self) -> Mem {
        self.initial_mem_with(&[])
    }

    /// The initial memory with a pre-filled queue (front first).
    #[must_use]
    pub fn initial_mem_with(&self, values: &[u32]) -> Mem {
        let queue_mem = self.queue.initial_mem_with(values);
        let mut words: Vec<u64> = (0..queue_mem.len()).map(|a| queue_mem.read(a)).collect();
        words.resize(self.addrs().end(), 0);
        Mem::new(words)
    }
}

/// Figure 3's strong operation for the queue. Never returns ⊥.
pub type StrongQueueMachine = Fig3Machine<WeakQueueMachine, SpecQueueResp>;

/// A machine ready to run `op` on behalf of `proc`.
///
/// # Panics
///
/// Panics if `proc >= layout.n`.
#[must_use]
pub fn strong_queue_machine(
    layout: CsQueueLayout,
    proc: usize,
    op: SpecQueueOp,
) -> StrongQueueMachine {
    Fig3Machine::new(
        layout.addrs(),
        proc,
        WeakQueueMachine::new(layout.queue, op),
    )
}

/// The factory the explorer uses to start Figure 3 queue operations.
pub fn strong_queue_factory(
    layout: CsQueueLayout,
) -> impl Fn(usize, &SpecQueueOp) -> StrongQueueMachine {
    move |proc, op| strong_queue_machine(layout, proc, *op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Step, StepMachine};

    fn run_solo(
        mem: &mut Mem,
        layout: CsQueueLayout,
        proc: usize,
        op: SpecQueueOp,
    ) -> (SpecQueueResp, usize) {
        let mut machine = strong_queue_machine(layout, proc, op);
        let mut steps = 0;
        loop {
            steps += 1;
            match machine.step(mem) {
                Step::Continue => {}
                Step::Done(Ok(resp)) => return (resp, steps),
                Step::Done(Err(_)) => unreachable!("strong ops never return ⊥"),
            }
        }
    }

    /// The queue twin of Theorem 1: solo strong operations are seven
    /// accesses (one `CONTENTION` read + the six-access weak op) and
    /// never touch the lock.
    #[test]
    fn solo_strong_ops_are_exactly_seven_accesses() {
        let layout = cs_queue_layout(4, 3);
        let mut mem = layout.initial_mem();
        let (resp, steps) = run_solo(&mut mem, layout, 0, SpecQueueOp::Enqueue(5));
        assert_eq!((resp, steps), (SpecQueueResp::Enqueued, 7));
        let (resp, steps) = run_solo(&mut mem, layout, 2, SpecQueueOp::Dequeue);
        assert_eq!((resp, steps), (SpecQueueResp::Dequeued(5), 7));
        assert_eq!(mem.read(layout.lock()), 0, "lock untouched");
    }

    #[test]
    fn fifo_order_survives_the_wrapper() {
        let layout = cs_queue_layout(4, 2);
        let mut mem = layout.initial_mem_with(&[8, 9]);
        assert_eq!(
            run_solo(&mut mem, layout, 0, SpecQueueOp::Dequeue).0,
            SpecQueueResp::Dequeued(8)
        );
        assert_eq!(
            run_solo(&mut mem, layout, 1, SpecQueueOp::Dequeue).0,
            SpecQueueResp::Dequeued(9)
        );
        assert_eq!(
            run_solo(&mut mem, layout, 0, SpecQueueOp::Dequeue).0,
            SpecQueueResp::Empty
        );
    }

    #[test]
    fn slow_path_completes_and_cleans_up() {
        let layout = cs_queue_layout(4, 2);
        let mut mem = layout.initial_mem();
        mem.write(layout.addrs().contention, 1);
        let mut machine = strong_queue_machine(layout, 1, SpecQueueOp::Enqueue(3));
        let mut steps = 0;
        loop {
            steps += 1;
            assert!(steps < 1_000);
            if let Step::Done(result) = machine.step(&mut mem) {
                assert_eq!(result, Ok(SpecQueueResp::Enqueued));
                break;
            }
        }
        assert_eq!(mem.read(layout.lock()), 0);
        assert_eq!(mem.read(layout.addrs().flag(1)), 0);
    }
}
