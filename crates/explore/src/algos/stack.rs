//! Figure 1 as step machines.

use cso_lincheck::specs::stack::{SpecStackOp, SpecStackResp};
use cso_memory::packed::{SlotWord, TopWord};

use crate::machine::{Bot, Step, StepMachine};
use crate::mem::{Addr, Mem};

const BOTTOM: u32 = 0;

/// Memory layout of one abortable stack instance: `TOP` at address 0,
/// `STACK[x]` at address `1 + x` for `x ∈ 0..=capacity`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackLayout {
    /// The stack capacity `k`.
    pub capacity: usize,
}

/// Builds the layout for a stack of the given capacity.
#[must_use]
pub fn stack_layout(capacity: usize) -> StackLayout {
    assert!(
        capacity >= 1 && capacity < usize::from(u16::MAX),
        "capacity must fit u16"
    );
    StackLayout { capacity }
}

impl StackLayout {
    /// Address of the `TOP` register.
    #[must_use]
    pub fn top(&self) -> Addr {
        0
    }

    /// Address of `STACK[x]`.
    #[must_use]
    pub fn slot(&self, x: u16) -> Addr {
        1 + usize::from(x)
    }

    /// The initial memory of an empty stack: `TOP = ⟨0, ⊥, 0⟩`,
    /// `STACK\[0\] = ⟨⊥, −1⟩`, `STACK[x] = ⟨⊥, 0⟩`.
    #[must_use]
    pub fn initial_mem(&self) -> Mem {
        self.initial_mem_with(&[])
    }

    /// The memory of a quiescent stack already holding `values`
    /// (bottom first).
    ///
    /// # Panics
    ///
    /// Panics if more values than capacity are supplied.
    #[must_use]
    pub fn initial_mem_with(&self, values: &[u32]) -> Mem {
        assert!(
            values.len() <= self.capacity,
            "more initial values than capacity"
        );
        let mut words = vec![0u64; self.capacity + 2];
        for x in 0..=self.capacity {
            let (value, seq) = if x == 0 {
                (BOTTOM, if values.is_empty() { u16::MAX } else { 0 })
            } else if x <= values.len() {
                (values[x - 1], 1)
            } else {
                (BOTTOM, 0)
            };
            words[self.slot(x as u16)] = SlotWord { value, seq }.pack();
        }
        let top = if values.is_empty() {
            TopWord {
                index: 0,
                seq: 0,
                value: BOTTOM,
            }
        } else {
            TopWord {
                index: values.len() as u16,
                seq: 1,
                value: values[values.len() - 1],
            }
        };
        words[self.top()] = top.pack();
        Mem::new(words)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    ReadTop,
    HelpRead,
    HelpCas,
    ReadNeighbour,
    CasTop,
}

/// Figure 1's `weak_push(v)` / `weak_pop()` as a five-access machine.
#[derive(Debug, Clone)]
pub struct WeakStackMachine {
    layout: StackLayout,
    op: SpecStackOp,
    pc: Pc,
    top: TopWord,
    slot_value: u32,
    new_top: TopWord,
}

impl WeakStackMachine {
    /// A machine ready to run `op` against a stack with `layout`.
    #[must_use]
    pub fn new(layout: StackLayout, op: SpecStackOp) -> WeakStackMachine {
        WeakStackMachine {
            layout,
            op,
            pc: Pc::ReadTop,
            top: TopWord::default(),
            slot_value: 0,
            new_top: TopWord::default(),
        }
    }
}

impl StepMachine<SpecStackResp> for WeakStackMachine {
    fn step(&mut self, mem: &mut Mem) -> Step<SpecStackResp> {
        match self.pc {
            // Line 01/08: (index, value, seqnb) ← TOP.
            Pc::ReadTop => {
                self.top = TopWord::unpack(mem.read(self.layout.top()));
                self.pc = Pc::HelpRead;
                Step::Continue
            }
            // Line 15: stacktop ← STACK[index].val.
            Pc::HelpRead => {
                self.slot_value =
                    SlotWord::unpack(mem.read(self.layout.slot(self.top.index))).value;
                self.pc = Pc::HelpCas;
                Step::Continue
            }
            // Line 16: STACK[index].C&S(⟨stacktop, sn−1⟩, ⟨value, sn⟩);
            // then the local full/empty tests (lines 03/10).
            Pc::HelpCas => {
                let old = SlotWord {
                    value: self.slot_value,
                    seq: self.top.seq.wrapping_sub(1),
                };
                let new = SlotWord {
                    value: self.top.value,
                    seq: self.top.seq,
                };
                mem.cas(self.layout.slot(self.top.index), old.pack(), new.pack());
                match self.op {
                    SpecStackOp::Push(_) if usize::from(self.top.index) == self.layout.capacity => {
                        Step::Done(Ok(SpecStackResp::Full))
                    }
                    SpecStackOp::Pop if self.top.index == 0 => Step::Done(Ok(SpecStackResp::Empty)),
                    _ => {
                        self.pc = Pc::ReadNeighbour;
                        Step::Continue
                    }
                }
            }
            // Line 04: sn_of_next ← STACK[index+1].sn  (push), or
            // line 11: belowtop ← STACK[index−1]        (pop).
            Pc::ReadNeighbour => {
                self.new_top = match self.op {
                    SpecStackOp::Push(v) => {
                        let next = SlotWord::unpack(mem.read(self.layout.slot(self.top.index + 1)));
                        TopWord {
                            index: self.top.index + 1,
                            value: v,
                            seq: next.seq.wrapping_add(1),
                        }
                    }
                    SpecStackOp::Pop => {
                        let below =
                            SlotWord::unpack(mem.read(self.layout.slot(self.top.index - 1)));
                        TopWord {
                            index: self.top.index - 1,
                            value: below.value,
                            seq: below.seq.wrapping_add(1),
                        }
                    }
                };
                self.pc = Pc::CasTop;
                Step::Continue
            }
            // Line 06/13: TOP.C&S(old, newtop).
            Pc::CasTop => {
                if mem.cas(self.layout.top(), self.top.pack(), self.new_top.pack()) {
                    Step::Done(Ok(match self.op {
                        SpecStackOp::Push(_) => SpecStackResp::Pushed,
                        SpecStackOp::Pop => SpecStackResp::Popped(self.top.value),
                    }))
                } else {
                    Step::Done(Err(Bot))
                }
            }
        }
    }
}

/// The factory the explorer uses to start Figure 1 operations.
pub fn weak_stack_factory(layout: StackLayout) -> impl Fn(usize, &SpecStackOp) -> WeakStackMachine {
    move |_proc, op| WeakStackMachine::new(layout, *op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Step;

    fn run_solo(mem: &mut Mem, layout: StackLayout, op: SpecStackOp) -> (SpecStackResp, usize) {
        let mut machine = WeakStackMachine::new(layout, op);
        let mut steps = 0;
        loop {
            steps += 1;
            match machine.step(mem) {
                Step::Continue => {}
                Step::Done(Ok(resp)) => return (resp, steps),
                Step::Done(Err(_)) => panic!("solo operations never abort"),
            }
        }
    }

    #[test]
    fn solo_push_pop_five_steps_and_lifo() {
        let layout = stack_layout(4);
        let mut mem = layout.initial_mem();
        let (resp, steps) = run_solo(&mut mem, layout, SpecStackOp::Push(7));
        assert_eq!((resp, steps), (SpecStackResp::Pushed, 5));
        let (resp, steps) = run_solo(&mut mem, layout, SpecStackOp::Push(9));
        assert_eq!((resp, steps), (SpecStackResp::Pushed, 5));
        let (resp, steps) = run_solo(&mut mem, layout, SpecStackOp::Pop);
        assert_eq!((resp, steps), (SpecStackResp::Popped(9), 5));
        let (resp, _) = run_solo(&mut mem, layout, SpecStackOp::Pop);
        assert_eq!(resp, SpecStackResp::Popped(7));
        let (resp, steps) = run_solo(&mut mem, layout, SpecStackOp::Pop);
        assert_eq!((resp, steps), (SpecStackResp::Empty, 3));
    }

    #[test]
    fn full_detected_in_three_steps() {
        let layout = stack_layout(1);
        let mut mem = layout.initial_mem();
        run_solo(&mut mem, layout, SpecStackOp::Push(1));
        let (resp, steps) = run_solo(&mut mem, layout, SpecStackOp::Push(2));
        assert_eq!((resp, steps), (SpecStackResp::Full, 3));
    }

    #[test]
    fn prefilled_memory_matches_push_built_memory() {
        let layout = stack_layout(4);
        let mut built = layout.initial_mem();
        run_solo(&mut built, layout, SpecStackOp::Push(5));
        run_solo(&mut built, layout, SpecStackOp::Push(6));
        // The prefilled memory is a *quiescent-equivalent* state: the
        // observable behaviour from both must agree.
        let mut pre = layout.initial_mem_with(&[5, 6]);
        let (a, _) = run_solo(&mut built, layout, SpecStackOp::Pop);
        let (b, _) = run_solo(&mut pre, layout, SpecStackOp::Pop);
        assert_eq!(a, b);
        let (a, _) = run_solo(&mut built, layout, SpecStackOp::Pop);
        let (b, _) = run_solo(&mut pre, layout, SpecStackOp::Pop);
        assert_eq!(a, b);
    }
}
