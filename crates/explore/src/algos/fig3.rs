//! The generic Figure 3 step machine.
//!
//! Figure 3 is object-agnostic: `weak_push_or_pop(par)` can be *any*
//! abortable operation (§4 presents the stack; `cso-core` implements
//! the generic transformation for the production code). This module
//! is its model-checker twin: [`Fig3Machine`] wraps any weak
//! [`StepMachine`] with the `CONTENTION` register (lines 01/07/09),
//! the `FLAG`/`TURN` starvation-freedom booster (lines 04–05/10–11,
//! §4.4) and a test-and-set lock (lines 06/12).
//!
//! The machine contains busy-wait loops, so it is explored with
//! [`crate::explore_random`] / [`crate::fair`] rather than
//! exhaustively.

use crate::machine::{Step, StepMachine};
use crate::mem::{Addr, Mem};

/// Addresses of Figure 3's coordination registers (the wrapped weak
/// machine carries its own layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig3Addrs {
    /// The `CONTENTION` boolean register.
    pub contention: Addr,
    /// `FLAG[i]` lives at `flag_base + i`.
    pub flag_base: Addr,
    /// Number of processes (`FLAG` length, `TURN` modulus).
    pub n: usize,
    /// The `TURN` register.
    pub turn: Addr,
    /// The test-and-set lock register.
    pub lock: Addr,
}

impl Fig3Addrs {
    /// Address of `FLAG[i]`.
    #[must_use]
    pub fn flag(&self, i: usize) -> Addr {
        self.flag_base + i
    }

    /// One past the last register this block occupies.
    #[must_use]
    pub fn end(&self) -> Addr {
        self.lock + 1
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Line 01: read `CONTENTION`.
    ReadContention,
    /// Line 02: the lock-free shortcut (one weak operation).
    FastWeak,
    /// Line 04: `FLAG[i] ← true`.
    SetFlag,
    /// Line 05, first conjunct: read `TURN`.
    WaitReadTurn,
    /// Line 05, second conjunct: read `FLAG[TURN]`.
    WaitReadFlag,
    /// Line 06: TAS acquire attempt (spins in place).
    TryLock,
    /// Line 07: `CONTENTION ← true`.
    SetContention,
    /// Line 08: `repeat weak_op until ≠ ⊥`.
    LoopWeak,
    /// Line 09: `CONTENTION ← false`.
    ClearContention,
    /// Line 10: `FLAG[i] ← false`.
    ClearFlag,
    /// Line 11a: read `TURN`.
    ReadTurnForHandoff,
    /// Line 11b: read `FLAG[TURN]`.
    ReadFlagForHandoff,
    /// Line 11c: `TURN ← (TURN + 1) mod n`.
    AdvanceTurn,
    /// Line 12: release the lock, then return (line 13).
    Unlock,
}

/// Figure 3's `strong_push_or_pop(par)` over any weak machine `W`.
///
/// The weak machine is rebuilt from a pristine template whenever the
/// algorithm restarts it (line 08's retry loop, or entering the fast
/// path). Never returns ⊥: every `Done` carries `Ok` (Lemma 1,
/// structurally).
#[derive(Debug, Clone)]
pub struct Fig3Machine<W, R> {
    addrs: Fig3Addrs,
    proc: usize,
    /// Pristine copy of the weak operation, cloned on every (re)start.
    template: W,
    phase: Phase,
    weak: W,
    turn_seen: usize,
    result: Option<R>,
}

impl<W: Clone, R> Fig3Machine<W, R> {
    /// A machine running the weak operation `weak` on behalf of
    /// `proc` under the Figure 3 protocol at `addrs`.
    ///
    /// # Panics
    ///
    /// Panics if `proc >= addrs.n`.
    #[must_use]
    pub fn new(addrs: Fig3Addrs, proc: usize, weak: W) -> Fig3Machine<W, R> {
        assert!(proc < addrs.n, "process id out of range");
        Fig3Machine {
            addrs,
            proc,
            template: weak.clone(),
            phase: Phase::ReadContention,
            weak,
            turn_seen: 0,
            result: None,
        }
    }
}

impl<W, R> StepMachine<R> for Fig3Machine<W, R>
where
    W: StepMachine<R> + Clone,
    R: Clone,
{
    fn step(&mut self, mem: &mut Mem) -> Step<R> {
        match self.phase {
            Phase::ReadContention => {
                if mem.read(self.addrs.contention) == 0 {
                    self.weak = self.template.clone();
                    self.phase = Phase::FastWeak;
                } else {
                    self.phase = Phase::SetFlag;
                }
                Step::Continue
            }
            Phase::FastWeak => match self.weak.step(mem) {
                Step::Continue => Step::Continue,
                Step::Done(Ok(resp)) => Step::Done(Ok(resp)),
                Step::Done(Err(_)) => {
                    self.phase = Phase::SetFlag;
                    Step::Continue
                }
            },
            Phase::SetFlag => {
                mem.write(self.addrs.flag(self.proc), 1);
                self.phase = Phase::WaitReadTurn;
                Step::Continue
            }
            Phase::WaitReadTurn => {
                self.turn_seen = mem.read(self.addrs.turn) as usize;
                self.phase = if self.turn_seen == self.proc {
                    Phase::TryLock
                } else {
                    Phase::WaitReadFlag
                };
                Step::Continue
            }
            Phase::WaitReadFlag => {
                self.phase = if mem.read(self.addrs.flag(self.turn_seen)) == 0 {
                    Phase::TryLock
                } else {
                    Phase::WaitReadTurn
                };
                Step::Continue
            }
            Phase::TryLock => {
                if mem.swap(self.addrs.lock, 1) == 0 {
                    self.phase = Phase::SetContention;
                }
                Step::Continue
            }
            Phase::SetContention => {
                mem.write(self.addrs.contention, 1);
                self.weak = self.template.clone();
                self.phase = Phase::LoopWeak;
                Step::Continue
            }
            Phase::LoopWeak => match self.weak.step(mem) {
                Step::Continue => Step::Continue,
                Step::Done(Ok(resp)) => {
                    self.result = Some(resp);
                    self.phase = Phase::ClearContention;
                    Step::Continue
                }
                Step::Done(Err(_)) => {
                    self.weak = self.template.clone();
                    Step::Continue
                }
            },
            Phase::ClearContention => {
                mem.write(self.addrs.contention, 0);
                self.phase = Phase::ClearFlag;
                Step::Continue
            }
            Phase::ClearFlag => {
                mem.write(self.addrs.flag(self.proc), 0);
                self.phase = Phase::ReadTurnForHandoff;
                Step::Continue
            }
            Phase::ReadTurnForHandoff => {
                self.turn_seen = mem.read(self.addrs.turn) as usize;
                self.phase = Phase::ReadFlagForHandoff;
                Step::Continue
            }
            Phase::ReadFlagForHandoff => {
                self.phase = if mem.read(self.addrs.flag(self.turn_seen)) == 0 {
                    Phase::AdvanceTurn
                } else {
                    Phase::Unlock
                };
                Step::Continue
            }
            Phase::AdvanceTurn => {
                mem.write(
                    self.addrs.turn,
                    ((self.turn_seen + 1) % self.addrs.n) as u64,
                );
                self.phase = Phase::Unlock;
                Step::Continue
            }
            Phase::Unlock => {
                mem.write(self.addrs.lock, 0);
                Step::Done(Ok(self.result.take().expect("result recorded in LoopWeak")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Bot;

    /// A two-step read-CAS increment as the weak operation.
    #[derive(Debug, Clone)]
    struct Incr {
        target: Addr,
        pc: u8,
        seen: u64,
    }

    impl StepMachine<u64> for Incr {
        fn step(&mut self, mem: &mut Mem) -> Step<u64> {
            match self.pc {
                0 => {
                    self.seen = mem.read(self.target);
                    self.pc = 1;
                    Step::Continue
                }
                _ => {
                    if mem.cas(self.target, self.seen, self.seen + 1) {
                        Step::Done(Ok(self.seen + 1))
                    } else {
                        Step::Done(Err(Bot))
                    }
                }
            }
        }
    }

    fn addrs() -> Fig3Addrs {
        // word 0: the counter; 1: CONTENTION; 2..4: FLAG; 4: TURN; 5: LOCK.
        Fig3Addrs {
            contention: 1,
            flag_base: 2,
            n: 2,
            turn: 4,
            lock: 5,
        }
    }

    fn initial_mem() -> Mem {
        Mem::new(vec![0; addrs().end()])
    }

    #[test]
    fn solo_fig3_over_counter_is_fast_path() {
        let mut mem = initial_mem();
        let mut m = Fig3Machine::new(
            addrs(),
            0,
            Incr {
                target: 0,
                pc: 0,
                seen: 0,
            },
        );
        let mut steps = 0;
        loop {
            steps += 1;
            match m.step(&mut mem) {
                Step::Continue => {}
                Step::Done(Ok(v)) => {
                    assert_eq!(v, 1);
                    break;
                }
                Step::Done(Err(_)) => unreachable!("Fig3 never returns ⊥"),
            }
        }
        // 1 CONTENTION read + 2 weak accesses.
        assert_eq!(steps, 3);
        assert_eq!(mem.read(addrs().lock), 0);
    }

    #[test]
    fn contended_fig3_goes_through_lock_and_releases() {
        let mut mem = initial_mem();
        mem.write(addrs().contention, 1); // force the slow path
        let mut m = Fig3Machine::new(
            addrs(),
            1,
            Incr {
                target: 0,
                pc: 0,
                seen: 0,
            },
        );
        let mut steps = 0;
        loop {
            steps += 1;
            assert!(steps < 100, "must terminate");
            if let Step::Done(result) = m.step(&mut mem) {
                assert_eq!(result, Ok(1));
                break;
            }
        }
        assert_eq!(mem.read(addrs().lock), 0, "lock released");
        assert_eq!(mem.read(addrs().flag(1)), 0, "flag lowered");
        assert_eq!(mem.read(addrs().contention), 0, "contention cleared");
        assert!(steps > 6, "took the slow path");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_proc() {
        let _ = Fig3Machine::<Incr, u64>::new(
            addrs(),
            2,
            Incr {
                target: 0,
                pc: 0,
                seen: 0,
            },
        );
    }
}
