//! The elimination exchange-slot protocol as step machines.
//!
//! `cso_stack::EliminationStack` uses a custom slot state machine
//! (`EMPTY → CLAIMED → WAITING → {BUSY → EMPTY, RETRACT → EMPTY}`)
//! to hand a value from a pusher to a popper without touching the
//! stack. Its safety argument — the state machine grants exclusive
//! item-cell access to one thread at a time — is transcribed and
//! exhaustively checked here: over every schedule, an item is either
//! exchanged exactly once or retracted intact, never lost or
//! duplicated.

use crate::machine::{Step, StepMachine};
use crate::mem::{Addr, Mem};

/// Slot states (low 32 bits; high 32 bits are the tag), mirroring
/// `cso_stack::elimination`.
pub const EMPTY: u64 = 0;
/// A pusher owns the cell and is writing its item.
pub const CLAIMED: u64 = 1;
/// An item is parked, available to a popper.
pub const WAITING: u64 = 2;
/// A popper owns the cell and is taking the item.
pub const BUSY: u64 = 3;
/// The pusher timed out and is reclaiming its item.
pub const RETRACT: u64 = 4;

fn pack(tag: u64, state: u64) -> u64 {
    (tag << 32) | state
}

fn unpack(word: u64) -> (u64, u64) {
    (word >> 32, word & 0xFFFF_FFFF)
}

/// Memory layout: the slot's state word and its item cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangerLayout {
    /// The packed (tag, state) word.
    pub state: Addr,
    /// The item cell (the model twin of the `UnsafeCell`).
    pub item: Addr,
}

impl ExchangerLayout {
    /// The canonical two-register layout.
    #[must_use]
    pub fn new() -> ExchangerLayout {
        ExchangerLayout { state: 0, item: 1 }
    }

    /// The initial memory (empty slot, tag 0).
    #[must_use]
    pub fn initial_mem(&self) -> Mem {
        Mem::new(vec![pack(0, EMPTY), 0])
    }
}

impl Default for ExchangerLayout {
    fn default() -> ExchangerLayout {
        ExchangerLayout::new()
    }
}

/// The outcome of one elimination visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExchangeResult {
    /// Pusher: the item was taken by a popper.
    Exchanged,
    /// Pusher: timed out, item reclaimed (carried value returned).
    Retracted(u32),
    /// Either side: the slot was not in a usable state; no effect.
    NoExchange,
    /// Popper: took this value.
    Took(u32),
    /// Popper: found nothing to take.
    Nothing,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PusherPc {
    ReadState,
    ClaimCas,
    WriteItem,
    SetWaiting,
    Poll(u32),
    RetractCas,
    TakeItemBack,
    SetEmptyAfterRetract,
}

/// A pusher's single visit to the slot: claim, park the item, poll
/// `polls` times, then retract.
#[derive(Debug, Clone)]
pub struct PusherMachine {
    layout: ExchangerLayout,
    value: u32,
    polls: u32,
    pc: PusherPc,
    tag: u64,
    word: u64,
}

impl PusherMachine {
    /// A pusher carrying `value` that waits `polls` polls.
    #[must_use]
    pub fn new(layout: ExchangerLayout, value: u32, polls: u32) -> PusherMachine {
        PusherMachine {
            layout,
            value,
            polls,
            pc: PusherPc::ReadState,
            tag: 0,
            word: 0,
        }
    }
}

impl StepMachine<ExchangeResult> for PusherMachine {
    fn step(&mut self, mem: &mut Mem) -> Step<ExchangeResult> {
        match self.pc {
            PusherPc::ReadState => {
                self.word = mem.read(self.layout.state);
                let (tag, state) = unpack(self.word);
                if state == EMPTY {
                    self.tag = tag;
                    self.pc = PusherPc::ClaimCas;
                    Step::Continue
                } else {
                    Step::Done(Ok(ExchangeResult::NoExchange))
                }
            }
            PusherPc::ClaimCas => {
                if mem.cas(self.layout.state, self.word, pack(self.tag, CLAIMED)) {
                    self.pc = PusherPc::WriteItem;
                    Step::Continue
                } else {
                    Step::Done(Ok(ExchangeResult::NoExchange))
                }
            }
            PusherPc::WriteItem => {
                // Exclusive window (CLAIMED): the model checks this by
                // the absence of racing writes in any schedule.
                mem.write(self.layout.item, u64::from(self.value));
                self.pc = PusherPc::SetWaiting;
                Step::Continue
            }
            PusherPc::SetWaiting => {
                mem.write(self.layout.state, pack(self.tag, WAITING));
                self.pc = PusherPc::Poll(0);
                Step::Continue
            }
            PusherPc::Poll(i) => {
                let (tag, state) = unpack(mem.read(self.layout.state));
                if tag != self.tag || state == BUSY {
                    return Step::Done(Ok(ExchangeResult::Exchanged));
                }
                self.pc = if i + 1 < self.polls {
                    PusherPc::Poll(i + 1)
                } else {
                    PusherPc::RetractCas
                };
                Step::Continue
            }
            PusherPc::RetractCas => {
                if mem.cas(
                    self.layout.state,
                    pack(self.tag, WAITING),
                    pack(self.tag, RETRACT),
                ) {
                    self.pc = PusherPc::TakeItemBack;
                    Step::Continue
                } else {
                    // The CAS lost: a popper committed first.
                    Step::Done(Ok(ExchangeResult::Exchanged))
                }
            }
            PusherPc::TakeItemBack => {
                let got = mem.read(self.layout.item) as u32;
                assert_eq!(
                    got, self.value,
                    "retract must reclaim the parked item intact"
                );
                self.pc = PusherPc::SetEmptyAfterRetract;
                Step::Continue
            }
            PusherPc::SetEmptyAfterRetract => {
                mem.write(self.layout.state, pack(self.tag + 1, EMPTY));
                Step::Done(Ok(ExchangeResult::Retracted(self.value)))
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PopperPc {
    ReadState,
    CasBusy,
    TakeItem,
    SetEmpty(u32),
}

/// A popper's single visit: find a `WAITING` slot, commit, take.
#[derive(Debug, Clone)]
pub struct PopperMachine {
    layout: ExchangerLayout,
    pc: PopperPc,
    word: u64,
    tag: u64,
}

impl PopperMachine {
    /// A fresh popper visit.
    #[must_use]
    pub fn new(layout: ExchangerLayout) -> PopperMachine {
        PopperMachine {
            layout,
            pc: PopperPc::ReadState,
            word: 0,
            tag: 0,
        }
    }
}

impl StepMachine<ExchangeResult> for PopperMachine {
    fn step(&mut self, mem: &mut Mem) -> Step<ExchangeResult> {
        match self.pc {
            PopperPc::ReadState => {
                self.word = mem.read(self.layout.state);
                let (tag, state) = unpack(self.word);
                if state == WAITING {
                    self.tag = tag;
                    self.pc = PopperPc::CasBusy;
                    Step::Continue
                } else {
                    Step::Done(Ok(ExchangeResult::Nothing))
                }
            }
            PopperPc::CasBusy => {
                if mem.cas(self.layout.state, self.word, pack(self.tag, BUSY)) {
                    self.pc = PopperPc::TakeItem;
                    Step::Continue
                } else {
                    Step::Done(Ok(ExchangeResult::Nothing))
                }
            }
            PopperPc::TakeItem => {
                let value = mem.read(self.layout.item) as u32;
                self.pc = PopperPc::SetEmpty(value);
                Step::Continue
            }
            PopperPc::SetEmpty(value) => {
                mem.write(self.layout.state, pack(self.tag + 1, EMPTY));
                Step::Done(Ok(ExchangeResult::Took(value)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{explore_exhaustive, ExploreConfig, Terminal};

    /// The protocol op: a pusher visit (with value) or a popper visit.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Visit {
        Push(u32),
        Pop,
    }

    #[derive(Clone)]
    enum Machine {
        Pusher(PusherMachine),
        Popper(PopperMachine),
    }

    impl StepMachine<ExchangeResult> for Machine {
        fn step(&mut self, mem: &mut Mem) -> Step<ExchangeResult> {
            match self {
                Machine::Pusher(m) => m.step(mem),
                Machine::Popper(m) => m.step(mem),
            }
        }
    }

    fn factory(polls: u32) -> impl Fn(usize, &Visit) -> Machine {
        move |_proc, visit| match visit {
            Visit::Push(v) => {
                Machine::Pusher(PusherMachine::new(ExchangerLayout::new(), *v, polls))
            }
            Visit::Pop => Machine::Popper(PopperMachine::new(ExchangerLayout::new())),
        }
    }

    fn results(t: &Terminal<Visit, ExchangeResult>) -> Vec<ExchangeResult> {
        t.history
            .operations()
            .iter()
            .map(|op| op.returned.as_ref().expect("complete").0)
            .collect()
    }

    /// One pusher, one popper, every schedule: the item is exchanged
    /// exactly once, retracted intact, or the popper legitimately
    /// misses — never lost, never duplicated.
    #[test]
    fn pusher_popper_exhaustive() {
        let layout = ExchangerLayout::new();
        for polls in [1u32, 2, 3] {
            let scripts = vec![vec![Visit::Push(42)], vec![Visit::Pop]];
            let stats = explore_exhaustive(
                &layout.initial_mem(),
                &scripts,
                factory(polls),
                &ExploreConfig::default(),
                |t| {
                    let rs = results(t);
                    let pusher = rs[0];
                    let popper = rs[1];
                    match (pusher, popper) {
                        (ExchangeResult::Exchanged, ExchangeResult::Took(v)) => {
                            assert_eq!(v, 42, "exchanged value intact");
                        }
                        (ExchangeResult::Retracted(v), ExchangeResult::Nothing) => {
                            assert_eq!(v, 42, "retracted value intact");
                        }
                        // The popper may miss while the pusher still
                        // succeeds later with... no: single visits.
                        (ExchangeResult::Exchanged, other) => {
                            panic!("pusher exchanged but popper got {other:?}")
                        }
                        (ExchangeResult::Retracted(_), other) => {
                            panic!("pusher retracted but popper got {other:?}")
                        }
                        (ExchangeResult::NoExchange, _) => {
                            panic!("a solo-slot pusher cannot fail to claim")
                        }
                        (p, q) => panic!("unexpected outcome pair {p:?} / {q:?}"),
                    }
                    // The slot always ends EMPTY (tag advanced on reuse).
                    let (_, state) = super::unpack(t.mem.read(layout.state));
                    assert_eq!(state, EMPTY, "slot must end empty");
                },
            );
            assert!(stats.executions > 10, "polls={polls}");
        }
    }

    /// Two pushers: at most one claims; the other reports NoExchange
    /// without touching the item cell.
    #[test]
    fn racing_pushers_never_corrupt_the_cell() {
        let layout = ExchangerLayout::new();
        let scripts = vec![vec![Visit::Push(1)], vec![Visit::Push(2)]];
        explore_exhaustive(
            &layout.initial_mem(),
            &scripts,
            factory(1),
            &ExploreConfig::default(),
            |t| {
                let rs = results(t);
                let retracted: Vec<u32> = rs
                    .iter()
                    .filter_map(|r| match r {
                        ExchangeResult::Retracted(v) => Some(*v),
                        _ => None,
                    })
                    .collect();
                let no_exchange = rs
                    .iter()
                    .filter(|r| matches!(r, ExchangeResult::NoExchange))
                    .count();
                // Exactly one pusher parks (and, with no popper,
                // retracts its own value); the loser backs off — or
                // the loser arrives after the winner fully retracted
                // and claims the recycled slot itself.
                assert!(retracted.len() + no_exchange == 2 && !retracted.is_empty());
                for v in retracted {
                    assert!(v == 1 || v == 2);
                }
            },
        );
    }

    /// Two poppers racing on one parked item: exactly one takes it.
    #[test]
    fn racing_poppers_take_at_most_once() {
        let layout = ExchangerLayout::new();
        // Pre-park an item by running a pusher solo up to WAITING.
        let mut mem = layout.initial_mem();
        let mut pusher = PusherMachine::new(layout, 7, 1_000);
        for _ in 0..4 {
            // ReadState, ClaimCas, WriteItem, SetWaiting.
            assert!(matches!(pusher.step(&mut mem), Step::Continue));
        }
        let scripts = vec![vec![Visit::Pop], vec![Visit::Pop]];
        explore_exhaustive(&mem, &scripts, factory(1), &ExploreConfig::default(), |t| {
            let takes = results(t)
                .iter()
                .filter(|r| matches!(r, ExchangeResult::Took(7)))
                .count();
            assert_eq!(takes, 1, "the parked item is taken exactly once");
        });
    }
}
