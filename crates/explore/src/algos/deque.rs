//! The abortable HLM deque as a step machine.
//!
//! `cso_deque::AbortableDeque` is the one algorithm in this workspace
//! whose single-attempt formulation we derived ourselves (from the
//! retry-loop original of the paper's ref \[8\]), so it gets the
//! strongest verification: this transcription is explored
//! *exhaustively* for small configurations, checking linearizability
//! against the linear-arena specification, the `LN⁺ DATA* RN⁺`
//! representation invariant, and the no-effect property of aborts.

use cso_memory::packed::{DequeState, DequeWord};

use crate::machine::{Bot, Step, StepMachine};
use crate::mem::{Addr, Mem};

/// Memory layout: slots `A[0..=m]` at addresses `0..=m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DequeLayout {
    /// The value capacity (arena size is `capacity + 2`).
    pub capacity: usize,
}

/// Builds the layout for a deque of the given capacity.
#[must_use]
pub fn deque_layout(capacity: usize) -> DequeLayout {
    assert!(capacity >= 1, "capacity must be positive");
    DequeLayout { capacity }
}

impl DequeLayout {
    /// Highest slot index `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.capacity + 1
    }

    /// Address of slot `i`.
    #[must_use]
    pub fn slot(&self, i: usize) -> Addr {
        i
    }

    /// The initial memory, nulls split as in
    /// `cso_deque::AbortableDeque::new`.
    #[must_use]
    pub fn initial_mem(&self) -> Mem {
        let left_block = 1 + self.capacity.div_ceil(2);
        let words = (0..=self.m())
            .map(|i| {
                let state = if i < left_block {
                    DequeState::LeftNull
                } else {
                    DequeState::RightNull
                };
                DequeWord {
                    state,
                    seq: 0,
                    value: 0,
                }
                .pack()
            })
            .collect();
        Mem::new(words)
    }
}

/// Which end an operation works on (model-side mirror of
/// `cso_deque::End`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelEnd {
    /// The `LN` side.
    Left,
    /// The `RN` side.
    Right,
}

/// A deque response in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelDequeResp {
    /// The value landed.
    Pushed,
    /// This side's null block is exhausted.
    Full,
    /// The value popped.
    Popped(u32),
    /// No values stored.
    Empty,
}

/// An operation for the deque machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MDequeOp {
    /// Push a value at an end.
    Push(ModelEnd, u32),
    /// Pop from an end.
    Pop(ModelEnd),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    /// Scanning for the boundary; `usize` is the next index to read.
    Scan(usize),
    /// Re-read the neighbour slot to validate a Full/Empty answer.
    ValidateNeighbour,
    /// Re-read the boundary slot to finish the validation.
    ValidateBoundary,
    /// First C&S (the bump).
    FirstCas,
    /// Second C&S (the conversion).
    SecondCas,
}

/// One attempt of an HLM deque operation, one access per step.
#[derive(Debug, Clone)]
pub struct WeakDequeMachine {
    layout: DequeLayout,
    op: MDequeOp,
    pc: Pc,
    /// The word read at the previous scan index (the neighbour).
    neighbour: DequeWord,
    /// The boundary word (`RN` for right ops, `LN` for left ops).
    boundary: DequeWord,
    /// Boundary index.
    k: usize,
}

impl WeakDequeMachine {
    /// A machine ready to run `op`.
    #[must_use]
    pub fn new(layout: DequeLayout, op: MDequeOp) -> WeakDequeMachine {
        let start = match Self::end_of(op) {
            ModelEnd::Right => 0,
            ModelEnd::Left => layout.m(),
        };
        WeakDequeMachine {
            layout,
            op,
            pc: Pc::Scan(start),
            neighbour: DequeWord {
                state: DequeState::LeftNull,
                seq: 0,
                value: 0,
            },
            boundary: DequeWord {
                state: DequeState::LeftNull,
                seq: 0,
                value: 0,
            },
            k: 0,
        }
    }

    fn end_of(op: MDequeOp) -> ModelEnd {
        match op {
            MDequeOp::Push(end, _) | MDequeOp::Pop(end) => end,
        }
    }

    /// Index of the neighbour slot for the current boundary.
    fn neighbour_index(&self) -> usize {
        match Self::end_of(self.op) {
            ModelEnd::Right => self.k - 1,
            ModelEnd::Left => self.k + 1,
        }
    }

    /// Is this word the null this end scans for?
    fn is_my_null(&self, word: DequeWord) -> bool {
        match Self::end_of(self.op) {
            ModelEnd::Right => word.state == DequeState::RightNull,
            ModelEnd::Left => word.state == DequeState::LeftNull,
        }
    }

    /// Is the boundary at this end's sentinel (push must answer Full)?
    fn at_sentinel(&self) -> bool {
        match Self::end_of(self.op) {
            ModelEnd::Right => self.k == self.layout.m(),
            ModelEnd::Left => self.k == 0,
        }
    }
}

impl StepMachine<ModelDequeResp> for WeakDequeMachine {
    fn step(&mut self, mem: &mut Mem) -> Step<ModelDequeResp> {
        let end = Self::end_of(self.op);
        match self.pc {
            Pc::Scan(i) => {
                let word = DequeWord::unpack(mem.read(self.layout.slot(i)));
                let first = match end {
                    ModelEnd::Right => i == 0,
                    ModelEnd::Left => i == self.layout.m(),
                };
                if first && self.is_my_null(word) {
                    // The far sentinel looks like our null: torn scan.
                    return Step::Done(Err(Bot));
                }
                if !first && self.is_my_null(word) {
                    self.k = i;
                    self.boundary = word;
                    // Decide the next phase locally.
                    return match self.op {
                        MDequeOp::Push(..) if self.at_sentinel() => {
                            self.pc = Pc::ValidateNeighbour;
                            Step::Continue
                        }
                        MDequeOp::Push(..) => {
                            self.pc = Pc::FirstCas;
                            Step::Continue
                        }
                        MDequeOp::Pop(_) => {
                            if self.neighbour.state == DequeState::Data {
                                self.pc = Pc::FirstCas;
                            } else {
                                // Neighbour is the opposite null: Empty.
                                self.pc = Pc::ValidateNeighbour;
                            }
                            Step::Continue
                        }
                    };
                }
                self.neighbour = word;
                let next = match end {
                    ModelEnd::Right => i + 1,
                    ModelEnd::Left => i.wrapping_sub(1),
                };
                if next > self.layout.m() {
                    // Ran off the arena without finding the null:
                    // torn scan under concurrency.
                    return Step::Done(Err(Bot));
                }
                self.pc = Pc::Scan(next);
                Step::Continue
            }
            Pc::ValidateNeighbour => {
                let word = DequeWord::unpack(mem.read(self.layout.slot(self.neighbour_index())));
                if word == self.neighbour {
                    self.pc = Pc::ValidateBoundary;
                    Step::Continue
                } else {
                    Step::Done(Err(Bot))
                }
            }
            Pc::ValidateBoundary => {
                let word = DequeWord::unpack(mem.read(self.layout.slot(self.k)));
                if word != self.boundary {
                    return Step::Done(Err(Bot));
                }
                Step::Done(Ok(match self.op {
                    MDequeOp::Push(..) => ModelDequeResp::Full,
                    MDequeOp::Pop(_) => ModelDequeResp::Empty,
                }))
            }
            Pc::FirstCas => {
                // Push bumps the neighbour; pop bumps the boundary.
                let (addr, old) = match self.op {
                    MDequeOp::Push(..) => (self.neighbour_index(), self.neighbour),
                    MDequeOp::Pop(_) => (self.k, self.boundary),
                };
                if mem.cas(self.layout.slot(addr), old.pack(), old.bumped().pack()) {
                    self.pc = Pc::SecondCas;
                    Step::Continue
                } else {
                    Step::Done(Err(Bot))
                }
            }
            Pc::SecondCas => match self.op {
                MDequeOp::Push(_, v) => {
                    let data = DequeWord {
                        state: DequeState::Data,
                        seq: self.boundary.seq.wrapping_add(1),
                        value: v,
                    };
                    if mem.cas(self.layout.slot(self.k), self.boundary.pack(), data.pack()) {
                        Step::Done(Ok(ModelDequeResp::Pushed))
                    } else {
                        Step::Done(Err(Bot))
                    }
                }
                MDequeOp::Pop(end) => {
                    let hole = DequeWord {
                        state: match end {
                            ModelEnd::Right => DequeState::RightNull,
                            ModelEnd::Left => DequeState::LeftNull,
                        },
                        seq: self.neighbour.seq.wrapping_add(1),
                        value: 0,
                    };
                    let addr = self.neighbour_index();
                    if mem.cas(self.layout.slot(addr), self.neighbour.pack(), hole.pack()) {
                        Step::Done(Ok(ModelDequeResp::Popped(self.neighbour.value)))
                    } else {
                        Step::Done(Err(Bot))
                    }
                }
            },
        }
    }
}

/// The factory the explorer uses to start deque operations.
pub fn weak_deque_factory(layout: DequeLayout) -> impl Fn(usize, &MDequeOp) -> WeakDequeMachine {
    move |_proc, op| WeakDequeMachine::new(layout, *op)
}

/// Pre-fills a memory by running solo right-push machines (the
/// test-setup twin of `AbortableDeque` construction + pushes).
///
/// # Panics
///
/// Panics if a push reports `Full` or aborts (impossible solo within
/// capacity).
pub fn prefill_right(mem: &mut Mem, layout: DequeLayout, values: &[u32]) {
    for &v in values {
        let mut machine = WeakDequeMachine::new(layout, MDequeOp::Push(ModelEnd::Right, v));
        loop {
            match machine.step(mem) {
                Step::Continue => {}
                Step::Done(Ok(ModelDequeResp::Pushed)) => break,
                other => panic!("prefill push failed: {other:?}"),
            }
        }
    }
}

/// Reads the arena back out of a terminal memory:
/// `(left_nulls, values-left-to-right, right_nulls)`; panics if the
/// `LN⁺ DATA* RN⁺` representation invariant is broken.
#[must_use]
pub fn abstract_deque(mem: &Mem, layout: &DequeLayout) -> (usize, Vec<u32>, usize) {
    let mut left = 0usize;
    let mut values = Vec::new();
    let mut right = 0usize;
    #[derive(PartialEq)]
    enum Zone {
        Left,
        Data,
        Right,
    }
    let mut zone = Zone::Left;
    for i in 0..=layout.m() {
        let word = DequeWord::unpack(mem.read(layout.slot(i)));
        match (word.state, &zone) {
            (DequeState::LeftNull, Zone::Left) => left += 1,
            (DequeState::Data, Zone::Left | Zone::Data) => {
                zone = Zone::Data;
                values.push(word.value);
            }
            (DequeState::RightNull, _) => {
                zone = Zone::Right;
                right += 1;
            }
            _ => panic!("representation invariant LN+ DATA* RN+ violated at slot {i}"),
        }
    }
    assert!(left >= 1 && right >= 1, "sentinels must survive");
    (left, values, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_solo(mem: &mut Mem, layout: DequeLayout, op: MDequeOp) -> ModelDequeResp {
        let mut machine = WeakDequeMachine::new(layout, op);
        loop {
            match machine.step(mem) {
                Step::Continue => {}
                Step::Done(Ok(resp)) => return resp,
                Step::Done(Err(_)) => panic!("solo attempts never abort"),
            }
        }
    }

    #[test]
    fn solo_deque_semantics() {
        let layout = deque_layout(2);
        let mut mem = layout.initial_mem();
        assert_eq!(
            run_solo(&mut mem, layout, MDequeOp::Push(ModelEnd::Right, 7)),
            ModelDequeResp::Pushed
        );
        assert_eq!(
            run_solo(&mut mem, layout, MDequeOp::Push(ModelEnd::Right, 8)),
            ModelDequeResp::Full
        );
        assert_eq!(
            run_solo(&mut mem, layout, MDequeOp::Push(ModelEnd::Left, 6)),
            ModelDequeResp::Pushed
        );
        let (l, values, r) = abstract_deque(&mem, &layout);
        assert_eq!((l, values.clone(), r), (1, vec![6, 7], 1));
        assert_eq!(
            run_solo(&mut mem, layout, MDequeOp::Pop(ModelEnd::Left)),
            ModelDequeResp::Popped(6)
        );
        assert_eq!(
            run_solo(&mut mem, layout, MDequeOp::Pop(ModelEnd::Left)),
            ModelDequeResp::Popped(7)
        );
        assert_eq!(
            run_solo(&mut mem, layout, MDequeOp::Pop(ModelEnd::Right)),
            ModelDequeResp::Empty
        );
    }

    /// The machine and the production code agree on a scripted
    /// sequence (transcription fidelity).
    #[test]
    fn machine_matches_production_code() {
        use cso_deque::{AbortableDeque, End};
        let layout = deque_layout(3);
        let mut mem = layout.initial_mem();
        let production: AbortableDeque<u32> = AbortableDeque::new(3);
        let script = [
            MDequeOp::Push(ModelEnd::Left, 1),
            MDequeOp::Push(ModelEnd::Right, 2),
            MDequeOp::Pop(ModelEnd::Right),
            MDequeOp::Push(ModelEnd::Right, 3),
            MDequeOp::Pop(ModelEnd::Left),
            MDequeOp::Pop(ModelEnd::Left),
            MDequeOp::Pop(ModelEnd::Left),
            MDequeOp::Push(ModelEnd::Left, 4),
        ];
        for op in script {
            let model = run_solo(&mut mem, layout, op);
            let real = match op {
                MDequeOp::Push(e, v) => {
                    let end = if e == ModelEnd::Left {
                        End::Left
                    } else {
                        End::Right
                    };
                    match production.try_push(end, v).unwrap() {
                        cso_deque::DequePushOutcome::Pushed => ModelDequeResp::Pushed,
                        cso_deque::DequePushOutcome::Full => ModelDequeResp::Full,
                    }
                }
                MDequeOp::Pop(e) => {
                    let end = if e == ModelEnd::Left {
                        End::Left
                    } else {
                        End::Right
                    };
                    match production.try_pop(end).unwrap() {
                        cso_deque::DequePopOutcome::Popped(v) => ModelDequeResp::Popped(v),
                        cso_deque::DequePopOutcome::Empty => ModelDequeResp::Empty,
                    }
                }
            };
            assert_eq!(model, real, "model/production divergence on {op:?}");
        }
    }
}
