//! Exhaustive and randomized model checking of the paper's algorithms
//! (experiments V1, V2 and V3 of `DESIGN.md`).
//!
//! Every test enumerates (or samples) schedules of the step-machine
//! transcriptions and checks, per terminal execution:
//! * linearizability of the history with aborted ops dropped (Lemma 1
//!   / Theorem 1 safety);
//! * agreement between the final virtual memory and the linearization
//!   witness (aborts had no effect; helping corrupted no slot);
//! * the abortability contract (solo never aborts; abort counts are
//!   bounded by the contention).

use cso_explore::algos::cs_stack::{cs_stack_layout, strong_stack_factory};
use cso_explore::algos::queue::{queue_layout, weak_queue_factory};
use cso_explore::algos::stack::{stack_layout, weak_stack_factory};
use cso_explore::explorer::{explore_exhaustive, explore_random, ExploreConfig};
use cso_explore::invariants::{check_queue_terminal, check_stack_terminal};
use cso_lincheck::specs::queue::SpecQueueOp;
use cso_lincheck::specs::stack::SpecStackOp;

// ---------------------------------------------------------------
// V1/V2 — Figure 1 (weak stack), exhaustive.
// ---------------------------------------------------------------

#[test]
fn exhaustive_two_racing_pushes() {
    let layout = stack_layout(4);
    let scripts = vec![vec![SpecStackOp::Push(1)], vec![SpecStackOp::Push(2)]];
    let mut max_aborts = 0;
    let stats = explore_exhaustive(
        &layout.initial_mem(),
        &scripts,
        weak_stack_factory(layout),
        &ExploreConfig::default(),
        |t| {
            check_stack_terminal(4, &[], &layout, t);
            max_aborts = max_aborts.max(t.aborted);
        },
    );
    assert_eq!(stats.pruned, 0);
    assert!(stats.executions >= 252, "C(10,5) schedules at least");
    assert_eq!(
        max_aborts, 1,
        "at least one of two racing pushes always wins"
    );
}

#[test]
fn exhaustive_push_racing_pop_on_prefilled_stack() {
    let layout = stack_layout(4);
    let scripts = vec![vec![SpecStackOp::Push(9)], vec![SpecStackOp::Pop]];
    explore_exhaustive(
        &layout.initial_mem_with(&[5, 6]),
        &scripts,
        weak_stack_factory(layout),
        &ExploreConfig::default(),
        |t| check_stack_terminal(4, &[5, 6], &layout, t),
    );
}

#[test]
fn exhaustive_push_racing_pop_on_empty_stack() {
    let layout = stack_layout(2);
    let scripts = vec![vec![SpecStackOp::Push(9)], vec![SpecStackOp::Pop]];
    let mut saw_empty_pop = false;
    let mut saw_popped_nine = false;
    explore_exhaustive(
        &layout.initial_mem(),
        &scripts,
        weak_stack_factory(layout),
        &ExploreConfig::default(),
        |t| {
            check_stack_terminal(2, &[], &layout, t);
            for op in t.history.operations() {
                match op.returned.as_ref().map(|(r, _)| *r) {
                    Some(cso_lincheck::specs::stack::SpecStackResp::Empty) => {
                        saw_empty_pop = true;
                    }
                    Some(cso_lincheck::specs::stack::SpecStackResp::Popped(9)) => {
                        saw_popped_nine = true;
                    }
                    _ => {}
                }
            }
        },
    );
    assert!(saw_empty_pop, "some schedule pops before the push lands");
    assert!(saw_popped_nine, "some schedule pops the pushed value");
}

#[test]
fn exhaustive_two_ops_per_process() {
    let layout = stack_layout(4);
    let scripts = vec![
        vec![SpecStackOp::Push(1), SpecStackOp::Pop],
        vec![SpecStackOp::Push(2), SpecStackOp::Pop],
    ];
    let stats = explore_exhaustive(
        &layout.initial_mem(),
        &scripts,
        weak_stack_factory(layout),
        &ExploreConfig::default(),
        |t| check_stack_terminal(4, &[], &layout, t),
    );
    assert_eq!(stats.pruned, 0);
    assert!(
        stats.executions > 10_000,
        "a genuinely large schedule space"
    );
}

#[test]
fn exhaustive_three_processes() {
    let layout = stack_layout(4);
    let scripts = vec![
        vec![SpecStackOp::Push(1)],
        vec![SpecStackOp::Push(2)],
        vec![SpecStackOp::Pop],
    ];
    let mut aborts_seen = [false; 3];
    explore_exhaustive(
        &layout.initial_mem_with(&[7]),
        &scripts,
        weak_stack_factory(layout),
        &ExploreConfig::default(),
        |t| {
            check_stack_terminal(4, &[7], &layout, t);
            aborts_seen[t.aborted.min(2)] = true;
        },
    );
    assert!(
        aborts_seen[0] && aborts_seen[1],
        "both quiet and contended schedules exist"
    );
}

#[test]
fn exhaustive_full_boundary() {
    let layout = stack_layout(1);
    let scripts = vec![vec![SpecStackOp::Push(1)], vec![SpecStackOp::Push(2)]];
    let mut full_seen = false;
    explore_exhaustive(
        &layout.initial_mem(),
        &scripts,
        weak_stack_factory(layout),
        &ExploreConfig::default(),
        |t| {
            check_stack_terminal(1, &[], &layout, t);
            for op in t.history.operations() {
                if matches!(
                    op.returned.as_ref().map(|(r, _)| *r),
                    Some(cso_lincheck::specs::stack::SpecStackResp::Full)
                ) {
                    full_seen = true;
                }
            }
        },
    );
    assert!(
        full_seen,
        "capacity-1 stack must report Full in some schedule"
    );
}

/// V2 — solo executions: exactly 5 accesses, never ⊥ (exhaustive over
/// the single schedule).
#[test]
fn solo_executions_are_five_accesses_and_never_abort() {
    let layout = stack_layout(4);
    for op in [SpecStackOp::Push(1), SpecStackOp::Pop] {
        let scripts = vec![vec![op]];
        let stats = explore_exhaustive(
            &layout.initial_mem_with(&[3]),
            &scripts,
            weak_stack_factory(layout),
            &ExploreConfig::default(),
            |t| {
                assert_eq!(t.aborted, 0);
                assert_eq!(t.op_steps[0].steps, 5);
            },
        );
        assert_eq!(stats.executions, 1, "solo scripts have a single schedule");
    }
}

// ---------------------------------------------------------------
// Queue analogues, including the non-interference theorem.
// ---------------------------------------------------------------

#[test]
fn exhaustive_two_racing_enqueues() {
    let layout = queue_layout(4);
    let scripts = vec![vec![SpecQueueOp::Enqueue(1)], vec![SpecQueueOp::Enqueue(2)]];
    let mut max_aborts = 0;
    explore_exhaustive(
        &layout.initial_mem(),
        &scripts,
        weak_queue_factory(layout),
        &ExploreConfig::default(),
        |t| {
            check_queue_terminal(4, &[], &layout, t);
            max_aborts = max_aborts.max(t.aborted);
        },
    );
    assert_eq!(max_aborts, 1);
}

#[test]
fn exhaustive_two_racing_dequeues() {
    let layout = queue_layout(4);
    let scripts = vec![vec![SpecQueueOp::Dequeue], vec![SpecQueueOp::Dequeue]];
    explore_exhaustive(
        &layout.initial_mem_with(&[8, 9]),
        &scripts,
        weak_queue_factory(layout),
        &ExploreConfig::default(),
        |t| check_queue_terminal(4, &[8, 9], &layout, t),
    );
}

/// **The paper's §1.1 non-interference example, verified exhaustively:**
/// on a non-empty, non-full queue, a concurrent enqueue and dequeue
/// never abort each other — in *any* schedule.
#[test]
fn enqueue_and_dequeue_never_interfere_in_any_schedule() {
    let layout = queue_layout(4);
    let scripts = vec![vec![SpecQueueOp::Enqueue(9)], vec![SpecQueueOp::Dequeue]];
    let stats = explore_exhaustive(
        &layout.initial_mem_with(&[5, 6]),
        &scripts,
        weak_queue_factory(layout),
        &ExploreConfig::default(),
        |t| {
            assert_eq!(
                t.aborted, 0,
                "enqueue and dequeue on a non-empty non-full queue are non-interfering"
            );
            check_queue_terminal(4, &[5, 6], &layout, t);
        },
    );
    assert!(stats.executions >= 900, "C(12,6) = 924 schedules");
}

/// At the Empty boundary the same pair *can* interfere (the dequeue's
/// emptiness re-validation races the enqueue) — aborts may appear,
/// but linearizability must hold throughout.
#[test]
fn empty_boundary_enqueue_dequeue_race() {
    let layout = queue_layout(2);
    let scripts = vec![vec![SpecQueueOp::Enqueue(9)], vec![SpecQueueOp::Dequeue]];
    explore_exhaustive(
        &layout.initial_mem(),
        &scripts,
        weak_queue_factory(layout),
        &ExploreConfig::default(),
        |t| check_queue_terminal(2, &[], &layout, t),
    );
}

#[test]
fn solo_queue_ops_are_six_accesses() {
    let layout = queue_layout(4);
    for (op, prefill, expected) in [
        (SpecQueueOp::Enqueue(1), vec![], 6),
        (SpecQueueOp::Dequeue, vec![5u32], 6),
    ] {
        let scripts = vec![vec![op]];
        explore_exhaustive(
            &layout.initial_mem_with(&prefill),
            &scripts,
            weak_queue_factory(layout),
            &ExploreConfig::default(),
            |t| {
                assert_eq!(t.aborted, 0);
                assert_eq!(t.op_steps[0].steps, expected);
            },
        );
    }
}

// ---------------------------------------------------------------
// V1/V3 — Figure 3 (strong stack), randomized + solo.
// ---------------------------------------------------------------

/// Theorem 1 in the model: solo strong operations are exactly six
/// accesses and lock-free.
#[test]
fn solo_strong_ops_are_six_accesses() {
    let layout = cs_stack_layout(4, 2);
    let scripts = vec![vec![SpecStackOp::Push(1), SpecStackOp::Pop]];
    explore_exhaustive(
        &layout.initial_mem(),
        &scripts,
        strong_stack_factory(layout),
        &ExploreConfig::default(),
        |t| {
            assert_eq!(t.aborted, 0);
            assert!(t.op_steps.iter().all(|s| s.steps == 6), "{:?}", t.op_steps);
            assert_eq!(t.mem.read(layout.lock()), 0);
        },
    );
}

/// Randomized sweep over Figure 3 schedules: strong operations never
/// return ⊥ and every sampled execution is linearizable, with the
/// final memory matching the witness.
#[test]
fn random_strong_stack_runs_are_linearizable() {
    let layout = cs_stack_layout(8, 3);
    let scripts = vec![
        vec![SpecStackOp::Push(1), SpecStackOp::Pop],
        vec![SpecStackOp::Push(2), SpecStackOp::Push(3)],
        vec![SpecStackOp::Pop, SpecStackOp::Push(4)],
    ];
    let config = ExploreConfig {
        max_steps_per_op: 5_000,
        max_executions: usize::MAX,
    };
    let stats = explore_random(
        &layout.initial_mem(),
        &scripts,
        strong_stack_factory(layout),
        &config,
        1_000,
        0xC50,
        |t| {
            assert_eq!(t.aborted, 0, "strong operations never return ⊥ (Lemma 1)");
            // Linearizability + memory agreement, via the embedded
            // weak-stack layout.
            check_stack_terminal(8, &[], &layout.stack, t);
            // The lock is always released.
            assert_eq!(t.mem.read(layout.lock()), 0);
            // Every flag is lowered.
            for i in 0..layout.n {
                assert_eq!(t.mem.read(layout.flag(i)), 0);
            }
        },
    );
    assert_eq!(
        stats.executions, 1_000,
        "no sampled schedule may exceed the step budget"
    );
}

/// The queue twin: random schedules of the full Figure 3 queue
/// machine are linearizable, never ⊥, and leave the coordination
/// registers clean.
#[test]
fn random_strong_queue_runs_are_linearizable() {
    use cso_explore::algos::cs_queue::{cs_queue_layout, strong_queue_factory};
    let layout = cs_queue_layout(8, 3);
    let scripts = vec![
        vec![SpecQueueOp::Enqueue(1), SpecQueueOp::Dequeue],
        vec![SpecQueueOp::Enqueue(2), SpecQueueOp::Enqueue(3)],
        vec![SpecQueueOp::Dequeue, SpecQueueOp::Enqueue(4)],
    ];
    let config = ExploreConfig {
        max_steps_per_op: 5_000,
        max_executions: usize::MAX,
    };
    let stats = explore_random(
        &layout.initial_mem_with(&[9]),
        &scripts,
        strong_queue_factory(layout),
        &config,
        800,
        0xC5,
        |t| {
            assert_eq!(t.aborted, 0, "strong operations never return ⊥");
            check_queue_terminal(8, &[9], &layout.queue, t);
            assert_eq!(t.mem.read(layout.lock()), 0);
        },
    );
    assert_eq!(stats.executions, 800);
}

/// The CONTENTION flag really diverts contended operations: in random
/// schedules of many processes, some operations take the lock path
/// (observable as step counts well above the 6-access fast path).
#[test]
fn random_runs_exercise_both_paths() {
    let layout = cs_stack_layout(8, 3);
    let scripts = vec![
        vec![SpecStackOp::Push(1)],
        vec![SpecStackOp::Push(2)],
        vec![SpecStackOp::Push(3)],
    ];
    let config = ExploreConfig {
        max_steps_per_op: 5_000,
        max_executions: usize::MAX,
    };
    let mut fast = 0u32;
    let mut slow = 0u32;
    explore_random(
        &layout.initial_mem(),
        &scripts,
        strong_stack_factory(layout),
        &config,
        500,
        7,
        |t| {
            for op in &t.op_steps {
                if op.steps == 6 {
                    fast += 1;
                } else {
                    slow += 1;
                }
            }
        },
    );
    assert!(fast > 0, "some operations complete on the fast path");
    assert!(slow > 0, "some operations fall back to the lock path");
}
