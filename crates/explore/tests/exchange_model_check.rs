//! Model-checking the elimination exchanger's slot protocol.
//!
//! `cso_memory::exchange` rests on a per-slot state machine:
//!
//! ```text
//! EMPTY ──claim CAS──▶ CLAIMED ──publish──▶ WAITING ──taker CAS──▶ BUSY
//!    ▲                                         │                     │
//!    │                                   retract CAS             read item
//!    └────── tag+1 ◀── RETRACT ◀───────────────┘        tag+1 ◀──────┘
//! ```
//!
//! The decisive race is `WAITING`: the offeror's retract CAS (poll
//! budget exhausted) against the taker's BUSY CAS — exactly one may
//! win, and the parked item must go to the winner. The tag in the
//! high bits increments on every recycle so a stale CAS from a
//! previous occupancy can never succeed (the anti-ABA guard).
//!
//! This test hand-compiles offer and take into one-shared-access-per-
//! step machines over the virtual memory and explores schedules:
//! exhaustively for the offer/take pair and the two-offeror claim
//! race, randomized for three processes. Invariants on every terminal
//! execution:
//!
//! * **Slot recycles** — the slot is `EMPTY` once all operations
//!   finish; no schedule strands it in `CLAIMED`/`WAITING`/`BUSY`.
//! * **Exactly-once exchange** — completed offers and completed takes
//!   pair up one-to-one, and each take returns a distinct offered
//!   value (nothing lost, nothing duplicated).
//! * **No item leak** — a retracting offeror gets its own value back
//!   (modelled as the ⊥/no-effect outcome: the item never moved).

use cso_explore::explorer::{explore_exhaustive, explore_random, ExploreConfig, Terminal};
use cso_explore::machine::{Bot, Step, StepMachine};
use cso_explore::mem::Mem;

// Slot states (low byte of the slot word; the recycle tag lives in
// the high bits, mirroring the real packed `(tag << 32) | state`).
const EMPTY: u64 = 0;
const CLAIMED: u64 = 1;
const WAITING: u64 = 2;
const BUSY: u64 = 3;
const RETRACT: u64 = 4;

/// Address of the slot's packed state word.
const SLOT: usize = 0;
/// Address of the slot's item cell (the `UnsafeCell` in the real
/// code; its accesses happen only inside exclusive state windows).
const ITEM: usize = 1;

fn pack(tag: u64, state: u64) -> u64 {
    state | (tag << 8)
}

fn state_of(word: u64) -> u64 {
    word & 0xFF
}

fn tag_of(word: u64) -> u64 {
    word >> 8
}

fn initial_mem() -> Mem {
    Mem::new(vec![0; 2])
}

/// One exchanger operation: park `value` and wait `polls` iterations
/// (an offer), or scan for a parked partner `polls` times (a take).
#[derive(Debug, Clone, PartialEq, Eq)]
enum ExchangeOp {
    Offer { value: u64, polls: u32 },
    Take { polls: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    /// Read the slot word to decide what to do.
    Read,
    /// Offer: try to move EMPTY → CLAIMED.
    ClaimCas(u64),
    /// Offer: park the item in the exclusive CLAIMED window.
    WriteItem(u64),
    /// Offer: publish WAITING.
    Publish(u64),
    /// Offer: poll for a taker; the payload is the published tag.
    Poll(u64, u32),
    /// Offer: poll budget exhausted — try WAITING → RETRACT.
    RetractCas(u64),
    /// Offer: exclusive RETRACT window — take the item back.
    TakeBack(u64),
    /// Offer: recycle the slot after a retract (tag bump).
    RecycleRetract(u64),
    /// Take: try WAITING → BUSY.
    BusyCas(u64),
    /// Take: exclusive BUSY window — read the parked item.
    ReadItem(u64),
    /// Take: recycle the slot (tag bump); payload carries the item.
    Recycle(u64, u64),
}

#[derive(Debug, Clone)]
struct ExchangeMachine {
    op: ExchangeOp,
    pc: Pc,
    /// Take-side retries left (each failed scan costs one).
    scans_left: u32,
}

impl ExchangeMachine {
    fn new(op: ExchangeOp) -> ExchangeMachine {
        let scans_left = match op {
            ExchangeOp::Offer { .. } => 0,
            ExchangeOp::Take { polls } => polls,
        };
        ExchangeMachine {
            op,
            pc: Pc::Read,
            scans_left,
        }
    }
}

impl StepMachine<u64> for ExchangeMachine {
    fn step(&mut self, mem: &mut Mem) -> Step<u64> {
        match self.pc {
            Pc::Read => {
                let word = mem.read(SLOT);
                match self.op {
                    ExchangeOp::Offer { .. } => {
                        if state_of(word) == EMPTY {
                            self.pc = Pc::ClaimCas(word);
                            Step::Continue
                        } else {
                            // Occupied slot: the real offer declines.
                            Step::Done(Err(Bot))
                        }
                    }
                    ExchangeOp::Take { .. } => {
                        if state_of(word) == WAITING {
                            self.pc = Pc::BusyCas(word);
                            Step::Continue
                        } else if self.scans_left > 0 {
                            self.scans_left -= 1;
                            Step::Continue
                        } else {
                            // Nothing parked: the real take returns None.
                            Step::Done(Err(Bot))
                        }
                    }
                }
            }
            Pc::ClaimCas(word) => {
                let tag = tag_of(word);
                if mem.cas(SLOT, word, pack(tag, CLAIMED)) {
                    self.pc = Pc::WriteItem(tag);
                } else {
                    // Lost the claim race: decline.
                    return Step::Done(Err(Bot));
                }
                Step::Continue
            }
            Pc::WriteItem(tag) => {
                let ExchangeOp::Offer { value, .. } = self.op else {
                    unreachable!("only offers write items");
                };
                mem.write(ITEM, value);
                self.pc = Pc::Publish(tag);
                Step::Continue
            }
            Pc::Publish(tag) => {
                mem.write(SLOT, pack(tag, WAITING));
                let ExchangeOp::Offer { polls, .. } = self.op else {
                    unreachable!("only offers publish");
                };
                self.pc = Pc::Poll(tag, polls);
                Step::Continue
            }
            Pc::Poll(tag, left) => {
                let word = mem.read(SLOT);
                if tag_of(word) != tag || state_of(word) == BUSY {
                    // A taker committed: the item is theirs.
                    return Step::Done(Ok(0));
                }
                if left == 0 {
                    self.pc = Pc::RetractCas(tag);
                } else {
                    self.pc = Pc::Poll(tag, left - 1);
                }
                Step::Continue
            }
            Pc::RetractCas(tag) => {
                if mem.cas(SLOT, pack(tag, WAITING), pack(tag, RETRACT)) {
                    self.pc = Pc::TakeBack(tag);
                    Step::Continue
                } else {
                    // The retract lost: a taker got there first.
                    Step::Done(Ok(0))
                }
            }
            Pc::TakeBack(tag) => {
                let got = mem.read(ITEM);
                let ExchangeOp::Offer { value, .. } = self.op else {
                    unreachable!("only offers retract");
                };
                assert_eq!(got, value, "a retract must recover the parked item");
                self.pc = Pc::RecycleRetract(tag);
                Step::Continue
            }
            Pc::RecycleRetract(tag) => {
                mem.write(SLOT, pack(tag.wrapping_add(1), EMPTY));
                // No exchange happened: the offer had no effect.
                Step::Done(Err(Bot))
            }
            Pc::BusyCas(word) => {
                let tag = tag_of(word);
                if mem.cas(SLOT, word, pack(tag, BUSY)) {
                    self.pc = Pc::ReadItem(tag);
                    Step::Continue
                } else if self.scans_left > 0 {
                    self.scans_left -= 1;
                    self.pc = Pc::Read;
                    Step::Continue
                } else {
                    Step::Done(Err(Bot))
                }
            }
            Pc::ReadItem(tag) => {
                let item = mem.read(ITEM);
                self.pc = Pc::Recycle(tag, item);
                Step::Continue
            }
            Pc::Recycle(tag, item) => {
                mem.write(SLOT, pack(tag.wrapping_add(1), EMPTY));
                Step::Done(Ok(item))
            }
        }
    }
}

/// The per-terminal invariants; see the module docs.
fn check_terminal(terminal: &Terminal<ExchangeOp, u64>, offered: &[u64]) {
    assert_eq!(
        state_of(terminal.mem.read(SLOT)),
        EMPTY,
        "slot stranded in a non-EMPTY state"
    );

    // Completed (non-⊥) operations pair up: every take's value is a
    // distinct offered value, and the counts match.
    let mut taken: Vec<u64> = Vec::new();
    let mut offers_ok = 0usize;
    for op in terminal.history.operations() {
        let (resp, _) = op.returned.as_ref().expect("terminal ops are complete");
        match op.op {
            ExchangeOp::Offer { .. } => offers_ok += 1,
            ExchangeOp::Take { .. } => taken.push(*resp),
        }
    }
    assert_eq!(
        offers_ok,
        taken.len(),
        "offers and takes must complete in pairs"
    );
    taken.sort_unstable();
    taken.dedup();
    assert_eq!(taken.len(), offers_ok, "a value was taken twice");
    for v in &taken {
        assert!(offered.contains(v), "take returned a never-offered value");
    }
}

/// The decisive WAITING race, deterministically: the offeror parks,
/// the taker commits BUSY, the offeror's poll observes it.
#[test]
fn deterministic_rendezvous() {
    let mut mem = initial_mem();
    let mut offeror = ExchangeMachine::new(ExchangeOp::Offer { value: 7, polls: 2 });
    let mut taker = ExchangeMachine::new(ExchangeOp::Take { polls: 2 });

    // Offer: read, claim, park, publish.
    for _ in 0..4 {
        assert_eq!(offeror.step(&mut mem), Step::Continue);
    }
    assert_eq!(state_of(mem.read(SLOT)), WAITING);

    // Take: read (sees WAITING), BUSY CAS, read item, recycle.
    let took = loop {
        match taker.step(&mut mem) {
            Step::Continue => {}
            Step::Done(resp) => break resp.expect("taker commits"),
        }
    };
    assert_eq!(took, 7);
    assert_eq!(state_of(mem.read(SLOT)), EMPTY);
    assert_eq!(tag_of(mem.read(SLOT)), 1, "recycle bumps the tag");

    // The offeror's next poll observes the exchange.
    let offered = loop {
        match offeror.step(&mut mem) {
            Step::Continue => {}
            Step::Done(resp) => break resp,
        }
    };
    assert_eq!(offered, Ok(0), "the offeror sees the taker's commit");
}

/// A retract that races nobody, deterministically: the poll budget
/// runs dry, the retract CAS wins, the item comes back, the slot
/// recycles with a bumped tag.
#[test]
fn deterministic_retract_recovers_the_item() {
    let mut mem = initial_mem();
    let mut offeror = ExchangeMachine::new(ExchangeOp::Offer { value: 9, polls: 1 });
    let out = loop {
        match offeror.step(&mut mem) {
            Step::Continue => {}
            Step::Done(resp) => break resp,
        }
    };
    assert_eq!(out, Err(Bot), "no partner: the offer has no effect");
    assert_eq!(state_of(mem.read(SLOT)), EMPTY);
    assert_eq!(tag_of(mem.read(SLOT)), 1, "retract recycle bumps the tag");
}

fn exhaustive_config() -> ExploreConfig {
    ExploreConfig {
        // An offer runs read + claim + park + publish + polls + the
        // retract triple; a take runs scans + BUSY + read + recycle.
        // 12 covers every interesting chain at polls ≤ 3.
        max_steps_per_op: 12,
        max_executions: 6_000_000,
    }
}

/// Every interleaving of one offer against one take: rendezvous,
/// missed windows, and the retract-vs-BUSY race all keep the
/// invariants.
#[test]
fn exhaustive_offer_take_race() {
    let scripts = vec![
        vec![ExchangeOp::Offer { value: 7, polls: 3 }],
        vec![ExchangeOp::Take { polls: 3 }],
    ];
    let config = exhaustive_config();
    let mut exchanged = 0usize;
    let mut missed = 0usize;
    let stats = explore_exhaustive(
        &initial_mem(),
        &scripts,
        |_, op: &ExchangeOp| ExchangeMachine::new(op.clone()),
        &config,
        |terminal| {
            check_terminal(terminal, &[7]);
            if terminal.aborted == 0 {
                exchanged += 1;
            } else {
                missed += 1;
            }
        },
    );
    assert!(stats.executions > 100, "got {}", stats.executions);
    assert!(
        stats.executions < config.max_executions,
        "hit the execution cap — the exploration was not exhaustive"
    );
    assert!(exchanged > 0, "no schedule ever paired the couple");
    assert!(missed > 0, "no schedule ever missed the window");
}

/// Every interleaving of two offers racing for the one slot: at most
/// one claims; the loser declines with its value intact.
#[test]
fn exhaustive_two_offeror_claim_race() {
    let scripts = vec![
        vec![ExchangeOp::Offer { value: 7, polls: 2 }],
        vec![ExchangeOp::Offer { value: 9, polls: 2 }],
    ];
    let config = exhaustive_config();
    let stats = explore_exhaustive(
        &initial_mem(),
        &scripts,
        |_, op: &ExchangeOp| ExchangeMachine::new(op.clone()),
        &config,
        |terminal| {
            // With no taker, no offer may complete as an exchange.
            assert_eq!(
                terminal.history.operations().len(),
                0,
                "an offer claimed an exchange with no taker"
            );
            assert_eq!(state_of(terminal.mem.read(SLOT)), EMPTY);
        },
    );
    // The loser usually declines within two steps, so the full
    // schedule tree is small — but it must still be fully explored.
    assert!(stats.executions > 20, "got {}", stats.executions);
    assert!(
        stats.executions < config.max_executions,
        "hit the execution cap — the exploration was not exhaustive"
    );
}

/// Three processes (two offerors, one taker) under randomized
/// schedules: whatever pairs, pairs exactly once.
#[test]
fn random_three_process_exchange() {
    let scripts = vec![
        vec![ExchangeOp::Offer { value: 7, polls: 6 }],
        vec![ExchangeOp::Offer { value: 9, polls: 6 }],
        vec![ExchangeOp::Take { polls: 6 }],
    ];
    let config = ExploreConfig {
        max_steps_per_op: 120,
        max_executions: usize::MAX,
    };
    let mut exchanged = 0usize;
    let stats = explore_random(
        &initial_mem(),
        &scripts,
        |_, op: &ExchangeOp| ExchangeMachine::new(op.clone()),
        &config,
        4_000,
        0xE11A,
        |terminal| {
            check_terminal(terminal, &[7, 9]);
            exchanged += terminal.history.operations().len();
        },
    );
    assert!(stats.executions > 3_000, "got {}", stats.executions);
    assert!(exchanged > 0, "no random schedule ever exchanged");
}
