//! §5 of the paper: "the reader can easily verify that these
//! algorithms still work despite process crashes **if no process
//! crashes while holding the lock**."
//!
//! In the model a crash is simply a process the scheduler never picks
//! again. We freeze a process at every possible point of its
//! operation and check the survivor:
//!
//! * Figure 1 (lock-free): the survivor completes no matter where the
//!   victim crashed — even mid-help, because helping is idempotent
//!   and `TOP` is the single authority;
//! * Figure 3 fast path: same;
//! * Figure 3 **inside the lock**: the survivor blocks — the caveat
//!   the paper states, demonstrated rather than assumed.

use cso_explore::algos::cs_queue::{cs_queue_layout, strong_queue_machine};
use cso_explore::algos::cs_stack::{cs_stack_layout, strong_stack_machine};
use cso_explore::algos::deque::{
    abstract_deque, deque_layout, prefill_right, MDequeOp, ModelDequeResp, ModelEnd,
    WeakDequeMachine,
};
use cso_explore::algos::queue::{queue_layout, WeakQueueMachine};
use cso_explore::algos::stack::{stack_layout, WeakStackMachine};
use cso_explore::machine::{Step, StepMachine};
use cso_explore::mem::Mem;
use cso_lincheck::specs::queue::{SpecQueueOp, SpecQueueResp};
use cso_lincheck::specs::stack::{SpecStackOp, SpecStackResp};

/// Steps `victim` exactly `crash_after` times, then runs `survivor`
/// alone; returns the survivor's result and how many steps it took,
/// or `None` if it exceeded `budget` (i.e. it was blocked).
fn crash_scenario<M: StepMachine<R>, R>(
    mem: &mut Mem,
    victim: &mut M,
    crash_after: usize,
    survivor: &mut M,
    budget: usize,
) -> Option<(Result<R, cso_explore::machine::Bot>, usize)> {
    for _ in 0..crash_after {
        match victim.step(mem) {
            Step::Continue => {}
            Step::Done(_) => break, // op finished before the crash point
        }
    }
    // The victim is now frozen forever; the survivor runs solo.
    for steps in 1..=budget {
        if let Step::Done(result) = survivor.step(mem) {
            return Some((result, steps));
        }
    }
    None
}

/// Figure 1 is crash-tolerant at every point: freeze a pusher after
/// each possible prefix of its 5 accesses; a fresh pop must still
/// complete with a definitive answer.
#[test]
fn weak_stack_survives_crashes_anywhere() {
    let layout = stack_layout(4);
    for crash_after in 0..=5 {
        let mut mem = layout.initial_mem_with(&[7]);
        let mut victim = WeakStackMachine::new(layout, SpecStackOp::Push(9));
        let mut survivor = WeakStackMachine::new(layout, SpecStackOp::Pop);
        let (result, steps) =
            crash_scenario(&mut mem, &mut victim, crash_after, &mut survivor, 100)
                .expect("a lock-free operation cannot be blocked by a crashed process");
        assert!(steps <= 5);
        match result {
            Ok(SpecStackResp::Popped(v)) => {
                // Depending on where the victim froze, the pop sees 9
                // (victim's CAS landed) or 7 (it did not).
                assert!(v == 7 || v == 9, "crash_after={crash_after}: popped {v}");
            }
            other => panic!("crash_after={crash_after}: unexpected {other:?}"),
        }
    }
}

/// The survivor can even *complete the victim's pending lazy write*
/// (help) and still pop the victim's value — the helping mechanism is
/// exactly what makes mid-operation crashes harmless.
#[test]
fn survivor_helps_a_crashed_operation() {
    let layout = stack_layout(4);
    let mut mem = layout.initial_mem();
    // The victim's push performs all 5 accesses (its CAS on TOP
    // lands) — but its slot write is logically pending for the next
    // op; "crash" immediately after.
    let mut victim = WeakStackMachine::new(layout, SpecStackOp::Push(42));
    loop {
        if let Step::Done(result) = victim.step(&mut mem) {
            assert_eq!(result, Ok(SpecStackResp::Pushed));
            break;
        }
    }
    let mut survivor = WeakStackMachine::new(layout, SpecStackOp::Pop);
    let (result, _) = crash_scenario(&mut mem, &mut victim, 0, &mut survivor, 100).unwrap();
    assert_eq!(result, Ok(SpecStackResp::Popped(42)));
}

/// Figure 3: crashes on the lock-free fast path are harmless…
#[test]
fn cs_stack_survives_fast_path_crashes() {
    let layout = cs_stack_layout(4, 2);
    // The fast path is 6 accesses; freeze the victim after each prefix.
    for crash_after in 0..=6 {
        let mut mem = layout.initial_mem_with(&[7]);
        let mut victim = strong_stack_machine(layout, 0, SpecStackOp::Push(9));
        let mut survivor = strong_stack_machine(layout, 1, SpecStackOp::Pop);
        let (result, _) = crash_scenario(&mut mem, &mut victim, crash_after, &mut survivor, 1_000)
            .expect("fast-path crashes must not block the survivor");
        assert!(matches!(result, Ok(SpecStackResp::Popped(_))));
    }
}

/// …but a crash **while holding the lock** blocks later lock-path
/// operations — the §5 caveat, observed in the model.
#[test]
fn cs_stack_blocks_on_a_crash_inside_the_lock() {
    let layout = cs_stack_layout(4, 2);
    let mut mem = layout.initial_mem();
    // Force the victim onto the lock path and freeze it right after
    // it sets CONTENTION (it now holds the lock).
    mem.write(layout.contention(), 1);
    let mut victim = strong_stack_machine(layout, 0, SpecStackOp::Push(9));
    // Steps: ReadContention, SetFlag, WaitReadTurn(turn=0=proc → TryLock),
    // TryLock (acquires), SetContention — 5 steps, lock held.
    for _ in 0..5 {
        assert!(matches!(victim.step(&mut mem), Step::Continue));
    }
    assert_eq!(mem.read(layout.lock()), 1, "victim holds the lock");

    // The survivor reads CONTENTION=1, goes to the lock path, and
    // spins forever on the dead process's lock.
    let mut survivor = strong_stack_machine(layout, 1, SpecStackOp::Pop);
    let blocked = crash_scenario(&mut mem, &mut victim, 0, &mut survivor, 10_000).is_none();
    assert!(
        blocked,
        "a crash while holding the lock must block the lock path (§5)"
    );
}

/// The survivor's *fast path* still works even while a crashed
/// process holds the lock, as long as CONTENTION is down — the
/// window between lines 06 and 07.
#[test]
fn fast_path_survives_even_a_lock_holder_crash_before_line_07() {
    let layout = cs_stack_layout(4, 2);
    let mut mem = layout.initial_mem_with(&[7]);
    // Victim acquires the lock via FLAG/TURN but crashes before
    // setting CONTENTION: simulate by forcing the slow path with a
    // transient CONTENTION pulse.
    mem.write(layout.contention(), 1);
    let mut victim = strong_stack_machine(layout, 0, SpecStackOp::Push(9));
    for _ in 0..4 {
        assert!(matches!(victim.step(&mut mem), Step::Continue));
    }
    assert_eq!(mem.read(layout.lock()), 1, "victim holds the lock");
    mem.write(layout.contention(), 0); // the pulse ends

    // The survivor sees no contention and completes on the fast path.
    let mut survivor = strong_stack_machine(layout, 1, SpecStackOp::Pop);
    let (result, steps) =
        crash_scenario(&mut mem, &mut victim, 0, &mut survivor, 100).expect("fast path is free");
    assert_eq!(result, Ok(SpecStackResp::Popped(7)));
    assert_eq!(steps, 6);
}

// ---------------------------------------------------------------------
// The queue: same crash matrix as the stack.
// ---------------------------------------------------------------------

/// The weak queue (ref \[16\]) is crash-tolerant at every point:
/// freeze an enqueuer after each possible prefix of its 6 accesses; a
/// fresh dequeue still completes with a definitive answer.
#[test]
fn weak_queue_survives_crashes_anywhere() {
    let layout = queue_layout(4);
    for crash_after in 0..=6 {
        let mut mem = layout.initial_mem_with(&[7]);
        let mut victim = WeakQueueMachine::new(layout, SpecQueueOp::Enqueue(9));
        let mut survivor = WeakQueueMachine::new(layout, SpecQueueOp::Dequeue);
        let (result, _) = crash_scenario(&mut mem, &mut victim, crash_after, &mut survivor, 100)
            .expect("a lock-free dequeue cannot be blocked by a crashed enqueuer");
        // FIFO: the prefilled 7 is at the front no matter where the
        // victim's enqueue of 9 froze.
        assert_eq!(
            result,
            Ok(SpecQueueResp::Dequeued(7)),
            "crash_after={crash_after}"
        );
    }
}

/// Figure 3 over the queue: fast-path crashes (7 accesses) are
/// harmless.
#[test]
fn cs_queue_survives_fast_path_crashes() {
    let layout = cs_queue_layout(4, 2);
    for crash_after in 0..=7 {
        let mut mem = layout.initial_mem_with(&[7]);
        let mut victim = strong_queue_machine(layout, 0, SpecQueueOp::Enqueue(9));
        let mut survivor = strong_queue_machine(layout, 1, SpecQueueOp::Dequeue);
        let (result, _) = crash_scenario(&mut mem, &mut victim, crash_after, &mut survivor, 1_000)
            .expect("fast-path crashes must not block the survivor");
        assert_eq!(
            result,
            Ok(SpecQueueResp::Dequeued(7)),
            "crash_after={crash_after}"
        );
    }
}

/// …and the §5 caveat holds for the queue too: a crash while holding
/// the lock blocks every later lock-path operation.
#[test]
fn cs_queue_blocks_on_a_crash_inside_the_lock() {
    let layout = cs_queue_layout(4, 2);
    let mut mem = layout.initial_mem();
    mem.write(layout.addrs().contention, 1);
    let mut victim = strong_queue_machine(layout, 0, SpecQueueOp::Enqueue(9));
    // ReadContention, SetFlag, WaitReadTurn, TryLock (acquires),
    // SetContention — 5 steps, lock held.
    for _ in 0..5 {
        assert!(matches!(victim.step(&mut mem), Step::Continue));
    }
    assert_eq!(mem.read(layout.lock()), 1, "victim holds the lock");

    let mut survivor = strong_queue_machine(layout, 1, SpecQueueOp::Dequeue);
    let blocked = crash_scenario(&mut mem, &mut victim, 0, &mut survivor, 10_000).is_none();
    assert!(
        blocked,
        "a crash while holding the lock must block the lock path (§5)"
    );
}

// ---------------------------------------------------------------------
// The deque: obstruction-freedom under crashes.
// ---------------------------------------------------------------------

/// The linear-HLM deque is obstruction-free: a survivor running solo
/// after a crash always finishes, though the victim's half-done C&S
/// pair may cost it one abort-and-retry first. Freeze a right-pusher
/// at every possible prefix and check a left-pop completes, and that
/// the arena still holds a sensible value set.
#[test]
fn weak_deque_survives_crashes_anywhere() {
    let layout = deque_layout(8);
    for crash_after in 0..=14 {
        let mut mem = layout.initial_mem();
        prefill_right(&mut mem, layout, &[7]);
        let mut victim = WeakDequeMachine::new(layout, MDequeOp::Push(ModelEnd::Right, 9));
        for _ in 0..crash_after {
            match victim.step(&mut mem) {
                Step::Continue => {}
                Step::Done(_) => break,
            }
        }
        // Solo from here on: obstruction-freedom promises termination,
        // but the first attempt may abort on the victim's debris.
        let mut popped = None;
        'attempts: for _ in 0..4 {
            let mut survivor = WeakDequeMachine::new(layout, MDequeOp::Pop(ModelEnd::Left));
            for _ in 0..1_000 {
                match survivor.step(&mut mem) {
                    Step::Continue => {}
                    Step::Done(Ok(resp)) => {
                        popped = Some(resp);
                        break 'attempts;
                    }
                    Step::Done(Err(_)) => continue 'attempts, // ⊥: retry fresh
                }
            }
            panic!("crash_after={crash_after}: solo pop neither finished nor aborted");
        }
        match popped {
            // 7 was prefilled; 9 only if the victim's push landed.
            Some(ModelDequeResp::Popped(v)) => {
                assert!(v == 7 || v == 9, "crash_after={crash_after}: popped {v}")
            }
            other => panic!("crash_after={crash_after}: unexpected {other:?}"),
        }
        // The representation invariant survived the crash too.
        let (_, values, _) = abstract_deque(&mem, &layout);
        assert!(
            values.iter().all(|v| *v == 7 || *v == 9),
            "crash_after={crash_after}: arena corrupted: {values:?}"
        );
    }
}

// ---------------------------------------------------------------------
// The implementation narrows the §5 caveat: panics are not crashes.
// ---------------------------------------------------------------------

/// The model above shows a process *dead* inside the critical section
/// wedges the lock path forever. The real implementation distinguishes
/// the recoverable flavour: a slow path that **panics** (unwinds)
/// under the lock is cleaned up by the RAII guard — lock released,
/// `CONTENTION` restored — so the survivor completes instead of
/// blocking.
#[test]
fn real_transformation_recovers_from_a_panic_inside_the_lock() {
    use cso_core::{Abortable, Aborted, ContentionSensitive};
    use cso_locks::TasLock;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    /// Stage 0: abort (forces the slow path). Stage 1: panic (under
    /// the lock). Stage ≥ 2: behave.
    struct CrashDummy {
        stage: AtomicUsize,
        applied: AtomicU64,
    }

    impl Abortable for CrashDummy {
        type Op = ();
        type Response = u64;

        fn try_apply(&self, _op: &()) -> Result<u64, Aborted> {
            match self.stage.fetch_add(1, Ordering::SeqCst) {
                0 => Err(Aborted),
                1 => panic!("modelled crash inside the critical section"),
                _ => Ok(self.applied.fetch_add(1, Ordering::SeqCst) + 1),
            }
        }
    }

    let cs = ContentionSensitive::new(
        CrashDummy {
            stage: AtomicUsize::new(0),
            applied: AtomicU64::new(0),
        },
        TasLock::new(),
        2,
    );
    let unwound =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cs.apply(0, &()))).is_err();
    assert!(unwound, "the modelled crash must unwind");
    assert_eq!(cs.fault_stats().poisoned, 1);

    // Where the model's survivor spun forever, this one completes.
    assert_eq!(cs.apply(1, &()), 1);
    assert_eq!(cs.stats().total(), 1, "only the survivor's op counts");
}

// ---------------------------------------------------------------------
// And with a RecoveryPolicy armed, even real deaths are survived.
// ---------------------------------------------------------------------

/// Crash-at-every-step succession check: freeze a victim process at
/// each qualitatively distinct point of its slow-path operation —
/// before it reaches the lock, under the lock before its operation
/// applied, and under the lock *after* it applied — then mark it dead
/// and drive a survivor through a full workload.
///
/// Three properties must hold at every crash point:
/// * **liveness**: every survivor operation completes (succession,
///   where needed, is bounded);
/// * **conservation**: the counter equals exactly the sum of the
///   operations that applied;
/// * **exactly-once**: the victim's operation is counted zero times if
///   it died before applying, once if after — never twice, regardless
///   of the recovery that ran in between.
#[test]
fn recovery_succeeds_a_crash_at_every_step_exactly_once() {
    use cso_core::{Abortable, Aborted, ContentionSensitive, CsConfig, RecoveryPolicy};
    use cso_locks::TasLock;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Crash {
        BeforeLock,
        UnderLockBeforeApply,
        UnderLockAfterApply,
    }
    use Crash::*;

    /// A counter whose first *armed* application parks forever at the
    /// scripted point — the in-object half of the crash matrix.
    struct StagedCounter {
        crash: Crash,
        armed: AtomicBool,
        parked: Arc<AtomicBool>,
        value: AtomicU64,
    }

    impl StagedCounter {
        fn die(&self) -> ! {
            self.parked.store(true, Ordering::SeqCst);
            loop {
                std::thread::park();
            }
        }
    }

    impl Abortable for StagedCounter {
        type Op = u64;
        type Response = u64;

        fn try_apply(&self, op: &u64) -> Result<u64, Aborted> {
            if self.crash == UnderLockBeforeApply && self.armed.swap(false, Ordering::SeqCst) {
                self.die();
            }
            let v = self.value.fetch_add(*op, Ordering::SeqCst) + *op;
            if self.crash == UnderLockAfterApply && self.armed.swap(false, Ordering::SeqCst) {
                self.die();
            }
            Ok(v)
        }
    }

    const VICTIM_OP: u64 = 1_000;
    const SURVIVOR_OPS: u64 = 10;
    let policy = RecoveryPolicy {
        grace: Duration::from_secs(3600), // suspect only on mark_dead
        max_successions: 4,
        backoff: Duration::from_millis(1),
    };

    for crash in [BeforeLock, UnderLockBeforeApply, UnderLockAfterApply] {
        let parked = Arc::new(AtomicBool::new(false));
        let cs = Arc::new(ContentionSensitive::with_config(
            StagedCounter {
                crash,
                armed: AtomicBool::new(crash != BeforeLock),
                parked: Arc::clone(&parked),
                value: AtomicU64::new(0),
            },
            TasLock::new(),
            2,
            CsConfig::PAPER.without_fast_path().with_recovery(policy),
        ));

        // The victim (proc 0) runs until its scripted death; the
        // thread is leaked, playing the corpse.
        let _corpse = {
            let cs = Arc::clone(&cs);
            let parked = Arc::clone(&parked);
            std::thread::spawn(move || {
                if crash == BeforeLock {
                    parked.store(true, Ordering::SeqCst);
                    loop {
                        std::thread::park();
                    }
                }
                cs.apply(0, &VICTIM_OP);
            })
        };
        while !parked.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        cs.liveness().expect("recovery enabled").mark_dead(0);

        // Liveness: the survivor's whole workload completes.
        for _ in 0..SURVIVOR_OPS {
            cs.apply(1, &1);
        }

        // Conservation + exactly-once.
        let victim_applied = match crash {
            BeforeLock | UnderLockBeforeApply => 0,
            UnderLockAfterApply => VICTIM_OP,
        };
        assert_eq!(
            cs.inner().value.load(Ordering::SeqCst),
            SURVIVOR_OPS + victim_applied,
            "{crash:?}: conservation violated across the recovery"
        );

        // Succession ran exactly when the corpse held the lock.
        let stats = cs.recovery_stats().unwrap();
        let expected_successions = u64::from(crash != BeforeLock);
        assert_eq!(stats.successions, expected_successions, "{crash:?}");
        assert!(!stats.failed, "{crash:?}: budget of 4 cannot be exhausted");
        assert!(!cs.is_poisoned(), "{crash:?}");
    }
}
