//! Model-checking the flat-combining publication-record handoff.
//!
//! The combining slow path of `cso-core` rests on a small protocol
//! per publication record:
//!
//! ```text
//! EMPTY ──post──▶ POSTED ──claim──▶ CLAIMED ──complete──▶ DONE
//!    ▲              │                  │                    │
//!    │           retract            poison (crash)      take_response
//!    └──────────────┴──── reclaim ◀── POISONED              │
//!    └──────────────────────────────────────────────────────┘
//! ```
//!
//! This test hand-compiles that protocol — post, lock, retract, claim
//! sweep, batch apply, result write-back, and the crash-recovery
//! poison path — into a one-shared-access-per-step machine over the
//! virtual memory, then explores schedules: exhaustively for two
//! processes at small step bounds, randomized for three. The scripted
//! `crash_after_served` knob is the model-side analogue of the
//! `cs::combine` fail point armed by the chaos tests: the combiner
//! dies mid-batch, poisons exactly the in-flight (claimed, unapplied)
//! records, releases the lock, and its own operation returns ⊥ with
//! no effect.
//!
//! Invariants checked on every terminal execution:
//!
//! * **No lock leak** — the lock is free once all operations finish,
//!   even after combiner crashes.
//! * **No stuck records** — every publication record returns to
//!   `EMPTY`; a poisoned handoff is reclaimed and retried, never
//!   abandoned in `CLAIMED`/`POISONED`.
//! * **Exactly-once application** — the shared counter equals the sum
//!   of all non-⊥ operations' increments, and the responses chain
//!   (each equals its predecessor plus the operation's increment), so
//!   no request is applied twice or lost.
//! * **⊥ only from crashes** — operations without a scripted crash
//!   always complete with a value.

use cso_explore::explorer::{explore_exhaustive, explore_random, ExploreConfig, Terminal};
use cso_explore::machine::{Bot, Step, StepMachine};
use cso_explore::mem::Mem;

// Record states (low byte of a record cell; payload in the high bits).
const EMPTY: u64 = 0;
const POSTED: u64 = 1;
const CLAIMED: u64 = 2;
const DONE: u64 = 3;
const POISONED: u64 = 4;

const LOCK: usize = 0;
const COUNTER: usize = 1;

fn rec(proc: usize) -> usize {
    2 + proc
}

fn pack(state: u64, payload: u64) -> u64 {
    state | (payload << 8)
}

fn state_of(word: u64) -> u64 {
    word & 0xFF
}

fn payload_of(word: u64) -> u64 {
    word >> 8
}

fn initial_mem(n: usize) -> Mem {
    Mem::new(vec![0; 2 + n])
}

/// One combining operation: add `v` to the shared counter, returning
/// the counter's new value. `crash_after_served` scripts a combiner
/// crash after that many of its claimed records were applied (the
/// model analogue of the `cs::combine` fail point).
#[derive(Debug, Clone, PartialEq, Eq)]
struct CombineOp {
    v: u64,
    crash_after_served: Option<usize>,
}

impl CombineOp {
    fn bump(v: u64) -> CombineOp {
        CombineOp {
            v,
            crash_after_served: None,
        }
    }

    fn crashing(v: u64, after: usize) -> CombineOp {
        CombineOp {
            v,
            crash_after_served: Some(after),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    /// Publish the request: `REC[p] ← POSTED|v`.
    Post,
    /// Spin on the own record / the lock.
    Poll,
    TryLock,
    /// Lock won: take the own request back out of the list.
    Retract,
    /// Lock released because the record resolved while waiting.
    ReleaseAndPoll,
    /// Re-publish after a poisoned handoff.
    Repost,
    /// Combiner: sweep the publication list.
    ScanRead,
    ClaimCas(u64),
    /// Combiner: apply one claimed request.
    ServeRead,
    ServeWrite(u64),
    CompleteWrite(u64),
    /// Combiner: apply the own request and leave.
    ApplyOwnRead,
    ApplyOwnWrite(u64),
    Unlock,
    /// Crash recovery: poison the in-flight claims, drop the lock.
    PoisonNext,
    CrashUnlock,
    /// Waiter: the combiner served us; consume the result.
    TakeResponse(u64),
}

#[derive(Debug, Clone)]
struct CombineMachine {
    proc: usize,
    n: usize,
    op: CombineOp,
    pc: Pc,
    scan_j: usize,
    serve_idx: usize,
    poison_idx: usize,
    own_resp: u64,
    claimed: Vec<(usize, u64)>,
}

impl CombineMachine {
    fn new(proc: usize, n: usize, op: CombineOp) -> CombineMachine {
        CombineMachine {
            proc,
            n,
            op,
            pc: Pc::Post,
            scan_j: 0,
            serve_idx: 0,
            poison_idx: 0,
            own_resp: 0,
            claimed: Vec::new(),
        }
    }

    /// Advances the scan cursor past the own slot; returns the next
    /// slot to read or switches to the apply phase.
    fn advance_scan(&mut self) {
        self.scan_j += 1;
        if self.scan_j == self.proc {
            self.scan_j += 1;
        }
        if self.scan_j >= self.n {
            self.serve_idx = 0;
            self.pc = self.next_apply_pc();
        } else {
            self.pc = Pc::ScanRead;
        }
    }

    /// Picks the next apply-phase step: crash if scripted for this
    /// point, next claimed record if any remain, else the own op.
    fn next_apply_pc(&mut self) -> Pc {
        if self.op.crash_after_served == Some(self.serve_idx) {
            self.poison_idx = self.serve_idx;
            return Pc::PoisonNext;
        }
        if self.serve_idx < self.claimed.len() {
            Pc::ServeRead
        } else {
            Pc::ApplyOwnRead
        }
    }

    fn first_scan_pc(&mut self) -> Pc {
        self.claimed.clear();
        self.scan_j = if self.proc == 0 { 1 } else { 0 };
        if self.scan_j >= self.n {
            // Solo configuration: nothing to scan.
            self.serve_idx = 0;
            self.next_apply_pc()
        } else {
            Pc::ScanRead
        }
    }
}

impl StepMachine<u64> for CombineMachine {
    fn step(&mut self, mem: &mut Mem) -> Step<u64> {
        match self.pc {
            Pc::Post | Pc::Repost => {
                mem.write(rec(self.proc), pack(POSTED, self.op.v));
                self.pc = Pc::Poll;
                Step::Continue
            }
            Pc::Poll => {
                let word = mem.read(rec(self.proc));
                self.pc = match state_of(word) {
                    DONE => Pc::TakeResponse(payload_of(word)),
                    POISONED => Pc::Repost,
                    CLAIMED => Pc::Poll, // a combiner is on it; keep waiting
                    _ => Pc::TryLock,
                };
                Step::Continue
            }
            Pc::TryLock => {
                self.pc = if mem.cas(LOCK, 0, 1) {
                    Pc::Retract
                } else {
                    Pc::Poll
                };
                Step::Continue
            }
            Pc::Retract => {
                // Holding the lock, the own record is POSTED (retract
                // wins), or already resolved by the previous holder
                // (DONE/POISONED — release and take that outcome).
                self.pc = if mem.cas(rec(self.proc), pack(POSTED, self.op.v), EMPTY) {
                    self.first_scan_pc()
                } else {
                    Pc::ReleaseAndPoll
                };
                Step::Continue
            }
            Pc::ReleaseAndPoll => {
                mem.write(LOCK, 0);
                self.pc = Pc::Poll;
                Step::Continue
            }
            Pc::ScanRead => {
                let word = mem.read(rec(self.scan_j));
                if state_of(word) == POSTED {
                    self.pc = Pc::ClaimCas(payload_of(word));
                } else {
                    self.advance_scan();
                }
                Step::Continue
            }
            Pc::ClaimCas(w) => {
                if mem.cas(rec(self.scan_j), pack(POSTED, w), pack(CLAIMED, w)) {
                    self.claimed.push((self.scan_j, w));
                }
                self.advance_scan();
                Step::Continue
            }
            Pc::ServeRead => {
                // The combiner is the only writer while it holds the
                // lock, so read-then-write is atomic in effect.
                let counter = mem.read(COUNTER);
                let (_, w) = self.claimed[self.serve_idx];
                self.pc = Pc::ServeWrite(counter + w);
                Step::Continue
            }
            Pc::ServeWrite(resp) => {
                mem.write(COUNTER, resp);
                self.pc = Pc::CompleteWrite(resp);
                Step::Continue
            }
            Pc::CompleteWrite(resp) => {
                let (j, _) = self.claimed[self.serve_idx];
                mem.write(rec(j), pack(DONE, resp));
                self.serve_idx += 1;
                self.pc = self.next_apply_pc();
                Step::Continue
            }
            Pc::ApplyOwnRead => {
                let counter = mem.read(COUNTER);
                self.pc = Pc::ApplyOwnWrite(counter + self.op.v);
                Step::Continue
            }
            Pc::ApplyOwnWrite(resp) => {
                mem.write(COUNTER, resp);
                self.own_resp = resp;
                self.pc = Pc::Unlock;
                Step::Continue
            }
            Pc::Unlock => {
                mem.write(LOCK, 0);
                Step::Done(Ok(self.own_resp))
            }
            Pc::PoisonNext => {
                if self.poison_idx < self.claimed.len() {
                    let (j, _) = self.claimed[self.poison_idx];
                    mem.write(rec(j), POISONED);
                    self.poison_idx += 1;
                    if self.poison_idx == self.claimed.len() {
                        self.pc = Pc::CrashUnlock;
                    }
                    Step::Continue
                } else {
                    // Nothing in flight: this step already drops the
                    // lock.
                    mem.write(LOCK, 0);
                    Step::Done(Err(Bot))
                }
            }
            Pc::CrashUnlock => {
                mem.write(LOCK, 0);
                Step::Done(Err(Bot))
            }
            Pc::TakeResponse(resp) => {
                mem.write(rec(self.proc), EMPTY);
                Step::Done(Ok(resp))
            }
        }
    }
}

/// The per-terminal invariants; see the module docs.
fn check_terminal(terminal: &Terminal<CombineOp, u64>, scripts: &[Vec<CombineOp>]) {
    let n = scripts.len();
    assert_eq!(terminal.mem.read(LOCK), 0, "lock leaked");
    for p in 0..n {
        assert_eq!(
            terminal.mem.read(rec(p)),
            EMPTY,
            "publication record of process {p} left non-EMPTY"
        );
    }

    // Exactly-once application: the counter equals the sum of the
    // non-⊥ increments, and the responses chain.
    let mut completed: Vec<(u64, u64)> = terminal
        .history
        .operations()
        .iter()
        .map(|op| {
            let (resp, _) = op.returned.as_ref().expect("terminal ops are complete");
            (op.op.v, *resp)
        })
        .collect();
    let total: u64 = completed.iter().map(|(v, _)| *v).sum();
    assert_eq!(
        terminal.mem.read(COUNTER),
        total,
        "counter disagrees with the applied increments (lost or doubled apply)"
    );
    completed.sort_by_key(|&(_, resp)| resp);
    let mut running = 0;
    for (v, resp) in completed {
        assert_eq!(resp, running + v, "response chain broken at {resp}");
        running = resp;
    }

    // ⊥ comes only from scripted combiner crashes.
    for op in &terminal.op_steps {
        if op.aborted {
            assert!(
                scripts[op.proc][op.op_index].crash_after_served.is_some(),
                "process {} aborted without a scripted crash",
                op.proc
            );
        }
    }
}

/// The handoff in isolation, deterministically: p1 posts, p0 combines
/// and serves p1's record, p1 consumes the written-back result.
#[test]
fn deterministic_post_combine_result_handoff() {
    let n = 2;
    let mut mem = initial_mem(n);
    let mut combiner = CombineMachine::new(0, n, CombineOp::bump(10));
    let mut waiter = CombineMachine::new(1, n, CombineOp::bump(3));

    // p1 publishes its request and reads it back still POSTED.
    assert_eq!(waiter.step(&mut mem), Step::Continue);
    assert_eq!(state_of(mem.read(rec(1))), POSTED);

    // p0 runs to completion: post, lock, retract, claim p1's record,
    // apply both ops, write the result back, unlock.
    let combiner_resp = loop {
        match combiner.step(&mut mem) {
            Step::Continue => {}
            Step::Done(resp) => break resp.expect("combiner completes"),
        }
    };
    assert_eq!(state_of(mem.read(rec(1))), DONE, "handoff written back");
    assert_eq!(payload_of(mem.read(rec(1))), 3, "served resp = 0 + 3");
    assert_eq!(combiner_resp, 13, "own op applied after the batch");
    assert_eq!(mem.read(LOCK), 0);

    // p1 finds DONE and consumes it without ever taking the lock.
    let waiter_resp = loop {
        match waiter.step(&mut mem) {
            Step::Continue => {}
            Step::Done(resp) => break resp.expect("waiter completes"),
        }
    };
    assert_eq!(waiter_resp, 3);
    assert_eq!(mem.read(rec(1)), EMPTY, "take_response re-arms the record");
    assert_eq!(mem.read(COUNTER), 13);
}

/// A combiner crash with one in-flight claim, deterministically: the
/// claimed record is poisoned, the waiter reclaims, reposts, and
/// completes by itself; the crasher's op has no effect.
#[test]
fn deterministic_crash_poisons_and_waiter_recovers() {
    let n = 2;
    let mut mem = initial_mem(n);
    let mut crasher = CombineMachine::new(0, n, CombineOp::crashing(10, 0));
    let mut waiter = CombineMachine::new(1, n, CombineOp::bump(3));

    assert_eq!(waiter.step(&mut mem), Step::Continue); // p1 posts
    let crash = loop {
        match crasher.step(&mut mem) {
            Step::Continue => {}
            Step::Done(resp) => break resp,
        }
    };
    assert_eq!(crash, Err(Bot), "the crashed combiner returns ⊥");
    assert_eq!(mem.read(LOCK), 0, "the crash recovery released the lock");
    assert_eq!(
        state_of(mem.read(rec(1))),
        POISONED,
        "the in-flight claim was poisoned"
    );
    assert_eq!(mem.read(COUNTER), 0, "the crashed tenure applied nothing");

    let waiter_resp = loop {
        match waiter.step(&mut mem) {
            Step::Continue => {}
            Step::Done(resp) => break resp.expect("waiter recovers"),
        }
    };
    assert_eq!(waiter_resp, 3, "the reposted op applied exactly once");
    assert_eq!(mem.read(COUNTER), 3);
    assert_eq!(mem.read(rec(1)), EMPTY);
}

fn exhaustive_config() -> ExploreConfig {
    ExploreConfig {
        // The longest interesting chains fit exactly: a full combine
        // tenure serving one claim is 12 steps, and the poisoned →
        // repost → self-serve recovery is 10. Schedules that spin
        // beyond the bound are pruned — they only repeat record
        // states the shorter schedules already cover.
        max_steps_per_op: 12,
        max_executions: 6_000_000,
    }
}

/// Every interleaving of two combining operations at the step bound:
/// handoffs, self-serves, and retract races all keep the invariants.
#[test]
fn exhaustive_two_process_handoff() {
    let scripts = vec![vec![CombineOp::bump(1)], vec![CombineOp::bump(2)]];
    let config = exhaustive_config();
    let stats = explore_exhaustive(
        &initial_mem(2),
        &scripts,
        |proc, op: &CombineOp| CombineMachine::new(proc, 2, op.clone()),
        &config,
        |terminal| check_terminal(terminal, &scripts),
    );
    assert!(
        stats.executions > 1_000,
        "expected real schedule coverage, got {}",
        stats.executions
    );
    assert!(
        stats.executions < config.max_executions,
        "hit the execution cap — the exploration was not exhaustive"
    );
}

/// Every interleaving of a crashing combiner and a clean waiter: the
/// poison → reclaim → repost recovery holds on all schedules.
#[test]
fn exhaustive_two_process_combiner_crash() {
    let scripts = vec![vec![CombineOp::crashing(1, 0)], vec![CombineOp::bump(2)]];
    let config = exhaustive_config();
    let mut crashed = 0usize;
    let stats = explore_exhaustive(
        &initial_mem(2),
        &scripts,
        |proc, op: &CombineOp| CombineMachine::new(proc, 2, op.clone()),
        &config,
        |terminal| {
            check_terminal(terminal, &scripts);
            crashed += terminal.aborted;
        },
    );
    assert!(stats.executions > 1_000, "got {}", stats.executions);
    assert!(
        stats.executions < config.max_executions,
        "hit the execution cap — the exploration was not exhaustive"
    );
    assert!(crashed > 0, "no schedule ever triggered the crash");
}

/// Three processes, randomized schedules, a combiner scripted to die
/// mid-batch (after serving one of its claims): partially-served
/// batches leave served owners with correct results and poisoned
/// owners retrying cleanly.
#[test]
fn random_three_process_crash_mid_batch() {
    let scripts = vec![
        vec![CombineOp::crashing(1, 1)],
        vec![CombineOp::bump(2)],
        vec![CombineOp::bump(4)],
    ];
    let config = ExploreConfig {
        max_steps_per_op: 120,
        max_executions: usize::MAX,
    };
    let mut crashed = 0usize;
    let stats = explore_random(
        &initial_mem(3),
        &scripts,
        |proc, op: &CombineOp| CombineMachine::new(proc, 3, op.clone()),
        &config,
        4_000,
        0xC0B17E5,
        |terminal| {
            check_terminal(terminal, &scripts);
            crashed += terminal.aborted;
        },
    );
    assert!(stats.executions > 3_000, "got {}", stats.executions);
    assert!(crashed > 0, "the mid-batch crash never triggered");
}

/// Three clean processes under randomized schedules: batches of size
/// two (one tenure serving both waiters) stay exactly-once.
#[test]
fn random_three_process_batches() {
    let scripts = vec![
        vec![CombineOp::bump(1)],
        vec![CombineOp::bump(2)],
        vec![CombineOp::bump(4)],
    ];
    let config = ExploreConfig {
        max_steps_per_op: 120,
        max_executions: usize::MAX,
    };
    let stats = explore_random(
        &initial_mem(3),
        &scripts,
        |proc, op: &CombineOp| CombineMachine::new(proc, 3, op.clone()),
        &config,
        4_000,
        0xBA7C4,
        |terminal| check_terminal(terminal, &scripts),
    );
    assert!(stats.executions > 3_000, "got {}", stats.executions);
}
