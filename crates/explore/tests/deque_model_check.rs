//! Exhaustive model checking of the abortable HLM deque — the
//! single-attempt formulation derived in `cso-deque`, verified here
//! over **every** schedule of bounded instances.
//!
//! Each terminal execution is checked for: the `LN⁺ DATA* RN⁺`
//! representation invariant, linearizability against the linear-arena
//! specification (with a drain *and* a `Full` probe pinning the final
//! null accounting), and the no-effect property of ⊥.

use cso_explore::algos::deque::{
    abstract_deque, deque_layout, prefill_right, weak_deque_factory, MDequeOp, ModelDequeResp,
    ModelEnd,
};
use cso_explore::explorer::{explore_exhaustive, ExploreConfig};
use cso_explore::invariants::check_deque_terminal;

#[test]
fn racing_right_pushes() {
    let layout = deque_layout(2);
    let scripts = vec![
        vec![MDequeOp::Push(ModelEnd::Right, 1)],
        vec![MDequeOp::Push(ModelEnd::Right, 2)],
    ];
    let mut aborted_seen = false;
    let stats = explore_exhaustive(
        &layout.initial_mem(),
        &scripts,
        weak_deque_factory(layout),
        &ExploreConfig::default(),
        |t| {
            check_deque_terminal(2, &[], &layout, t);
            aborted_seen |= t.aborted > 0;
        },
    );
    assert!(stats.executions > 100, "non-trivial schedule space");
    assert!(
        aborted_seen,
        "same-end pushes must conflict in some schedule"
    );
}

/// The deque's signature weakness: *opposite-end* pushes can also
/// conflict when the boundaries are adjacent (near-empty arena) —
/// unlike the queue's provably non-interfering ends.
#[test]
fn opposite_end_pushes_on_small_arena() {
    let layout = deque_layout(2);
    let scripts = vec![
        vec![MDequeOp::Push(ModelEnd::Left, 1)],
        vec![MDequeOp::Push(ModelEnd::Right, 2)],
    ];
    let mut aborted_seen = false;
    explore_exhaustive(
        &layout.initial_mem(),
        &scripts,
        weak_deque_factory(layout),
        &ExploreConfig::default(),
        |t| {
            check_deque_terminal(2, &[], &layout, t);
            aborted_seen |= t.aborted > 0;
        },
    );
    assert!(
        aborted_seen,
        "adjacent boundaries make even opposite ends interfere — \
         the obstruction-freedom story"
    );
}

#[test]
fn push_racing_pop_same_end() {
    let layout = deque_layout(2);
    let mut mem = layout.initial_mem();
    prefill_right(&mut mem, layout, &[9]);
    let scripts = vec![
        vec![MDequeOp::Push(ModelEnd::Right, 1)],
        vec![MDequeOp::Pop(ModelEnd::Right)],
    ];
    explore_exhaustive(
        &mem,
        &scripts,
        weak_deque_factory(layout),
        &ExploreConfig::default(),
        |t| {
            check_deque_terminal(2, &[9], &layout, t);
        },
    );
}

#[test]
fn racing_pops_from_both_ends() {
    // Capacity 4: arena LLL RRR — the right side can absorb two
    // pushes for the pre-fill.
    let layout = deque_layout(4);
    let mut mem = layout.initial_mem();
    prefill_right(&mut mem, layout, &[5, 6]);
    let scripts = vec![
        vec![MDequeOp::Pop(ModelEnd::Left)],
        vec![MDequeOp::Pop(ModelEnd::Right)],
    ];
    let mut both_popped = false;
    explore_exhaustive(
        &mem,
        &scripts,
        weak_deque_factory(layout),
        &ExploreConfig::default(),
        |t| {
            check_deque_terminal(4, &[5, 6], &layout, t);
            let popped = t
                .history
                .operations()
                .iter()
                .filter(|op| {
                    matches!(
                        op.returned.as_ref().map(|(r, _)| *r),
                        Some(ModelDequeResp::Popped(_))
                    )
                })
                .count();
            if popped == 2 {
                both_popped = true;
                let (_, values, _) = abstract_deque(&t.mem, &layout);
                assert!(values.is_empty());
            }
        },
    );
    assert!(both_popped, "some schedule lets both pops succeed");
}

#[test]
fn pop_race_on_single_element() {
    // One element, both ends pop: exactly one can win; Empty and ⊥
    // must sort themselves out linearizably in every schedule.
    let layout = deque_layout(2);
    let mut mem = layout.initial_mem();
    prefill_right(&mut mem, layout, &[7]);
    let scripts = vec![
        vec![MDequeOp::Pop(ModelEnd::Left)],
        vec![MDequeOp::Pop(ModelEnd::Right)],
    ];
    explore_exhaustive(
        &mem,
        &scripts,
        weak_deque_factory(layout),
        &ExploreConfig::default(),
        |t| {
            check_deque_terminal(2, &[7], &layout, t);
            let wins = t
                .history
                .operations()
                .iter()
                .filter(|op| {
                    matches!(
                        op.returned.as_ref().map(|(r, _)| *r),
                        Some(ModelDequeResp::Popped(7))
                    )
                })
                .count();
            assert!(wins <= 1, "the single element must be popped at most once");
        },
    );
}

#[test]
fn full_boundary_race() {
    // Right side down to the sentinel: a racing right push and right
    // pop must produce linearizable Full/Popped combinations.
    let layout = deque_layout(2);
    let mut mem = layout.initial_mem();
    prefill_right(&mut mem, layout, &[1]); // right block now at sentinel
    let scripts = vec![
        vec![MDequeOp::Push(ModelEnd::Right, 2)],
        vec![MDequeOp::Pop(ModelEnd::Right)],
    ];
    explore_exhaustive(
        &mem,
        &scripts,
        weak_deque_factory(layout),
        &ExploreConfig::default(),
        |t| {
            check_deque_terminal(2, &[1], &layout, t);
        },
    );
}

#[test]
fn two_ops_per_process() {
    let layout = deque_layout(2);
    let scripts = vec![
        vec![
            MDequeOp::Push(ModelEnd::Left, 1),
            MDequeOp::Pop(ModelEnd::Right),
        ],
        vec![
            MDequeOp::Push(ModelEnd::Right, 2),
            MDequeOp::Pop(ModelEnd::Left),
        ],
    ];
    let stats = explore_exhaustive(
        &layout.initial_mem(),
        &scripts,
        weak_deque_factory(layout),
        &ExploreConfig::default(),
        |t| check_deque_terminal(2, &[], &layout, t),
    );
    assert_eq!(stats.pruned, 0);
    assert!(stats.executions > 10_000);
}

/// Figure 3 over the deque, in the model: the generic protocol
/// machine composes with the deque machine unchanged, and random
/// schedules confirm every strong operation terminates (the
/// obstruction-free → starvation-free leap), linearizably.
#[test]
fn fig3_over_deque_random_schedules() {
    use cso_explore::algos::deque::WeakDequeMachine;
    use cso_explore::algos::fig3::{Fig3Addrs, Fig3Machine};
    use cso_explore::explorer::explore_random;
    use cso_explore::mem::Mem;

    let layout = deque_layout(2);
    let n = 3;
    let base = layout.m() + 1;
    let addrs = Fig3Addrs {
        contention: base,
        flag_base: base + 1,
        n,
        turn: base + 1 + n,
        lock: base + 2 + n,
    };
    let mut words: Vec<u64> = {
        let mem = layout.initial_mem();
        (0..mem.len()).map(|a| mem.read(a)).collect()
    };
    words.resize(addrs.end(), 0);
    let initial = Mem::new(words);

    let scripts = vec![
        vec![
            MDequeOp::Push(ModelEnd::Left, 1),
            MDequeOp::Pop(ModelEnd::Right),
        ],
        vec![MDequeOp::Push(ModelEnd::Right, 2)],
        vec![
            MDequeOp::Pop(ModelEnd::Left),
            MDequeOp::Push(ModelEnd::Right, 3),
        ],
    ];
    let config = ExploreConfig {
        max_steps_per_op: 10_000,
        max_executions: usize::MAX,
    };
    let stats = explore_random(
        &initial,
        &scripts,
        |proc, op: &MDequeOp| Fig3Machine::new(addrs, proc, WeakDequeMachine::new(layout, *op)),
        &config,
        600,
        0xD0,
        |t| {
            assert_eq!(t.aborted, 0, "strong deque ops never return ⊥");
            check_deque_terminal(2, &[], &layout, t);
            assert_eq!(t.mem.read(addrs.lock), 0, "lock released");
        },
    );
    assert_eq!(
        stats.executions, 600,
        "no schedule exceeded the step budget"
    );
}

/// Solo attempts never abort and leave a clean arena — over the
/// single schedule of each solo script.
#[test]
fn solo_attempts_never_abort() {
    let layout = deque_layout(3);
    for op in [
        MDequeOp::Push(ModelEnd::Left, 1),
        MDequeOp::Push(ModelEnd::Right, 2),
        MDequeOp::Pop(ModelEnd::Left),
        MDequeOp::Pop(ModelEnd::Right),
    ] {
        let mut mem = layout.initial_mem();
        prefill_right(&mut mem, layout, &[4]);
        let stats = explore_exhaustive(
            &mem,
            &[vec![op]],
            weak_deque_factory(layout),
            &ExploreConfig::default(),
            |t| {
                assert_eq!(t.aborted, 0, "solo {op:?} must not abort");
                check_deque_terminal(3, &[4], &layout, t);
            },
        );
        assert_eq!(stats.executions, 1);
    }
}
