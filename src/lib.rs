//! # `cso` — Contention-Sensitive Concurrent Objects
//!
//! A full reproduction of **Mostefaoui & Raynal, “Looking for
//! Efficient Implementations of Concurrent Objects” (2011)**: the
//! abortable stack (Figure 1), the non-blocking stack (Figure 2) and
//! the contention-sensitive, starvation-free stack (Figure 3), built
//! on explicit substrates — counted atomic registers, a lock menu with
//! the §4.4 deadlock-free → starvation-free booster, generic
//! object transformations — and validated by a linearizability checker
//! and a schedule-exploring model checker.
//!
//! This crate is the umbrella: it re-exports every workspace crate
//! under one name. Depend on the individual crates (`cso-stack`,
//! `cso-locks`, …) if you want a narrower dependency.
//!
//! ## The headline result, as a doctest
//!
//! A contention-free operation on the Figure 3 stack takes **no lock
//! and exactly six shared-memory accesses** (Theorem 1):
//!
//! ```
//! use cso::stack::{CsStack, PushOutcome};
//! use cso::memory::counting::CountScope;
//!
//! let stack: CsStack<u32> = CsStack::new(1024, 8); // capacity, processes
//!
//! let scope = CountScope::start();
//! assert_eq!(stack.push(0, 42), PushOutcome::Pushed);
//! assert_eq!(scope.take().total(), 6);
//! assert_eq!(stack.path_stats().locked, 0);
//! ```
//!
//! ## Layer map
//!
//! | Module | Contents |
//! |---|---|
//! | [`memory`] | counted atomic registers, packed words, process registry, slab |
//! | [`locks`] | TAS/TTAS/ticket/CLH/MCS/Peterson/Lamport locks + the §4.4 booster |
//! | [`core`] | `Abortable` objects, progress conditions, Figure 2/3 as generic transformations |
//! | [`stack`] | the paper's three stacks + Treiber, lock-based, elimination baselines |
//! | [`queue`] | the same construction for a bounded FIFO queue + Michael–Scott, lock baselines |
//! | [`deque`] | the HLM obstruction-free deque (paper ref \[8\]) and its boosts — one object per rung of the hierarchy |
//! | [`lincheck`] | history recording + Wing–Gong linearizability checker |
//! | [`explore`] | step-machine model checker (exhaustive & randomized schedules) |
//! | [`metrics`] | live metrics registry (sharded counters, gauges, log-histogram timers), Prometheus/JSON exporters, scrape endpoint |
//! | [`trace`] | feature-gated probe rings, latency histograms, step auditor, Chrome trace export |
//! | [`profile`] | continuous profiling: background ring harvester, online span aggregator, causal (what-if) profiler, live `/profile` + `/spans.json` + `/flamegraph` + `/causal.json` routes |
//! | [`watch`] | online runtime verification: the invariant watchdog, declarative SLOs with burn-rate alerting, `/health` + `/alerts.json` routes, JSONL event export |

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod paper;

pub use cso_core as core;
pub use cso_deque as deque;
pub use cso_explore as explore;
pub use cso_lincheck as lincheck;
pub use cso_locks as locks;
pub use cso_memory as memory;
pub use cso_metrics as metrics;
pub use cso_profile as profile;
pub use cso_queue as queue;
/// The deterministic-interleaving runtime (only with the `model`
/// feature): drives the production structures through exhaustive,
/// seeded-random, or replayed schedules. See `tests/model_explore.rs`
/// and the CONTRIBUTING.md model-test guide.
#[cfg(feature = "model")]
pub use cso_sched as sched;
pub use cso_shard as shard;
pub use cso_stack as stack;
pub use cso_trace as trace;
pub use cso_watch as watch;
