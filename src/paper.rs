//! # A guided tour: from the paper's text to this code
//!
//! This module is documentation only — a section-by-section
//! concordance between *Mostefaoui & Raynal, “Looking for Efficient
//! Implementations of Concurrent Objects” (PI-1969, 2011)* and the
//! items in this workspace.
//!
//! ## §2 — Computation model
//!
//! | Paper | Code |
//! |---|---|
//! | processes `p_1..p_n`, identities | [`cso_memory::registry::ProcRegistry`] (0-based) |
//! | atomic registers: read / write / `C&S` | [`cso_memory::reg::Reg64`], [`RegBool`](cso_memory::reg::RegBool), [`RegUsize`](cso_memory::reg::RegUsize) — every access counted ([`cso_memory::counting`]) |
//! | §2.2 the ABA problem & sequence numbers | the `seq` fields of [`cso_memory::packed::TopWord`] / [`SlotWord`](cso_memory::packed::SlotWord); the tagged freelist in [`cso_memory::slab::Slab`] |
//!
//! ## §3 — The abortable stack (Figure 1) and non-blocking stack (Figure 2)
//!
//! ```text
//! operation weak_push(v):
//! (01) (index, value, seqnb) ← TOP;                      ┐ AbortableStack::weak_push
//! (02) help(index, value, seqnb);                        │   lines map 1:1 onto the
//! (03) if (index = k) then return(full) end if;          │   commented statements in
//! (04) sn_of_next ← STACK[index + 1].sn;                 │   crates/stack/src/abortable.rs
//! (05) newtop ← ⟨index+1, v, sn_of_next+1⟩;              │
//! (06) if TOP.C&S(⟨index,value,seqnb⟩, newtop)           │
//! (07)    then return(done) else return(⊥) end if.       ┘
//!
//! procedure help(index, value, seqnb):
//! (15) stacktop ← STACK[index].val;                      ┐ AbortableStack::help
//! (16) STACK[index].C&S(⟨stacktop,seqnb−1⟩,⟨value,seqnb⟩)┘
//! ```
//!
//! | Paper | Code |
//! |---|---|
//! | Figure 1 (`weak_push`/`weak_pop`, `help`) | [`cso_stack::AbortableStack`] |
//! | ⊥ | [`cso_core::Aborted`] |
//! | abortable-object notion (§1.2) | the [`cso_core::Abortable`] trait and its contract |
//! | `done`/`full`, value/`empty` | [`cso_stack::PushOutcome`], [`cso_stack::PopOutcome`] |
//! | linearization points (§3) | documented on [`cso_stack::AbortableStack`]; *checked* by [`cso_lincheck::checker::check_linearizable`] over live histories and by [`cso_explore`] over **all** schedules of bounded instances |
//! | Figure 2 (`repeat … until ≠ ⊥`) | [`cso_core::NonBlocking`] (generic) and [`cso_stack::NonBlockingStack`] |
//! | progress conditions hierarchy (§1.2) | [`cso_core::progress::ProgressCondition`] |
//!
//! The model-checker twin of Figure 1 — the same lines as a
//! one-access-per-step machine — is
//! [`cso_explore::algos::stack::WeakStackMachine`].
//!
//! ## §4 — The contention-sensitive stack (Figure 3)
//!
//! ```text
//! operation strong_push_or_pop(par):                        % code for p_i %
//! (01) if (¬CONTENTION)                                     ┐ fast path:
//! (02)    then res ← weak_push_or_pop(par);                 │ ContentionSensitive::apply,
//!              if (res ≠ ⊥) then return(res) end if         │ lines 01–03
//! (03) end if;                                              ┘
//! (04) FLAG[i] ← true;                                      ┐
//! (05) wait((TURN = i) ∨ (¬FLAG[TURN]));                    │ StarvationFree::lock
//! (06) LOCK.lock();                                         ┘ (§4.4 booster)
//! (07) CONTENTION ← true;                                   ┐
//! (08) repeat res ← weak_push_or_pop(par) until res ≠ ⊥;    │ slow path
//! (09) CONTENTION ← false;                                  ┘
//! (10) FLAG[i] ← false;                                     ┐
//! (11) if (¬FLAG[TURN]) then TURN ← (TURN mod n) + 1;       │ StarvationFree::unlock
//! (12) LOCK.unlock();                                       ┘
//! (13) return(res).
//! ```
//!
//! | Paper | Code |
//! |---|---|
//! | Figure 3, generic over the object | [`cso_core::ContentionSensitive`] |
//! | Figure 3 for the stack | [`cso_stack::CsStack`] |
//! | the deadlock-free lock it assumes | any [`cso_locks::RawLock`]; default [`cso_locks::TasLock`] |
//! | §4.4 starred lines as a standalone booster | [`cso_locks::StarvationFree`] |
//! | Theorem 1 (non-⊥, linearizable, 6 accesses, lock-free solo) | asserted in `tests/theorem1.rs`; measured by `e1_access_counts`; model-checked in [`cso_explore::algos::cs_stack`] |
//! | Lemmas 2–3 (termination, eventual lock acquisition) | bounded mechanical form: [`cso_explore::fair`] round-robin runs; hostile-workload stress in `cso-locks` |
//! | the remark that a starvation-free lock makes FLAG/TURN unnecessary | [`cso_core::CsConfig::UNFAIR`] uses the bare lock; pair [`cso_stack::CsStack::with_lock`] with [`cso_locks::TicketLock`] for the remark's configuration |
//!
//! ## §5 — Concluding remarks
//!
//! | Paper | Code |
//! |---|---|
//! | contention managers (refs \[4\], \[25\], \[5\]) | [`cso_core::ContentionManager`] policies ([`NoBackoff`](cso_core::NoBackoff), [`SpinBackoff`](cso_core::SpinBackoff), [`ExpBackoff`](cso_core::ExpBackoff), [`YieldBackoff`](cso_core::YieldBackoff)) |
//! | abortable mutual exclusion (§1.2, ref \[13\]) | [`cso_locks::StarvationFree::lock_abortable`] |
//! | Lamport's fast mutex (§1.1, ref \[16\], “seven accesses”) | [`cso_locks::LamportFastLock`] — measured at exactly 7 |
//! | the queue as the non-interference example (§1.1) | the whole of [`cso_queue`]: enqueue CASes only `TAIL`, dequeue only `HEAD`; exhaustively verified non-interfering |
//! | obstruction-freedom's defining example (§1.2, ref \[8\]: HLM deques) | the whole of [`cso_deque`]: the deque as an abortable object, the original retry loop ([`HlmDeque`](cso_deque::HlmDeque), obstruction-free *only*), and Figure 3 lifting it to starvation freedom ([`CsDeque`](cso_deque::CsDeque)) |
//!
//! ## Known discrepancies and deliberate choices
//!
//! * **“Six” vs “seven”.** §1.2 announces seven accesses for the
//!   contention-free stack operation; Theorem 1 proves six. Our
//!   measurement sides with the theorem (six); Lamport's fast mutex
//!   is the seven.
//! * **0-based identities.** The paper's `p_1..p_n` and
//!   `TURN ← (TURN mod n) + 1` become `0..n` and
//!   `TURN ← (TURN + 1) mod n`.
//! * **Bounded tags.** The paper's sequence numbers are unbounded
//!   integers; the registers here pack 16-bit tags (wrap analysis in
//!   `DESIGN.md`, wrap stress tests in `tests/wraparound.rs`, exact
//!   small-instance semantics in the model checker).
//! * **Crash tolerance (§5).** Like the paper, the lock-free layers
//!   tolerate crashes anywhere; the Figure 3 layer tolerates crashes
//!   anywhere *except while holding the lock*. Both halves — the
//!   tolerance and the caveat — are demonstrated mechanically in
//!   `crates/explore/tests/crash_tolerance.rs` by freezing a process
//!   at every prefix of its operation.

// This module intentionally declares no items.
