//! Mutation self-test: proof the model harness can actually fail.
//!
//! A verification harness that has never caught a planted bug proves
//! nothing. This file carries a test-only copy of the Figure 1
//! abortable stack with **one deliberate mutation**: the helping write
//! (lines 02/15–16, which completes the previous operation's lazy slot
//! update) is moved from *before* the decisive `TOP` C&S to *after*
//! it. Solo the mutant is indistinguishable — same results, same
//! five counted accesses — but the paper's key invariant ("a new TOP
//! is only installed after the current top slot is finalized") is
//! broken: a concurrent pop can read the stale below-top slot and
//! resurrect a dead value. The explorer must find that interleaving
//! within a bounded schedule count, and its printed trace must replay
//! to the same violation.
//!
//! Requires `--features model`.

use std::collections::BTreeSet;
use std::sync::Arc;

use cso::memory::packed::{SlotWord, TopWord};
use cso::memory::reg::Reg64;
use cso::sched::{spawn, Explorer};

/// `⊥` — the paper's "no value" sentinel (must match the real stack's
/// convention of using the value-field zero state for ⊥; the mutant
/// only ever stores non-zero payloads).
const BOTTOM: u32 = 0;

/// The Figure 1 stack with a switch to reorder the helping write.
/// Faithful to `cso_stack::AbortableStack` in structure and counted
/// cost; stripped of stats, elimination, and fail points.
struct MutableStack {
    top: Reg64,
    slots: Vec<Reg64>,
    /// `false` = faithful Figure 1; `true` = help AFTER the TOP C&S.
    help_after_cas: bool,
}

impl MutableStack {
    fn new(capacity: usize, help_after_cas: bool) -> MutableStack {
        let top = Reg64::new(
            TopWord {
                index: 0,
                seq: 0,
                value: BOTTOM,
            }
            .pack(),
        );
        let slots = (0..=capacity)
            .map(|x| {
                let seq = if x == 0 { u16::MAX } else { 0 };
                Reg64::new(SlotWord { value: BOTTOM, seq }.pack())
            })
            .collect();
        MutableStack {
            top,
            slots,
            help_after_cas,
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len() - 1
    }

    /// Lines 15–16: finish the pending lazy write of the operation
    /// that installed `top`.
    fn help(&self, top: TopWord) {
        let slot = &self.slots[usize::from(top.index)];
        let current = SlotWord::unpack(slot.read());
        let old = SlotWord {
            value: current.value,
            seq: top.seq.wrapping_sub(1),
        };
        let new = SlotWord {
            value: top.value,
            seq: top.seq,
        };
        let _ = slot.cas(old.pack(), new.pack());
    }

    /// Lines 01–07, with the help either in its rightful place
    /// (line 02) or mutated to after the decisive C&S.
    fn weak_push(&self, value: u32) -> Result<bool, ()> {
        let observed = TopWord::unpack(self.top.read());
        if !self.help_after_cas {
            self.help(observed);
        }
        if usize::from(observed.index) == self.capacity() {
            if self.help_after_cas {
                self.help(observed);
            }
            return Ok(false); // full
        }
        let next_slot = SlotWord::unpack(self.slots[usize::from(observed.index) + 1].read());
        let newtop = TopWord {
            index: observed.index + 1,
            value,
            seq: next_slot.seq.wrapping_add(1),
        };
        if self.top.cas(observed.pack(), newtop.pack()) {
            if self.help_after_cas {
                // THE MUTATION: the previous top slot gets finalized
                // only after the new TOP is already visible — a window
                // in which a concurrent pop reads the stale slot.
                self.help(observed);
            }
            Ok(true)
        } else {
            Err(())
        }
    }

    /// Lines 08–14 (faithful in both variants; the push-side mutation
    /// is what poisons the slot this reads).
    fn weak_pop(&self) -> Result<Option<u32>, ()> {
        let observed = TopWord::unpack(self.top.read());
        self.help(observed);
        if observed.index == 0 {
            return Ok(None); // empty
        }
        let below = SlotWord::unpack(self.slots[usize::from(observed.index) - 1].read());
        let newtop = TopWord {
            index: observed.index - 1,
            value: below.value,
            seq: below.seq.wrapping_add(1),
        };
        if self.top.cas(observed.pack(), newtop.pack()) {
            Ok(Some(observed.value))
        } else {
            Err(())
        }
    }

    /// Retry loops turning the weak ops strong (Figure 2).
    fn push(&self, value: u32) -> bool {
        loop {
            if let Ok(done) = self.weak_push(value) {
                return done;
            }
        }
    }

    fn pop(&self) -> Option<u32> {
        loop {
            if let Ok(v) = self.weak_pop() {
                return v;
            }
        }
    }
}

/// The conservation body both variants run: push {1, 2} from two
/// threads (1 solo before spawning, 2 concurrently with a pop), then
/// drain and demand the popped multiset is exactly {1, 2}.
fn conservation_body(help_after_cas: bool) {
    let stack = Arc::new(MutableStack::new(3, help_after_cas));
    assert!(stack.push(1), "solo push cannot fail");
    let child = {
        let stack = Arc::clone(&stack);
        spawn(move || {
            assert!(stack.push(2), "capacity 3 cannot fill");
        })
    };
    let mut got = Vec::new();
    if let Some(v) = stack.pop() {
        got.push(v);
    }
    child.join();
    while let Some(v) = stack.pop() {
        got.push(v);
    }
    let distinct: BTreeSet<u32> = got.iter().copied().collect();
    assert_eq!(got.len(), 2, "conservation violated: popped {got:?}");
    assert_eq!(
        distinct,
        BTreeSet::from([1, 2]),
        "conservation violated: popped {got:?}"
    );
}

/// The unmutated control: the faithful Figure 1 ordering survives the
/// identical exhaustive exploration.
#[test]
fn faithful_ordering_survives_exploration() {
    let report = Explorer::exhaustive().explore(|| conservation_body(false));
    report.assert_ok();
    assert!(report.exhausted, "{report}");
    assert!(report.schedules > 1, "{report}");
}

/// The planted bug is found, within a bounded schedule count.
#[test]
fn mutant_is_killed_within_bounded_schedules() {
    let report = Explorer::exhaustive()
        .with_max_schedules(2_000)
        .explore(|| conservation_body(true));
    let violation = report.assert_violation();
    assert!(
        violation.message.contains("conservation violated"),
        "wrong oracle fired: {}",
        violation.message
    );
    assert!(
        report.schedules <= 2_000,
        "took {} schedules to kill the mutant",
        report.schedules
    );
    assert!(
        !violation.trace.is_empty(),
        "a racing schedule must have branch decisions"
    );

    // The printed trace replays to the same violation, first try.
    let replayed = Explorer::replay(&violation.trace).explore(|| conservation_body(true));
    let again = replayed.assert_violation();
    assert_eq!(again.message, violation.message, "replay diverged");
    assert_eq!(replayed.schedules, 1, "replay is a single execution");
}

/// The mutation needs real interleaving to matter: with preemptions
/// forbidden the mutant passes every (serial) schedule — evidence the
/// kill above came from the explorer's interleavings, not from a
/// sequential bug in the copy.
#[test]
fn mutant_survives_serial_schedules() {
    let report = Explorer::exhaustive()
        .with_preemption_bound(Some(0))
        .explore(|| conservation_body(true));
    report.assert_ok();
    assert!(report.exhausted, "{report}");
}
