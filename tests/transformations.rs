//! The generic Figure 2 / Figure 3 transformations composed with
//! every object and lock — the "contention manager that can be used
//! to solve other fairness-related problems" of §1.2.

use cso::core::{
    Abortable, ContentionSensitive, CsConfig, ExpBackoff, NoBackoff, NonBlocking, SpinBackoff,
    YieldBackoff,
};
use cso::locks::{OsLock, TasLock, TicketLock, TtasLock};
use cso::queue::{AbortableQueue, QueueOp, QueueResponse};
use cso::stack::{AbortableStack, PopOutcome, PushOutcome, StackOp, StackResponse};

#[test]
fn figure2_over_the_queue() {
    // The paper instantiates Figure 2 for the stack; the
    // transformation is object-agnostic.
    let nb = NonBlocking::new(AbortableQueue::<u32>::new(8));
    assert!(nb
        .apply(&QueueOp::Enqueue(5))
        .expect_enqueue()
        .is_enqueued());
    match nb.apply(&QueueOp::Dequeue) {
        QueueResponse::Dequeue(out) => assert_eq!(out.into_option(), Some(5)),
        QueueResponse::Enqueue(_) => unreachable!(),
    }
}

#[test]
fn figure3_over_the_queue_with_every_lock() {
    fn exercise<L: cso::locks::RawLock>(lock: L) {
        let cs = ContentionSensitive::new(AbortableQueue::<u32>::new(8), lock, 4);
        for round in 0..50u32 {
            let resp = cs.apply(round as usize % 4, &QueueOp::Enqueue(round));
            assert!(resp.expect_enqueue().is_enqueued());
            let resp = cs.apply((round as usize + 1) % 4, &QueueOp::Dequeue);
            assert_eq!(resp.expect_dequeue().into_option(), Some(round));
        }
        assert_eq!(cs.stats().total(), 100);
    }
    exercise(TasLock::new());
    exercise(TtasLock::new());
    exercise(TicketLock::new());
    exercise(OsLock::new());
}

#[test]
fn figure2_with_every_contention_manager() {
    let stack = AbortableStack::<u32>::new(16);
    // Share one object through several managers (by reference — the
    // blanket impl of Abortable for &O).
    let a = NonBlocking::with_manager(&stack, NoBackoff);
    let b = NonBlocking::with_manager(&stack, SpinBackoff::default());
    let c = NonBlocking::with_manager(&stack, ExpBackoff::default());
    let d = NonBlocking::with_manager(&stack, YieldBackoff);
    a.apply(&StackOp::Push(1));
    b.apply(&StackOp::Push(2));
    c.apply(&StackOp::Push(3));
    match d.apply(&StackOp::Pop) {
        StackResponse::Pop(PopOutcome::Popped(v)) => assert_eq!(v, 3),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(stack.len(), 2);
}

#[test]
fn figure3_ablations_over_the_stack_under_concurrency() {
    use std::sync::Arc;
    for config in [CsConfig::PAPER, CsConfig::NO_FLAG, CsConfig::UNFAIR] {
        let cs = Arc::new(ContentionSensitive::with_config(
            AbortableStack::<u32>::new(4096),
            TasLock::new(),
            4,
            config,
        ));
        let handles: Vec<_> = (0..4)
            .map(|proc| {
                let cs = Arc::clone(&cs);
                std::thread::spawn(move || {
                    let mut pushed = 0u64;
                    let mut popped = 0u64;
                    for i in 0..2_000u32 {
                        match cs.apply(proc, &StackOp::Push(i)) {
                            StackResponse::Push(PushOutcome::Pushed) => pushed += 1,
                            StackResponse::Push(PushOutcome::Full) => {}
                            StackResponse::Pop(_) => unreachable!(),
                        }
                        if let StackResponse::Pop(PopOutcome::Popped(_)) =
                            cs.apply(proc, &StackOp::Pop)
                        {
                            popped += 1;
                        }
                    }
                    (pushed, popped)
                })
            })
            .collect();
        let mut pushed = 0;
        let mut popped = 0;
        for h in handles {
            let (pu, po) = h.join().unwrap();
            pushed += pu;
            popped += po;
        }
        // Conservation: what remains is exactly pushed − popped.
        let remaining = cs.inner().len() as u64;
        assert_eq!(remaining, pushed - popped, "config {config:?}");
    }
}

#[test]
fn nested_transformation_is_still_correct() {
    // Pathological but legal: Figure 2 wrapped around a Figure 3
    // object (a never-⊥ object retried is just the object).
    let cs = ContentionSensitive::new(AbortableStack::<u32>::new(8), TasLock::new(), 2);
    // CsStackOp-style adapter via closure object is overkill; drive
    // the generic Abortable face of ContentionSensitive through a
    // reference-wrapper object instead.
    struct ProcPinned<'a>(&'a ContentionSensitive<AbortableStack<u32>, TasLock>);
    impl Abortable for ProcPinned<'_> {
        type Op = StackOp<u32>;
        type Response = StackResponse<u32>;
        fn try_apply(&self, op: &Self::Op) -> Result<Self::Response, cso::core::Aborted> {
            Ok(self.0.apply(0, op))
        }
    }
    let nb = NonBlocking::new(ProcPinned(&cs));
    assert_eq!(
        nb.apply(&StackOp::Push(9)).expect_push(),
        PushOutcome::Pushed
    );
    assert_eq!(nb.apply(&StackOp::Pop).expect_pop(), PopOutcome::Popped(9));
}
