//! Chaos fail points under the model runtime: fires are schedule
//! decisions, not wall-clock RNG draws.
//!
//! With the default runtime, a probabilistic fail-point plan
//! (`one_in > 1`) draws from the site's RNG in whatever order threads
//! happen to hit it — two runs of the same test can fire on different
//! operations. Under the model runtime the draw is recorded in the
//! execution's decision trace: same schedule, same fires, replayable
//! from the printed trace. These tests pin that contract.
//!
//! Requires `--features model,chaos`. The chaos registry is process-
//! global, so this file serializes its tests behind a mutex (same
//! idiom as `tests/chaos_stress.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cso::memory::chaos::{self, Fault, Plan};
use cso::sched::{spawn, Explorer};
use cso::stack::{AbortableStack, PopOutcome, PushOutcome};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// One exploration of a two-thread abortable-stack body with a
/// probabilistic spurious-abort plan armed on the push fast path.
/// Returns the per-schedule fire counts observed across the whole
/// exploration (keyed by schedule order).
fn fires_per_schedule(seed: u64) -> Vec<u64> {
    let fires = Arc::new(Mutex::new(Vec::new()));
    let report = {
        let fires = Arc::clone(&fires);
        Explorer::exhaustive()
            .with_seed(seed)
            .with_max_schedules(64)
            .explore(move || {
                chaos::reset();
                chaos::arm_plan("stack::push", Plan::one_in(Fault::SpuriousAbort, 2));
                let stack: Arc<AbortableStack<u32>> = Arc::new(AbortableStack::new(4));
                let child = {
                    let stack = Arc::clone(&stack);
                    spawn(move || {
                        // Strong push: retry through injected aborts.
                        while stack.weak_push(2).is_err() {}
                    })
                };
                while stack.weak_push(1).is_err() {}
                child.join();
                let mut popped = Vec::new();
                loop {
                    match stack.weak_pop() {
                        Ok(PopOutcome::Popped(v)) => popped.push(v),
                        Ok(PopOutcome::Empty) => break,
                        Err(_) => {}
                    }
                }
                popped.sort_unstable();
                assert_eq!(popped, vec![1, 2], "conservation under chaos");
                let fired = chaos::fires("stack::push");
                chaos::reset();
                fires.lock().unwrap().push(fired);
            })
    };
    report.assert_ok();
    let out = fires.lock().unwrap().clone();
    assert!(!out.is_empty());
    out
}

/// Same seed ⇒ the exploration walks the same schedules and every
/// probabilistic draw resolves identically — fire counts match
/// schedule-for-schedule.
#[test]
fn chaos_fires_are_schedule_deterministic() {
    let _serial = serial();
    let first = fires_per_schedule(42);
    let second = fires_per_schedule(42);
    assert_eq!(first, second, "same seed must reproduce every draw");
    assert!(
        first.iter().any(|&f| f > 0),
        "a one-in-2 plan must fire somewhere across {} schedules",
        first.len()
    );
}

/// Different seeds decorrelate the draws (the knob is real): at least
/// one schedule position resolves differently.
#[test]
fn chaos_seed_changes_the_draws() {
    let _serial = serial();
    let a = fires_per_schedule(1);
    let b = fires_per_schedule(0xDEAD_BEEF);
    // The schedule *spaces* may differ in size too (a fired abort
    // changes the retry interleaving); either way the runs must not be
    // bit-identical.
    assert_ne!(a, b, "seeds 1 and 0xDEAD_BEEF drew identically");
}

/// `Fault::Panic` at a fail point inside an exploration is reported as
/// an ordinary violation with a replayable trace — crash-at-a-step
/// testing composes with the explorer.
#[test]
fn injected_panic_is_a_replayable_violation() {
    let _serial = serial();
    let body = || {
        chaos::reset();
        // Fire on the second hit: the solo (pre-spawn) push survives,
        // the racing one dies.
        chaos::arm_plan(
            "stack::push",
            Plan {
                fault: Fault::Panic,
                after: 1,
                one_in: 1,
                max_fires: u64::MAX,
            },
        );
        let stack: Arc<AbortableStack<u32>> = Arc::new(AbortableStack::new(4));
        assert!(matches!(stack.weak_push(1), Ok(PushOutcome::Pushed)));
        let child = {
            let stack = Arc::clone(&stack);
            spawn(move || {
                let _ = stack.weak_push(2);
            })
        };
        child.join();
    };
    let report = Explorer::exhaustive().with_max_schedules(16).explore(body);
    let violation = report.assert_violation();
    assert!(
        violation.message.contains("injected panic"),
        "unexpected violation: {}",
        violation.message
    );
    // Replay hits the same panic deterministically.
    let replayed = Explorer::replay(&violation.trace).explore(body);
    assert!(
        replayed
            .assert_violation()
            .message
            .contains("injected panic"),
        "replay diverged"
    );
    chaos::reset();
}

/// `StallForever` under the model is absorbed by the scheduler (the
/// stalled thread spins as *yielded*, everyone else keeps running) and
/// released by `reset` — no wall-clock parking, no hang.
#[test]
fn stall_forever_is_model_absorbed() {
    let _serial = serial();
    let released = Arc::new(AtomicU64::new(0));
    let report = {
        let released = Arc::clone(&released);
        Explorer::exhaustive()
            .with_max_schedules(32)
            .explore(move || {
                chaos::reset();
                chaos::arm_plan(
                    "stack::push",
                    Plan {
                        fault: Fault::StallForever,
                        after: 0,
                        one_in: 1,
                        max_fires: 1,
                    },
                );
                let stack: Arc<AbortableStack<u32>> = Arc::new(AbortableStack::new(4));
                let child = {
                    let stack = Arc::clone(&stack);
                    spawn(move || {
                        let _ = stack.weak_push(2);
                    })
                };
                // The child hits the stall; the body releases it.
                chaos::reset();
                let _ = stack.weak_push(1);
                child.join();
                released.fetch_add(1, Ordering::Relaxed);
            })
    };
    report.assert_ok();
    assert!(released.load(Ordering::Relaxed) > 0);
    chaos::reset();
}
