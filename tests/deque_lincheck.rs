//! Linearizability stress for the HLM deque family.
//!
//! The deque needs its own sequential specification — the linear-HLM
//! arena semantics (per-side space) — implemented here over
//! `cso_deque::SeqDeque` and plugged into the generic Wing–Gong
//! checker. Aborted (⊥) attempts are cancelled per the
//! abortable-object contract; a secretly-effective abort (e.g. a push
//! whose first "bump" C&S changed abstract state) would make the
//! remaining history non-linearizable and fail here.

use cso::deque::{
    AbortableDeque, CsDeque, DequeOp, DequePopOutcome, DequePushOutcome, End, SeqDeque,
};
use cso::lincheck::checker::check_linearizable;
use cso::lincheck::recorder::Recorder;
use cso::lincheck::spec::SeqSpec;

/// Responses, checker-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resp {
    Pushed,
    Full,
    Popped(u32),
    Empty,
}

/// The linear-HLM deque specification.
struct DequeSpec {
    capacity: usize,
}

impl SeqSpec for DequeSpec {
    type State = SeqDeque<u32>;
    type Op = DequeOp<u32>;
    type Resp = Resp;

    fn initial(&self) -> SeqDeque<u32> {
        SeqDeque::new(self.capacity)
    }

    fn apply(&self, state: &SeqDeque<u32>, op: &DequeOp<u32>) -> (SeqDeque<u32>, Resp) {
        let mut next = state.clone();
        let resp = match op {
            DequeOp::Push(end, v) => match next.push(*end, *v) {
                DequePushOutcome::Pushed => Resp::Pushed,
                DequePushOutcome::Full => Resp::Full,
            },
            DequeOp::Pop(end) => match next.pop(*end) {
                DequePopOutcome::Popped(v) => Resp::Popped(v),
                DequePopOutcome::Empty => Resp::Empty,
            },
        };
        (next, resp)
    }
}

const CAPACITY: usize = 4;
const THREADS: usize = 3;
const OPS: usize = 7;

#[test]
fn abortable_deque_histories_linearize() {
    let spec = DequeSpec { capacity: CAPACITY };
    for round in 0..200 {
        let deque: AbortableDeque<u32> = AbortableDeque::new(CAPACITY);
        let recorder: Recorder<DequeOp<u32>, Resp> = Recorder::new();
        std::thread::scope(|s| {
            for proc in 0..THREADS {
                let deque = &deque;
                let recorder = recorder.clone();
                s.spawn(move || {
                    for i in 0..OPS {
                        let end = if (proc + i) % 2 == 0 {
                            End::Left
                        } else {
                            End::Right
                        };
                        if (proc * 31 + i * 17 + round) % 3 != 0 {
                            let v = (round * 100 + proc * OPS + i) as u32;
                            recorder.invoke(proc, DequeOp::Push(end, v));
                            match deque.try_push(end, v) {
                                Ok(DequePushOutcome::Pushed) => recorder.ret(proc, Resp::Pushed),
                                Ok(DequePushOutcome::Full) => recorder.ret(proc, Resp::Full),
                                Err(_) => recorder.cancel(proc),
                            }
                        } else {
                            recorder.invoke(proc, DequeOp::Pop(end));
                            match deque.try_pop(end) {
                                Ok(DequePopOutcome::Popped(v)) => {
                                    recorder.ret(proc, Resp::Popped(v));
                                }
                                Ok(DequePopOutcome::Empty) => recorder.ret(proc, Resp::Empty),
                                Err(_) => recorder.cancel(proc),
                            }
                        }
                        if i % 2 == round % 2 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        let history = recorder.finish();
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}: deque history not linearizable"
        );
    }
}

#[test]
fn cs_deque_histories_linearize() {
    let spec = DequeSpec { capacity: CAPACITY };
    for round in 0..120 {
        let deque: CsDeque<u32> = CsDeque::new(CAPACITY, THREADS);
        let recorder: Recorder<DequeOp<u32>, Resp> = Recorder::new();
        std::thread::scope(|s| {
            for proc in 0..THREADS {
                let deque = &deque;
                let recorder = recorder.clone();
                s.spawn(move || {
                    for i in 0..OPS {
                        let end = if (proc + i) % 2 == 0 {
                            End::Left
                        } else {
                            End::Right
                        };
                        if (proc + i + round) % 2 == 0 {
                            let v = (round * 100 + proc * OPS + i) as u32;
                            recorder.invoke(proc, DequeOp::Push(end, v));
                            let resp = match deque.push(proc, end, v) {
                                DequePushOutcome::Pushed => Resp::Pushed,
                                DequePushOutcome::Full => Resp::Full,
                            };
                            recorder.ret(proc, resp);
                        } else {
                            recorder.invoke(proc, DequeOp::Pop(end));
                            let resp = match deque.pop(proc, end) {
                                DequePopOutcome::Popped(v) => Resp::Popped(v),
                                DequePopOutcome::Empty => Resp::Empty,
                            };
                            recorder.ret(proc, resp);
                        }
                    }
                });
            }
        });
        let history = recorder.finish();
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}: cs-deque history not linearizable"
        );
    }
}
