//! Linearizability of the sharded structures.
//!
//! Strict mode must satisfy the **unrelaxed** stack/queue
//! specifications — the order journal makes the multi-lane structure
//! indistinguishable from a single cell. Relaxed mode must satisfy the
//! k-relaxed specification at `k = relaxation_bound()`: running every
//! recorded history through the Wing–Gong membership check for the
//! k-spec is exactly the proof that the *observed* relaxation never
//! exceeds the *configured* bound.

use cso::lincheck::checker::{check_linearizable, check_relaxed_linearizable};
use cso::lincheck::recorder::Recorder;
use cso::lincheck::specs::queue::{QueueSpec, SpecQueueOp, SpecQueueResp};
use cso::lincheck::specs::relaxed::{KQueueSpec, KStackSpec};
use cso::lincheck::specs::stack::{SpecStackOp, SpecStackResp, StackSpec};
use cso::queue::{DequeueOutcome, EnqueueOutcome};
use cso::shard::{ShardConfig, ShardedCsQueue, ShardedCsStack};
use cso::stack::{PopOutcome, PushOutcome};

const THREADS: usize = 3;
const OPS: usize = 7;

fn run_stack_round(
    stack: &ShardedCsStack<u32>,
    round: usize,
) -> cso::lincheck::History<SpecStackOp, SpecStackResp> {
    let recorder: Recorder<SpecStackOp, SpecStackResp> = Recorder::new();
    std::thread::scope(|s| {
        for proc in 0..THREADS {
            let recorder = recorder.clone();
            s.spawn(move || {
                for i in 0..OPS {
                    if (proc * 31 + i * 17 + round) % 3 != 0 {
                        let v = (round * 100 + proc * OPS + i) as u32;
                        let handle = recorder.begin(proc, SpecStackOp::Push(v));
                        match stack.push(proc, v) {
                            PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
                            PushOutcome::Full => handle.finish(SpecStackResp::Full),
                        }
                    } else {
                        let handle = recorder.begin(proc, SpecStackOp::Pop);
                        match stack.pop(proc) {
                            PopOutcome::Popped(v) => handle.finish(SpecStackResp::Popped(v)),
                            PopOutcome::Empty => handle.finish(SpecStackResp::Empty),
                        }
                    }
                    if i % 2 == round % 2 {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    recorder.finish()
}

fn run_queue_round(
    queue: &ShardedCsQueue<u32>,
    round: usize,
) -> cso::lincheck::History<SpecQueueOp, SpecQueueResp> {
    let recorder: Recorder<SpecQueueOp, SpecQueueResp> = Recorder::new();
    std::thread::scope(|s| {
        for proc in 0..THREADS {
            let recorder = recorder.clone();
            s.spawn(move || {
                for i in 0..OPS {
                    if (proc * 13 + i * 7 + round) % 3 != 0 {
                        let v = (round * 100 + proc * OPS + i) as u32;
                        let handle = recorder.begin(proc, SpecQueueOp::Enqueue(v));
                        match queue.enqueue(proc, v) {
                            EnqueueOutcome::Enqueued => handle.finish(SpecQueueResp::Enqueued),
                            EnqueueOutcome::Full => handle.finish(SpecQueueResp::Full),
                        }
                    } else {
                        let handle = recorder.begin(proc, SpecQueueOp::Dequeue);
                        match queue.dequeue(proc) {
                            DequeueOutcome::Dequeued(v) => {
                                handle.finish(SpecQueueResp::Dequeued(v));
                            }
                            DequeueOutcome::Empty => handle.finish(SpecQueueResp::Empty),
                        }
                    }
                    if i % 2 == round % 2 {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    recorder.finish()
}

#[test]
fn strict_sharded_stack_histories_linearize_unrelaxed() {
    let spec = StackSpec::new(4);
    for round in 0..120 {
        let stack: ShardedCsStack<u32> = ShardedCsStack::new(4, THREADS, ShardConfig::strict(2));
        let history = run_stack_round(&stack, round);
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}:\n{history}"
        );
    }
}

#[test]
fn strict_sharded_queue_histories_linearize_unrelaxed() {
    let spec = QueueSpec::new(4);
    for round in 0..120 {
        let queue: ShardedCsQueue<u32> = ShardedCsQueue::new(4, THREADS, ShardConfig::strict(2));
        let history = run_queue_round(&queue, round);
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}:\n{history}"
        );
    }
}

#[test]
fn relaxed_sharded_stack_stays_within_its_relaxation_bound() {
    for round in 0..100 {
        let stack: ShardedCsStack<u32> =
            ShardedCsStack::new(4, THREADS, ShardConfig::relaxed(2, 2));
        let spec = KStackSpec::new(stack.capacity(), stack.relaxation_bound());
        let history = run_stack_round(&stack, round);
        assert!(
            check_relaxed_linearizable(&spec, &history).is_linearizable(),
            "round {round} exceeded k={}:\n{history}",
            stack.relaxation_bound()
        );
    }
}

#[test]
fn relaxed_sharded_queue_stays_within_its_relaxation_bound() {
    for round in 0..100 {
        let queue: ShardedCsQueue<u32> =
            ShardedCsQueue::new(4, THREADS, ShardConfig::relaxed(2, 2));
        let spec = KQueueSpec::new(queue.capacity(), queue.relaxation_bound());
        let history = run_queue_round(&queue, round);
        assert!(
            check_relaxed_linearizable(&spec, &history).is_linearizable(),
            "round {round} exceeded k={}:\n{history}",
            queue.relaxation_bound()
        );
    }
}

#[test]
fn elastic_relaxed_stack_stays_within_its_relaxation_bound() {
    // Aggressive cadence so split/merge happens *during* the checked
    // histories.
    for round in 0..60 {
        let stack: ShardedCsStack<u32> = ShardedCsStack::new(
            8,
            THREADS,
            ShardConfig::relaxed(4, 6)
                .with_elastic()
                .with_elastic_cadence(4, 0),
        );
        let spec = KStackSpec::new(stack.capacity(), stack.relaxation_bound());
        let history = run_stack_round(&stack, round);
        assert!(
            check_relaxed_linearizable(&spec, &history).is_linearizable(),
            "round {round} exceeded k={}:\n{history}",
            stack.relaxation_bound()
        );
    }
}
