//! Randomized differential testing: every implementation, driven
//! solo with arbitrary operation sequences, must agree exactly with
//! the sequential reference (`SeqStack` / `SeqQueue`).
//!
//! This is the "behaves like an ordinary object when accessed
//! sequentially" half of the abortable-object definition (§1.2),
//! checked across the whole family at once.

use cso::memory::backoff::XorShift64;

use cso::queue::{
    AbortableQueue, CsQueue, DequeueOutcome, EnqueueOutcome, LockQueue, MsQueue, NonBlockingQueue,
    SeqQueue,
};
use cso::stack::{
    AbortableStack, CsStack, EliminationStack, LockStack, NonBlockingStack, PopOutcome,
    PushOutcome, SeqStack, TreiberStack,
};

const CAPACITY: usize = 8;

/// A solo driver facade over each stack flavour.
enum AnyStack {
    Weak(AbortableStack<u16>),
    Nb(NonBlockingStack<u16>),
    Cs(Box<CsStack<u16>>),
    Treiber(TreiberStack<u16>),
    Elim(EliminationStack<u16>),
    Locked(LockStack<u16>),
}

impl AnyStack {
    fn all() -> Vec<AnyStack> {
        vec![
            AnyStack::Weak(AbortableStack::new(CAPACITY)),
            AnyStack::Nb(NonBlockingStack::new(CAPACITY)),
            AnyStack::Cs(Box::new(CsStack::new(CAPACITY, 1))),
            AnyStack::Treiber(TreiberStack::new()),
            AnyStack::Elim(EliminationStack::new(2)),
            AnyStack::Locked(LockStack::new(CAPACITY)),
        ]
    }

    fn name(&self) -> &'static str {
        match self {
            AnyStack::Weak(_) => "abortable",
            AnyStack::Nb(_) => "non-blocking",
            AnyStack::Cs(_) => "contention-sensitive",
            AnyStack::Treiber(_) => "treiber",
            AnyStack::Elim(_) => "elimination",
            AnyStack::Locked(_) => "lock",
        }
    }

    /// Unbounded stacks can't answer `Full`; the differential check
    /// skips push-at-capacity steps for them.
    fn bounded(&self) -> bool {
        !matches!(self, AnyStack::Treiber(_) | AnyStack::Elim(_))
    }

    fn push(&self, v: u16) -> PushOutcome {
        match self {
            AnyStack::Weak(s) => s.weak_push(v).expect("solo never aborts"),
            AnyStack::Nb(s) => s.push(v),
            AnyStack::Cs(s) => s.push(0, v),
            AnyStack::Treiber(s) => {
                s.push(v);
                PushOutcome::Pushed
            }
            AnyStack::Elim(s) => {
                s.push(v);
                PushOutcome::Pushed
            }
            AnyStack::Locked(s) => s.push(v),
        }
    }

    fn pop(&self) -> PopOutcome<u16> {
        match self {
            AnyStack::Weak(s) => s.weak_pop().expect("solo never aborts"),
            AnyStack::Nb(s) => s.pop(),
            AnyStack::Cs(s) => s.pop(0),
            AnyStack::Treiber(s) => match s.pop() {
                Some(v) => PopOutcome::Popped(v),
                None => PopOutcome::Empty,
            },
            AnyStack::Elim(s) => match s.pop() {
                Some(v) => PopOutcome::Popped(v),
                None => PopOutcome::Empty,
            },
            AnyStack::Locked(s) => s.pop(),
        }
    }
}

/// Draws a random op sequence: `Some(v)` = push/enqueue, `None` = pop.
fn random_ops(rng: &mut XorShift64, max_len: u64) -> Vec<Option<u16>> {
    let len = rng.next_u64() % max_len;
    (0..len)
        .map(|_| {
            let word = rng.next_u64();
            (word & 1 == 0).then_some((word >> 1) as u16)
        })
        .collect()
}

const CASES: usize = 64;

#[test]
fn all_stacks_agree_with_the_sequential_reference() {
    let mut rng = XorShift64::new(0xD1FF_57AC);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 120);
        for stack in AnyStack::all() {
            let mut reference: SeqStack<u16> = SeqStack::new(CAPACITY);
            for op in &ops {
                match op {
                    Some(v) => {
                        if !stack.bounded() && reference.len() == CAPACITY {
                            continue; // unbounded stacks can't report Full
                        }
                        let got = stack.push(*v);
                        let want = reference.push(*v);
                        assert_eq!(got, want, "{} push", stack.name());
                    }
                    None => {
                        let got = stack.pop();
                        let want = reference.pop();
                        assert_eq!(got, want, "{} pop", stack.name());
                    }
                }
            }
        }
    }
}

/// A solo driver facade over each queue flavour.
enum AnyQueue {
    Weak(AbortableQueue<u16>),
    Nb(NonBlockingQueue<u16>),
    Cs(Box<CsQueue<u16>>),
    Ms(MsQueue<u16>),
    Locked(LockQueue<u16>),
}

impl AnyQueue {
    fn all() -> Vec<AnyQueue> {
        vec![
            AnyQueue::Weak(AbortableQueue::new(CAPACITY)),
            AnyQueue::Nb(NonBlockingQueue::new(CAPACITY)),
            AnyQueue::Cs(Box::new(CsQueue::new(CAPACITY, 1))),
            AnyQueue::Ms(MsQueue::new()),
            AnyQueue::Locked(LockQueue::new(CAPACITY)),
        ]
    }

    fn name(&self) -> &'static str {
        match self {
            AnyQueue::Weak(_) => "abortable",
            AnyQueue::Nb(_) => "non-blocking",
            AnyQueue::Cs(_) => "contention-sensitive",
            AnyQueue::Ms(_) => "michael-scott",
            AnyQueue::Locked(_) => "lock",
        }
    }

    fn bounded(&self) -> bool {
        !matches!(self, AnyQueue::Ms(_))
    }

    fn enqueue(&self, v: u16) -> EnqueueOutcome {
        match self {
            AnyQueue::Weak(q) => q.weak_enqueue(v).expect("solo never aborts"),
            AnyQueue::Nb(q) => q.enqueue(v),
            AnyQueue::Cs(q) => q.enqueue(0, v),
            AnyQueue::Ms(q) => {
                q.enqueue(v);
                EnqueueOutcome::Enqueued
            }
            AnyQueue::Locked(q) => q.enqueue(v),
        }
    }

    fn dequeue(&self) -> DequeueOutcome<u16> {
        match self {
            AnyQueue::Weak(q) => q.weak_dequeue().expect("solo never aborts"),
            AnyQueue::Nb(q) => q.dequeue(),
            AnyQueue::Cs(q) => q.dequeue(0),
            AnyQueue::Ms(q) => match q.dequeue() {
                Some(v) => DequeueOutcome::Dequeued(v),
                None => DequeueOutcome::Empty,
            },
            AnyQueue::Locked(q) => q.dequeue(),
        }
    }
}

#[test]
fn all_queues_agree_with_the_sequential_reference() {
    let mut rng = XorShift64::new(0xD1FF_0EFE);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 120);
        for queue in AnyQueue::all() {
            let mut reference: SeqQueue<u16> = SeqQueue::new(CAPACITY);
            for op in &ops {
                match op {
                    Some(v) => {
                        if !queue.bounded() && reference.len() == CAPACITY {
                            continue;
                        }
                        let got = queue.enqueue(*v);
                        let want = reference.enqueue(*v);
                        assert_eq!(got, want, "{} enqueue", queue.name());
                    }
                    None => {
                        let got = queue.dequeue();
                        let want = reference.dequeue();
                        assert_eq!(got, want, "{} dequeue", queue.name());
                    }
                }
            }
        }
    }
}
