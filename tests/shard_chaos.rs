//! Chaos stress for the sharded router: spurious aborts, panic kills,
//! and hard-stalled lock holders, audited against the per-lane
//! occupancy aggregate.
//!
//! These tests require the `chaos` feature:
//!
//! ```text
//! cargo test --features chaos --test shard_chaos
//! ```
//!
//! The E14 kill-site audit, shard edition: the router updates the
//! aggregate *after* a lane operation returns, so a kill before the
//! lane applies leaves nothing to record, and a kill after the apply
//! but before the update marks the aggregate dirty (unwind guard) for
//! the next operation to heal. Every test here closes with the same
//! invariant: **a killed operation may neither leak nor double-count
//! lane occupancy** — after `refresh_occupancy()`, the aggregate
//! equals the sum of lane ground truths and the drained values equal
//! the successfully pushed ones exactly.
//!
//! The chaos fail-point registry is process-global, so tests serialize
//! behind one mutex (same pattern as `tests/chaos_stress.rs`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use cso::core::{CsConfig, RecoveryPolicy};
use cso::memory::chaos::{self, Fault, Plan};
use cso::shard::{ShardConfig, ShardedCsStack};
use cso::stack::{PopOutcome, PushOutcome};

// The chaos registry is process-global: serialize the scenarios.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Sum of lane ground truths — what the aggregate must agree with at
/// quiescence.
fn lane_sum(stack: &ShardedCsStack<u32>) -> usize {
    (0..stack.lanes()).map(|i| stack.lane(i).len()).sum()
}

/// Spurious-abort storm over a mixed 3-thread workload in both modes:
/// aborted attempts retry down the ladder, but completed operations
/// must conserve values and the aggregate must track the lanes.
#[test]
fn abort_storm_conserves_values_and_aggregate() {
    let _serial = serial();
    for config in [ShardConfig::strict(2), ShardConfig::relaxed(2, 4)] {
        for round in 0..40usize {
            chaos::reset();
            chaos::arm_plan("stack::push", Plan::one_in(Fault::SpuriousAbort, 3));
            chaos::arm_plan("stack::pop", Plan::one_in(Fault::SpuriousAbort, 3));
            chaos::arm_plan("cs::fast", Plan::one_in(Fault::SpuriousAbort, 4));
            chaos::arm_plan("tas::acquire", Plan::one_in(Fault::Yield, 2));

            let stack: ShardedCsStack<u32> = ShardedCsStack::new(64, 3, config);
            let pushed = Mutex::new(Vec::new());
            let popped = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for proc in 0..3 {
                    let stack = &stack;
                    let pushed = &pushed;
                    let popped = &popped;
                    s.spawn(move || {
                        for i in 0..7usize {
                            if (proc * 31 + i * 17 + round) % 3 != 0 {
                                let v = (round * 100 + proc * 7 + i) as u32;
                                if stack.push(proc, v) == PushOutcome::Pushed {
                                    pushed.lock().unwrap().push(v);
                                }
                            } else if let PopOutcome::Popped(v) = stack.pop(proc) {
                                popped.lock().unwrap().push(v);
                            }
                        }
                    });
                }
            });

            // Aggregate audit at quiescence.
            stack.refresh_occupancy();
            assert_eq!(
                stack.aggregate().len(),
                lane_sum(&stack),
                "aggregate drifted"
            );

            // Conservation: popped ∪ residue == successfully pushed.
            let mut seen = popped.into_inner().unwrap();
            while let PopOutcome::Popped(v) = stack.pop(0) {
                seen.push(v);
            }
            seen.sort_unstable();
            let mut expect = pushed.into_inner().unwrap();
            expect.sort_unstable();
            assert_eq!(seen, expect, "round {round} under {config:?}");
        }
    }
    assert!(chaos::fires("stack::push") > 0, "the storm never fired");
    chaos::reset();
}

/// A panic kill inside a **relaxed-mode** lane operation (fast path
/// vetoed, victim dies under the lane lock): the unwind guard marks
/// the aggregate dirty, the next operation heals it, and the victim's
/// value neither leaks in nor double-counts.
#[test]
fn panic_kill_in_relaxed_lane_heals_the_aggregate() {
    let _serial = serial();
    chaos::reset();
    let stack: ShardedCsStack<u32> = ShardedCsStack::new(32, 3, ShardConfig::relaxed(2, 16));
    for v in 1..=10 {
        assert_eq!(stack.push(0, v), PushOutcome::Pushed);
    }
    let len_before = stack.len();

    chaos::arm_plan("cs::fast", Plan::once(Fault::SpuriousAbort));
    chaos::arm_plan("cs::locked", Plan::once(Fault::Panic));
    let killed = catch_unwind(AssertUnwindSafe(|| stack.push(1, 999)));
    assert!(killed.is_err(), "the injected panic must surface");
    assert!(
        stack.aggregate().is_dirty(),
        "a kill mid-lane must flag the aggregate"
    );

    // The next routed operation heals before doing anything else.
    assert_eq!(stack.push(2, 11), PushOutcome::Pushed);
    assert!(!stack.aggregate().is_dirty(), "heal must consume the flag");
    assert!(stack.router_stats().heals >= 1);
    assert_eq!(stack.len(), len_before + 1, "999 must not be counted");
    assert_eq!(stack.aggregate().len(), lane_sum(&stack));

    // Conservation: the victim's value never surfaces.
    let mut drained = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|proc| {
                let stack = &stack;
                s.spawn(move || {
                    let mut got = Vec::new();
                    while let PopOutcome::Popped(v) = stack.pop(proc) {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            drained.extend(h.join().unwrap());
        }
    });
    drained.sort_unstable();
    assert_eq!(drained, (1..=11).collect::<Vec<u32>>(), "999 leaked in");
    chaos::reset();
}

/// A panic kill inside a **strict-mode** lane operation: the order
/// latch releases on unwind (no wedge), the journal stays consistent
/// with the lanes after the heal, and the surviving values drain in
/// exact LIFO order.
#[test]
fn panic_kill_in_strict_mode_releases_the_latch_and_keeps_order() {
    let _serial = serial();
    chaos::reset();
    let stack: ShardedCsStack<u32> = ShardedCsStack::new(32, 3, ShardConfig::strict(2));
    for v in 1..=6 {
        assert_eq!(stack.push(0, v), PushOutcome::Pushed);
    }

    chaos::arm_plan("cs::fast", Plan::once(Fault::SpuriousAbort));
    chaos::arm_plan("cs::locked", Plan::once(Fault::Panic));
    let killed = catch_unwind(AssertUnwindSafe(|| stack.push(1, 999)));
    assert!(killed.is_err(), "the injected panic must surface");

    // The latch must have been released by the guard's unwind drop:
    // every operation below would wedge otherwise.
    stack.refresh_occupancy();
    assert_eq!(stack.aggregate().len(), lane_sum(&stack));
    assert_eq!(stack.len(), 6, "999 must not be journaled");

    // Exact LIFO across the kill.
    for expect in (1..=6).rev() {
        assert_eq!(stack.pop(2), PopOutcome::Popped(expect));
    }
    assert_eq!(stack.pop(0), PopOutcome::Empty);
    chaos::reset();
}

/// The E14 endgame at shard level: a victim hard-stalled forever while
/// holding one lane's slow-path lock. With a [`RecoveryPolicy`] on the
/// lanes, survivors routed to that lane suspect the corpse, seize the
/// lock by succession, and complete; conservation and the aggregate
/// stay exact. (Relaxed mode: strict mode's order latch has no
/// succession protocol, so its crash story covers unwinding kills
/// only — see DESIGN.md.)
#[test]
fn stalled_lane_lock_holder_is_succeeded_and_aggregate_stays_exact() {
    let _serial = serial();
    chaos::reset();
    const PER_THREAD: u32 = 50;
    let policy = RecoveryPolicy {
        grace: Duration::from_secs(3600), // suspect only on mark_dead
        max_successions: 8,
        backoff: Duration::from_millis(1),
    };
    let cs = CsConfig::PAPER.without_fast_path().with_recovery(policy);
    // 2 lanes, n = 4: procs 0 and 2 share home lane 0, so survivor 2
    // must cross the corpse's lane.
    let stack = Arc::new(ShardedCsStack::<u32>::new(
        4096,
        4,
        ShardConfig::relaxed(2, 4096).with_cs(cs),
    ));

    // The victim (proc 0, home lane 0) takes lane 0's slow-path lock
    // and dies there.
    chaos::arm_plan("cs::locked", Plan::once(Fault::StallForever));
    let _corpse = {
        let stack = Arc::clone(&stack);
        std::thread::spawn(move || {
            let _ = stack.push(0, 999_999);
        })
    };
    while chaos::fires("cs::locked") == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    stack
        .lane(0)
        .liveness()
        .expect("recovery enabled")
        .mark_dead(0);

    // Survivors 1..=3 complete their whole workloads — including
    // proc 2, whose home lane is the corpse's.
    std::thread::scope(|s| {
        for proc in 1..=3usize {
            let stack = &stack;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let v = proc as u32 * PER_THREAD + i;
                    assert_eq!(stack.push(proc, v), PushOutcome::Pushed);
                }
            });
        }
    });
    let successions: u64 = (0..stack.lanes())
        .map(|i| {
            stack
                .lane(i)
                .recovery_stats()
                .expect("recovery enabled")
                .successions
        })
        .sum();
    assert!(successions >= 1, "the corpse's lane lock was never seized");

    // Kill-site audit: the stalled op applied nothing and recorded
    // nothing — no leak, no double-count.
    stack.refresh_occupancy();
    assert_eq!(stack.aggregate().len(), lane_sum(&stack));
    assert_eq!(lane_sum(&stack), 3 * PER_THREAD as usize);

    let mut drained = Vec::new();
    while let PopOutcome::Popped(v) = stack.pop(1) {
        drained.push(v);
    }
    drained.sort_unstable();
    let expected: Vec<u32> = (1..=3u32)
        .flat_map(|p| p * PER_THREAD..(p + 1) * PER_THREAD)
        .collect();
    assert_eq!(
        drained, expected,
        "values lost or duplicated past the crash"
    );
    chaos::reset();
}
