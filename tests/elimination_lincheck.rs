//! Linearizability of the elimination rung.
//!
//! An eliminated pair never touches the stack's `TOP`: the pusher's
//! value flows straight to the popper through the exchanger, and the
//! pair linearizes back-to-back at the taker's admission instant —
//! which lies inside both operations' invoke/return windows (the
//! offeror is still parked when the taker commits). These stress
//! tests record live histories with the owner-pinned
//! [`Recorder::begin`] handles and run them through the Wing–Gong
//! checker, so that claim is checked against real interleavings
//! rather than argued.

use cso::core::CsConfig;
use cso::lincheck::checker::check_linearizable;
use cso::lincheck::recorder::Recorder;
use cso::lincheck::specs::stack::{SpecStackOp, SpecStackResp, StackSpec};
use cso::locks::TasLock;
use cso::stack::{CsStack, PopOutcome, PushOutcome};

const THREADS: usize = 3;
const OPS: usize = 7;

fn drive_round(stack: &CsStack<u32>, round: usize) -> Recorder<SpecStackOp, SpecStackResp> {
    let recorder: Recorder<SpecStackOp, SpecStackResp> = Recorder::new();
    std::thread::scope(|s| {
        for proc in 0..THREADS {
            let recorder = recorder.clone();
            s.spawn(move || {
                for i in 0..OPS {
                    if (proc * 31 + i * 17 + round) % 2 == 0 {
                        let v = (round * 100 + proc * OPS + i) as u32;
                        let handle = recorder.begin(proc, SpecStackOp::Push(v));
                        match stack.push(proc, v) {
                            PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
                            PushOutcome::Full => handle.finish(SpecStackResp::Full),
                        }
                    } else {
                        let handle = recorder.begin(proc, SpecStackOp::Pop);
                        match stack.pop(proc) {
                            PopOutcome::Popped(v) => handle.finish(SpecStackResp::Popped(v)),
                            PopOutcome::Empty => handle.finish(SpecStackResp::Empty),
                        }
                    }
                    if i % 2 == round % 2 {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    recorder
}

/// The full ladder with the fast path *on*: mixed fast, retried,
/// eliminated, and locked completions must all linearize together.
#[test]
fn ladder_stack_histories_linearize() {
    let spec = StackSpec::new(4);
    for round in 0..120 {
        let stack: CsStack<u32> =
            CsStack::with_config(4, TasLock::new(), THREADS, CsConfig::LADDER);
        let history = drive_round(&stack, round).finish();
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}:\n{history}"
        );
    }
}

/// Elimination-heavy regime: fast path off and no retry rung, so
/// every operation goes straight to the exchanger before the lock.
/// The histories must linearize, and — across the whole run — real
/// rendezvous must have happened (the machinery was exercised, not
/// just compiled).
#[test]
fn elimination_heavy_histories_linearize_and_rendezvous() {
    let spec = StackSpec::new(4);
    let config = CsConfig::PAPER.without_fast_path().with_elimination();
    let mut total_pairs = 0u64;
    let mut total_eliminated = 0u64;
    for round in 0..120 {
        let stack: CsStack<u32> = CsStack::with_config(4, TasLock::new(), THREADS, config);
        let history = drive_round(&stack, round).finish();
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}:\n{history}"
        );
        assert_eq!(stack.path_stats().fast, 0, "fast path must be off");
        total_pairs += stack.eliminated_pairs();
        total_eliminated += stack.path_stats().eliminated;
    }
    assert!(
        total_pairs > 0,
        "120 elimination-heavy rounds never paired an inverse couple"
    );
    // Both sides of every rendezvous completed on the eliminated path.
    assert_eq!(total_eliminated, total_pairs * 2);
}

/// The `Path::Eliminated` accounting surfaces agree with each other:
/// the per-object path statistics, the exchanger's pair counter, and
/// the attached `cso-metrics` registry all describe the same run.
/// (The trace/analyzer surface is checked end-to-end by the traced
/// E13 run in CI: `cso-analyze` reconstructs the eliminated spans
/// with full coverage.)
#[test]
fn eliminated_path_surfaces_agree() {
    let registry = cso::metrics::Registry::new();
    let config = CsConfig::PAPER.without_fast_path().with_elimination();
    let stack: CsStack<u32> = CsStack::with_config(64, TasLock::new(), THREADS, config);
    stack.attach_metrics(&registry, "e13");

    std::thread::scope(|s| {
        for proc in 0..THREADS {
            let stack = &stack;
            s.spawn(move || {
                for i in 0..2_000u32 {
                    if (proc as u32 + i) % 2 == 0 {
                        stack.push(proc, i);
                    } else {
                        stack.pop(proc);
                    }
                }
            });
        }
    });

    let paths = stack.path_stats();
    assert_eq!(
        paths.eliminated,
        stack.eliminated_pairs() * 2,
        "path stats vs exchanger pair counter"
    );
    assert_eq!(
        registry.counter("e13_ops_eliminated_total").value(),
        paths.eliminated,
        "metrics registry vs path stats"
    );
    // Paths partition completions: every op finished on exactly one.
    assert_eq!(paths.total(), u64::from(THREADS as u32) * 2_000);
}
