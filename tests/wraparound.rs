//! Sequence-tag wrap-around stress.
//!
//! The packed registers carry 16-bit sequence tags (`DESIGN.md`
//! documents the bounded-tag caveat). These tests drive tiny-capacity
//! structures through *many multiples* of 2¹⁶ same-slot operations so
//! every tag wraps repeatedly, while tracking value uniqueness: a
//! tag-logic bug (stale help resurrecting an old word) would surface
//! as a duplicated, lost or invented value.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};
use std::sync::Arc;

use cso::queue::{CsQueue, DequeueOutcome, EnqueueOutcome};
use cso::stack::{CsStack, PopOutcome, PushOutcome};

/// Each pushed value is a globally unique ticket; each popped ticket
/// is marked in a byte map. Duplicate pops or invented values panic.
struct Ledger {
    next: AtomicU32,
    seen: Vec<AtomicU8>,
}

impl Ledger {
    fn new(max: usize) -> Ledger {
        Ledger {
            next: AtomicU32::new(0),
            seen: (0..max).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    fn issue(&self) -> u32 {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        assert!((ticket as usize) < self.seen.len(), "ledger capacity");
        ticket
    }

    fn redeem(&self, ticket: u32) {
        let slot = self
            .seen
            .get(ticket as usize)
            .unwrap_or_else(|| panic!("invented value {ticket}"));
        let prev = slot.fetch_add(1, Ordering::Relaxed);
        assert_eq!(prev, 0, "value {ticket} popped twice");
    }

    fn assert_all_redeemed_up_to(&self, issued: u32) {
        for ticket in 0..issued {
            assert_eq!(
                self.seen[ticket as usize].load(Ordering::Relaxed),
                1,
                "value {ticket} lost"
            );
        }
    }
}

/// Solo: capacity-1 stack cycled 4 × 2¹⁶ times — the slot-1 sequence
/// tag wraps four times; LIFO answers must stay exact.
#[test]
fn stack_tags_wrap_solo() {
    const CYCLES: u32 = 4 * 65_536 + 17;
    let stack: CsStack<u32> = CsStack::new(1, 1);
    for i in 0..CYCLES {
        assert_eq!(stack.push(0, i), PushOutcome::Pushed);
        assert_eq!(stack.push(0, i), PushOutcome::Full);
        assert_eq!(stack.pop(0), PopOutcome::Popped(i));
        assert_eq!(stack.pop(0), PopOutcome::Empty);
    }
}

/// Solo: capacity-2 queue cycled past several counter wraps (HEAD and
/// TAIL counters are 16-bit); FIFO answers must stay exact.
#[test]
fn queue_tags_wrap_solo() {
    const CYCLES: u32 = 3 * 65_536 + 5;
    let queue: CsQueue<u32> = CsQueue::new(2, 1);
    assert_eq!(queue.enqueue(0, u32::MAX), EnqueueOutcome::Enqueued);
    for i in 0..CYCLES {
        assert_eq!(queue.enqueue(0, i), EnqueueOutcome::Enqueued);
        let expected = if i == 0 { u32::MAX } else { i - 1 };
        assert_eq!(queue.dequeue(0), DequeueOutcome::Dequeued(expected));
    }
}

/// Concurrent: two threads hammer a capacity-2 stack across multiple
/// tag wraps; the ledger proves no value is duplicated, lost or
/// invented.
#[test]
fn stack_tags_wrap_concurrently() {
    const PER_THREAD: usize = 150_000; // ≥ 2 wraps of slot tags per slot
    const THREADS: usize = 2;
    let stack: Arc<CsStack<u32>> = Arc::new(CsStack::new(2, THREADS));
    let ledger = Arc::new(Ledger::new(THREADS * PER_THREAD + 4));

    let handles: Vec<_> = (0..THREADS)
        .map(|proc| {
            let stack = Arc::clone(&stack);
            let ledger = Arc::clone(&ledger);
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    let ticket = ledger.issue();
                    // A tiny stack may be Full; retry with a fresh pop.
                    loop {
                        match stack.push(proc, ticket) {
                            PushOutcome::Pushed => break,
                            PushOutcome::Full => {
                                if let PopOutcome::Popped(v) = stack.pop(proc) {
                                    ledger.redeem(v);
                                }
                            }
                        }
                    }
                    if let PopOutcome::Popped(v) = stack.pop(proc) {
                        ledger.redeem(v);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Drain the residue.
    while let PopOutcome::Popped(v) = stack.pop(0) {
        ledger.redeem(v);
    }
    let issued = ledger.next.load(Ordering::Relaxed);
    assert_eq!(issued as usize, THREADS * PER_THREAD);
    ledger.assert_all_redeemed_up_to(issued);
}

/// Concurrent: producer/consumer across several 16-bit counter wraps
/// on a small queue; FIFO order is asserted end to end.
#[test]
fn queue_counters_wrap_concurrently() {
    const EVENTS: u32 = 200_000; // ~3 wraps of the 16-bit counters
    let queue: Arc<CsQueue<u32>> = Arc::new(CsQueue::new(4, 2));
    let done = Arc::new(AtomicBool::new(false));

    let producer = {
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            for v in 0..EVENTS {
                while queue.enqueue(0, v) != EnqueueOutcome::Enqueued {
                    std::thread::yield_now();
                }
            }
        })
    };
    let consumer = {
        let queue = Arc::clone(&queue);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut expected = 0u32;
            while expected < EVENTS {
                match queue.dequeue(1) {
                    DequeueOutcome::Dequeued(v) => {
                        assert_eq!(v, expected, "FIFO across counter wraps");
                        expected += 1;
                    }
                    DequeueOutcome::Empty => std::thread::yield_now(),
                }
            }
            done.store(true, Ordering::Relaxed);
        })
    };
    producer.join().unwrap();
    consumer.join().unwrap();
    assert!(done.load(Ordering::Relaxed));
    assert!(queue.is_empty());
}
