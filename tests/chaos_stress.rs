//! Chaos stress harness (`--features chaos`): arm the fail points in
//! the weak operations, the transformation, and the locks, then check
//! that the contention-sensitive objects stay **linearizable** and
//! **conserve values** while faults fire.
//!
//! This is the integration half of the fault-injection subsystem: the
//! fail points simulate abort storms, perturbed schedules, and §5-style
//! crashes at adversarial program points, and cso-lincheck's Wing–Gong
//! checker plus conservation accounting prove the degradation is
//! graceful — slower paths, never wrong answers.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use cso::core::{CsConfig, RecoveryPolicy};
use cso::deque::{CsDeque, DequeOp, DequePopOutcome, DequePushOutcome, End, SeqDeque};
use cso::lincheck::checker::check_linearizable;
use cso::lincheck::recorder::Recorder;
use cso::lincheck::spec::SeqSpec;
use cso::lincheck::specs::queue::{QueueSpec, SpecQueueOp, SpecQueueResp};
use cso::lincheck::specs::stack::{SpecStackOp, SpecStackResp, StackSpec};
use cso::memory::chaos::{self, Fault, Plan};
use cso::queue::{CsQueue, DequeueOutcome, EnqueueOutcome};
use cso::stack::{CsStack, PopOutcome, PushOutcome};

// The chaos registry is process-global: serialize the scenarios.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

const THREADS: usize = 3;
const OPS: usize = 7;

#[test]
fn cs_stack_linearizes_under_weak_op_abort_storm() {
    let _serial = serial();
    chaos::reset();
    // Aborts in the weak push/pop (pathological interference), vetoes
    // of the fast path, and yields inside the TAS lock.
    chaos::arm_plan("stack::push", Plan::one_in(Fault::SpuriousAbort, 3));
    chaos::arm_plan("stack::pop", Plan::one_in(Fault::SpuriousAbort, 3));
    chaos::arm_plan("cs::fast", Plan::one_in(Fault::SpuriousAbort, 4));
    chaos::arm_plan("tas::acquire", Plan::one_in(Fault::Yield, 2));

    let spec = StackSpec::new(4);
    for round in 0..40 {
        let stack: CsStack<u32> = CsStack::new(4, THREADS);
        let recorder: Recorder<SpecStackOp, SpecStackResp> = Recorder::new();
        std::thread::scope(|s| {
            for proc in 0..THREADS {
                let stack = &stack;
                let recorder = recorder.clone();
                s.spawn(move || {
                    for i in 0..OPS {
                        if (proc * 31 + i * 17 + round) % 3 != 0 {
                            let v = (round * 100 + proc * OPS + i) as u32;
                            recorder.invoke(proc, SpecStackOp::Push(v));
                            let resp = match stack.push(proc, v) {
                                PushOutcome::Pushed => SpecStackResp::Pushed,
                                PushOutcome::Full => SpecStackResp::Full,
                            };
                            recorder.ret(proc, resp);
                        } else {
                            recorder.invoke(proc, SpecStackOp::Pop);
                            let resp = match stack.pop(proc) {
                                PopOutcome::Popped(v) => SpecStackResp::Popped(v),
                                PopOutcome::Empty => SpecStackResp::Empty,
                            };
                            recorder.ret(proc, resp);
                        }
                    }
                });
            }
        });
        let history = recorder.finish();
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round} under chaos:\n{history}"
        );
    }
    assert!(
        chaos::fires("stack::push") > 0 && chaos::fires("stack::pop") > 0,
        "the storm never fired — the harness tested nothing"
    );
    chaos::reset();
}

#[test]
fn cs_queue_conserves_values_under_chaos() {
    let _serial = serial();
    chaos::reset();
    chaos::arm_plan("queue::enqueue", Plan::one_in(Fault::SpuriousAbort, 3));
    chaos::arm_plan("queue::dequeue", Plan::one_in(Fault::SpuriousAbort, 3));
    chaos::arm_plan(
        "cs::lock-wait",
        Plan::one_in(Fault::Delay(Duration::from_micros(20)), 4),
    );

    const WORKERS: u32 = 4;
    const PER_THREAD: u32 = 400;
    let queue: CsQueue<u32> = CsQueue::new(4096, WORKERS as usize);
    let mut all: Vec<u32> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|t| {
                let queue = &queue;
                s.spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..PER_THREAD {
                        assert_eq!(
                            queue.enqueue(t as usize, t * PER_THREAD + i),
                            EnqueueOutcome::Enqueued
                        );
                        if let DequeueOutcome::Dequeued(v) = queue.dequeue(t as usize) {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    while let DequeueOutcome::Dequeued(v) = queue.dequeue(0) {
        all.push(v);
    }
    // Conservation: every value enqueued exactly once came out exactly
    // once, spurious aborts notwithstanding.
    assert_eq!(all.len(), (WORKERS * PER_THREAD) as usize);
    assert_eq!(all.iter().collect::<HashSet<_>>().len(), all.len());
    assert!(chaos::fires("queue::enqueue") > 0);
    chaos::reset();
}

/// The escalation ladder under an abort storm: weak operations abort
/// (in the fast path, in the contention-management retries, and under
/// the lock), exchanger claims are spuriously refused, and the lock
/// yields — yet every value pushed once comes out exactly once, and
/// the eliminated-path accounting stays consistent with the
/// exchanger's pair counter.
#[test]
fn cs_stack_ladder_conserves_values_under_chaos() {
    let _serial = serial();
    chaos::reset();
    chaos::arm_plan("stack::push", Plan::one_in(Fault::SpuriousAbort, 3));
    chaos::arm_plan("stack::pop", Plan::one_in(Fault::SpuriousAbort, 3));
    chaos::arm_plan("cs::fast", Plan::one_in(Fault::SpuriousAbort, 4));
    chaos::arm_plan("exchange::claim", Plan::one_in(Fault::SpuriousAbort, 3));
    chaos::arm_plan("tas::acquire", Plan::one_in(Fault::Yield, 2));

    const WORKERS: u32 = 4;
    const PER_THREAD: u32 = 400;
    let stack: CsStack<u32> = CsStack::with_config(
        4096,
        cso::locks::TasLock::new(),
        WORKERS as usize,
        CsConfig::LADDER,
    );
    let mut all: Vec<u32> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|t| {
                let stack = &stack;
                s.spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..PER_THREAD {
                        assert_eq!(
                            stack.push(t as usize, t * PER_THREAD + i),
                            PushOutcome::Pushed
                        );
                        if let PopOutcome::Popped(v) = stack.pop(t as usize) {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    while let PopOutcome::Popped(v) = stack.pop(0) {
        all.push(v);
    }
    // Conservation: an eliminated pair hands the value from pusher to
    // popper directly; with claims randomly refused and retries
    // aborting, nothing may be lost or duplicated.
    assert_eq!(all.len(), (WORKERS * PER_THREAD) as usize);
    assert_eq!(all.iter().collect::<HashSet<_>>().len(), all.len());
    let paths = stack.path_stats();
    assert_eq!(paths.eliminated, stack.eliminated_pairs() * 2);
    assert_eq!(paths.total(), u64::from(WORKERS * PER_THREAD) * 2 + 1);
    assert!(chaos::fires("stack::push") > 0);
    chaos::reset();
}

#[test]
fn cs_queue_linearizes_under_chaos() {
    let _serial = serial();
    chaos::reset();
    chaos::arm_plan("queue::enqueue", Plan::one_in(Fault::SpuriousAbort, 3));
    chaos::arm_plan("queue::dequeue", Plan::one_in(Fault::SpuriousAbort, 3));
    chaos::arm_plan("sfree::wait", Plan::one_in(Fault::Yield, 2));

    let spec = QueueSpec::new(4);
    for round in 0..40 {
        let queue: CsQueue<u32> = CsQueue::new(4, THREADS);
        let recorder: Recorder<SpecQueueOp, SpecQueueResp> = Recorder::new();
        std::thread::scope(|s| {
            for proc in 0..THREADS {
                let queue = &queue;
                let recorder = recorder.clone();
                s.spawn(move || {
                    for i in 0..OPS {
                        if (proc * 13 + i * 7 + round) % 3 != 0 {
                            let v = (round * 100 + proc * OPS + i) as u32;
                            recorder.invoke(proc, SpecQueueOp::Enqueue(v));
                            let resp = match queue.enqueue(proc, v) {
                                EnqueueOutcome::Enqueued => SpecQueueResp::Enqueued,
                                EnqueueOutcome::Full => SpecQueueResp::Full,
                            };
                            recorder.ret(proc, resp);
                        } else {
                            recorder.invoke(proc, SpecQueueOp::Dequeue);
                            let resp = match queue.dequeue(proc) {
                                DequeueOutcome::Dequeued(v) => SpecQueueResp::Dequeued(v),
                                DequeueOutcome::Empty => SpecQueueResp::Empty,
                            };
                            recorder.ret(proc, resp);
                        }
                    }
                });
            }
        });
        let history = recorder.finish();
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}: queue history not linearizable under chaos"
        );
    }
    chaos::reset();
}

/// The linear-HLM deque specification (see tests/deque_lincheck.rs).
struct DequeSpec {
    capacity: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DequeResp {
    Pushed,
    Full,
    Popped(u32),
    Empty,
}

impl SeqSpec for DequeSpec {
    type State = SeqDeque<u32>;
    type Op = DequeOp<u32>;
    type Resp = DequeResp;

    fn initial(&self) -> SeqDeque<u32> {
        SeqDeque::new(self.capacity)
    }

    fn apply(&self, state: &SeqDeque<u32>, op: &DequeOp<u32>) -> (SeqDeque<u32>, DequeResp) {
        let mut next = state.clone();
        let resp = match op {
            DequeOp::Push(end, v) => match next.push(*end, *v) {
                DequePushOutcome::Pushed => DequeResp::Pushed,
                DequePushOutcome::Full => DequeResp::Full,
            },
            DequeOp::Pop(end) => match next.pop(*end) {
                DequePopOutcome::Popped(v) => DequeResp::Popped(v),
                DequePopOutcome::Empty => DequeResp::Empty,
            },
        };
        (next, resp)
    }
}

#[test]
fn cs_deque_linearizes_under_weak_op_abort_storm() {
    let _serial = serial();
    chaos::reset();
    chaos::arm_plan("deque::push", Plan::one_in(Fault::SpuriousAbort, 3));
    chaos::arm_plan("deque::pop", Plan::one_in(Fault::SpuriousAbort, 3));

    let spec = DequeSpec { capacity: 4 };
    for round in 0..30 {
        let deque: CsDeque<u32> = CsDeque::new(4, THREADS);
        let recorder: Recorder<DequeOp<u32>, DequeResp> = Recorder::new();
        std::thread::scope(|s| {
            for proc in 0..THREADS {
                let deque = &deque;
                let recorder = recorder.clone();
                s.spawn(move || {
                    for i in 0..OPS {
                        let end = if (proc + i + round) % 2 == 0 {
                            End::Left
                        } else {
                            End::Right
                        };
                        if (proc * 31 + i * 17 + round) % 3 != 0 {
                            let v = (round * 100 + proc * OPS + i) as u32;
                            recorder.invoke(proc, DequeOp::Push(end, v));
                            let resp = match deque.push(proc, end, v) {
                                DequePushOutcome::Pushed => DequeResp::Pushed,
                                DequePushOutcome::Full => DequeResp::Full,
                            };
                            recorder.ret(proc, resp);
                        } else {
                            recorder.invoke(proc, DequeOp::Pop(end));
                            let resp = match deque.pop(proc, end) {
                                DequePopOutcome::Popped(v) => DequeResp::Popped(v),
                                DequePopOutcome::Empty => DequeResp::Empty,
                            };
                            recorder.ret(proc, resp);
                        }
                    }
                });
            }
        });
        let history = recorder.finish();
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}: deque history not linearizable under chaos"
        );
    }
    chaos::reset();
}

/// A §5-style crash (panic while holding the slow-path lock) in the
/// middle of a stack workload: the victim's operation vanishes without
/// effect, everyone else finishes, and the surviving contents are
/// exactly the successfully pushed values.
#[test]
fn panic_in_stack_slow_path_preserves_conservation() {
    let _serial = serial();
    chaos::reset();
    let stack: CsStack<u32> = CsStack::new(64, 3);
    for v in 1..=10 {
        assert_eq!(stack.push(0, v), PushOutcome::Pushed);
    }

    // Veto the fast path once so the next push goes under the lock,
    // then kill it there.
    chaos::arm_plan("cs::fast", Plan::once(Fault::SpuriousAbort));
    chaos::arm_plan("cs::locked", Plan::once(Fault::Panic));
    let poisoned = catch_unwind(AssertUnwindSafe(|| stack.push(1, 999)));
    assert!(poisoned.is_err(), "the injected panic must surface");
    assert_eq!(stack.fault_stats().poisoned, 1);

    // The object heals: concurrent threads drain it completely.
    let mut drained: Vec<u32> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|proc| {
                let stack = &stack;
                s.spawn(move || {
                    let mut got = Vec::new();
                    while let PopOutcome::Popped(v) = stack.pop(proc) {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    drained.sort_unstable();
    assert_eq!(
        drained,
        (1..=10).collect::<Vec<u32>>(),
        "999 must not leak in"
    );
    chaos::reset();
}

/// The §5 caveat, *solved*: a lock holder hard-killed inside the
/// critical section — stalled forever, never resumed, never joined —
/// used to wedge every slow-path operation for good. With a
/// [`RecoveryPolicy`] armed, the survivors suspect the corpse, seize
/// the lock by custody transfer, and finish **all** of their
/// operations. Conservation is exact: the dead process stalled before
/// its weak operation, so its value never appears.
#[test]
fn hard_killed_lock_holder_is_succeeded_and_survivors_complete() {
    let _serial = serial();
    chaos::reset();
    const SURVIVORS: usize = 3;
    const PER_THREAD: u32 = 200;
    let policy = RecoveryPolicy {
        grace: Duration::from_secs(3600), // suspect only on mark_dead
        max_successions: 8,
        backoff: Duration::from_millis(1),
    };
    let config = CsConfig::PAPER.without_fast_path().with_recovery(policy);
    let stack = std::sync::Arc::new(CsStack::<u32>::with_config(
        4096,
        cso::locks::TasLock::new(),
        SURVIVORS + 1,
        config,
    ));

    // The victim (proc 0) takes the slow-path lock and dies there.
    chaos::arm_plan("cs::locked", Plan::once(Fault::StallForever));
    let _corpse = {
        let stack = std::sync::Arc::clone(&stack);
        std::thread::spawn(move || {
            let _ = stack.push(0, 999_999);
        })
    };
    while chaos::fires("cs::locked") == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    stack.liveness().expect("recovery enabled").mark_dead(0);

    // Every surviving process completes its whole workload — no wedge.
    std::thread::scope(|s| {
        for proc in 1..=SURVIVORS {
            let stack = &stack;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let v = proc as u32 * PER_THREAD + i;
                    assert_eq!(stack.push(proc, v), PushOutcome::Pushed);
                }
            });
        }
    });

    let stats = stack.recovery_stats().expect("recovery enabled");
    assert!(stats.successions >= 1, "the corpse's lock was never seized");
    assert!(!stats.failed);
    assert!(!stack.is_poisoned());
    assert_eq!(stack.fault_stats().poisoned, 0);

    // Exact conservation: all survivor values once, the corpse's never.
    let mut drained = Vec::new();
    while let PopOutcome::Popped(v) = stack.pop(1) {
        drained.push(v);
    }
    drained.sort_unstable();
    let expected: Vec<u32> = (1..=SURVIVORS as u32)
        .flat_map(|p| p * PER_THREAD..(p + 1) * PER_THREAD)
        .collect();
    assert_eq!(
        drained, expected,
        "values lost or duplicated past the crash"
    );

    // reset() revives the corpse; its push lands on a fenced unlock
    // (the lock moved on without it) and harms nothing.
    chaos::reset();
}

/// A combiner killed **mid-batch** (the `cs::combine` fail point fires
/// between claiming publication records and applying them): the guard
/// poisons exactly the in-flight claims, their owners reclaim and
/// retry clean, and the crash surfaces in [`FaultStats`] — one
/// poisoned tenure, at least one poisoned record. The combiner applies
/// its *own* operation before serving the batch, so even the
/// panicking thread's value is on the stack; conservation is exact.
///
/// [`FaultStats`]: cso::core::FaultStats
#[test]
fn panic_in_combiner_batch_poisons_only_in_flight_records() {
    let _serial = serial();
    const WORKERS: usize = 3;
    const PER_THREAD: u32 = 40;
    // Forced slow path + combining: every operation posts a record, so
    // any overlap produces a batch for the fail point to kill.
    let config = CsConfig::PAPER.without_fast_path().with_combining();

    // The fail point only fires when the panicking tenure actually
    // claimed a record (a true mid-batch crash); retry the workload
    // until scheduling produces one.
    for attempt in 0.. {
        assert!(attempt < 500, "no schedule ever produced a batch to kill");
        chaos::reset();
        let stack: cso::stack::CsStack<u32> = cso::stack::CsStack::with_config(
            (WORKERS as u32 * PER_THREAD) as usize,
            cso::locks::TasLock::new(),
            WORKERS,
            config,
        );
        chaos::arm_plan("cs::combine", Plan::once(Fault::Panic));

        std::thread::scope(|s| {
            for proc in 0..WORKERS {
                let stack = &stack;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        let v = proc as u32 * PER_THREAD + i;
                        // The injected panic unwinds out of the victim's
                        // push — after its own op applied (see above).
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            assert_eq!(stack.push(proc, v), PushOutcome::Pushed);
                        }));
                    }
                });
            }
        });

        if chaos::fires("cs::combine") == 0 {
            continue; // no batch overlapped the fail point; retry
        }

        let faults = stack.fault_stats();
        assert_eq!(faults.poisoned, 1, "exactly one tenure was killed");
        assert!(
            faults.record_poisoned >= 1,
            "a mid-batch crash must poison its in-flight claims"
        );
        assert!(stack.combining_stats().batches >= 1);

        // Conservation: poisoned waiters retried clean and the victim's
        // own op had already applied, so every value is present once.
        let mut drained = Vec::new();
        while let PopOutcome::Popped(v) = stack.pop(0) {
            drained.push(v);
        }
        drained.sort_unstable();
        assert_eq!(
            drained,
            (0..WORKERS as u32 * PER_THREAD).collect::<Vec<u32>>(),
            "attempt {attempt}: values lost or duplicated across the crash"
        );
        break;
    }
    chaos::reset();
}
