//! Exhaustive and seeded-random model exploration of the sharded
//! router.
//!
//! ```text
//! cargo test --features model,chaos --test model_shard
//! ```
//!
//! Each body runs once per explored schedule, from the top, with fresh
//! state (CONTRIBUTING.md, "Writing a model test"). The router's own
//! bookkeeping — aggregate, elastic controller, strict-order latch —
//! is uncounted, but every *lane* operation's counted accesses are
//! scheduling decisions, and the latch/elastic code paths run between
//! them, so the explorer drives stealing, spilling, and split/merge
//! through every interleaving of the real lanes.
//!
//! The elastic cadence in these bodies is operation-count driven (no
//! wall-clock anywhere in the controller), so the split/merge history
//! is a deterministic function of the schedule — exactly what replay
//! needs.

use std::collections::BTreeSet;
use std::sync::Arc;

use cso::lincheck::checker::{check_linearizable, check_relaxed_linearizable};
use cso::lincheck::recorder::Recorder;
use cso::lincheck::specs::queue::{QueueSpec, SpecQueueOp, SpecQueueResp};
use cso::lincheck::specs::relaxed::KStackSpec;
use cso::lincheck::specs::stack::{SpecStackOp, SpecStackResp, StackSpec};
use cso::memory::runtime;
use cso::queue::{DequeueOutcome, EnqueueOutcome};
use cso::sched::{spawn, Explorer};
use cso::shard::{ShardConfig, ShardedCsQueue, ShardedCsStack};
use cso::stack::{PopOutcome, PushOutcome};
use cso::trace::audit::StepAuditor;

/// Theorem 1 per lane: six accesses for a solo stack op, seven for
/// the queue (the extra `CONTENTION` read of the opposite end).
const STACK_BUDGET: u64 = 6;
const QUEUE_BUDGET: u64 = 7;

#[test]
fn model_runtime_is_active() {
    assert_eq!(runtime::active_name(), "model");
}

/// The router adds **zero** counted accesses: solo sharded operations
/// under the model runtime stay exactly on the single-cell budgets, in
/// every mode (strict latch, relaxed probing, elastic contracted to
/// one lane).
#[test]
fn solo_sharded_ops_keep_the_cell_budgets_under_model() {
    for config in [
        ShardConfig::strict(2),
        ShardConfig::relaxed(2, 4),
        ShardConfig::relaxed(2, 4).with_elastic(),
    ] {
        let report = Explorer::exhaustive().explore(move || {
            let stack: ShardedCsStack<u32> = ShardedCsStack::new(8, 2, config);
            let auditor = StepAuditor::strict(STACK_BUDGET);
            assert!(matches!(
                auditor.audit(|| stack.push(0, 7)),
                PushOutcome::Pushed
            ));
            assert!(matches!(
                auditor.audit(|| stack.pop(0)),
                PopOutcome::Popped(7)
            ));
            assert!(auditor.report().clean());

            let queue: ShardedCsQueue<u32> = ShardedCsQueue::new(8, 2, config);
            let auditor = StepAuditor::strict(QUEUE_BUDGET);
            assert!(matches!(
                auditor.audit(|| queue.enqueue(0, 9)),
                EnqueueOutcome::Enqueued
            ));
            assert!(matches!(
                auditor.audit(|| queue.dequeue(0)),
                DequeueOutcome::Dequeued(9)
            ));
            assert!(auditor.report().clean());
        });
        report.assert_ok();
        assert_eq!(report.schedules, 1, "a solo body has exactly one schedule");
    }
}

/// Exhaustive 2-thread × 2-lane **strict** exploration: the ticket
/// latch serializes ordering decisions across lanes, so every
/// interleaving must satisfy the *unrelaxed* stack spec, conserve
/// values, and leave the aggregate agreeing with the lanes.
#[test]
fn exhaustive_strict_two_lane_stack_linearizes() {
    let report = Explorer::exhaustive().explore(|| {
        let stack: Arc<ShardedCsStack<u32>> =
            Arc::new(ShardedCsStack::new(2, 2, ShardConfig::strict(2)));
        let recorder: Recorder<SpecStackOp, SpecStackResp> = Recorder::new();
        let child = {
            let stack = Arc::clone(&stack);
            let recorder = recorder.clone();
            spawn(move || {
                let mut got = Vec::new();
                let handle = recorder.begin(1, SpecStackOp::Push(2));
                match stack.push(1, 2) {
                    PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
                    PushOutcome::Full => handle.finish(SpecStackResp::Full),
                }
                let handle = recorder.begin(1, SpecStackOp::Pop);
                match stack.pop(1) {
                    PopOutcome::Popped(v) => {
                        got.push(v);
                        handle.finish(SpecStackResp::Popped(v));
                    }
                    PopOutcome::Empty => handle.finish(SpecStackResp::Empty),
                }
                got
            })
        };
        let mut got = Vec::new();
        let handle = recorder.begin(0, SpecStackOp::Push(1));
        match stack.push(0, 1) {
            PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
            PushOutcome::Full => handle.finish(SpecStackResp::Full),
        }
        let handle = recorder.begin(0, SpecStackOp::Pop);
        match stack.pop(0) {
            PopOutcome::Popped(v) => {
                got.push(v);
                handle.finish(SpecStackResp::Popped(v));
            }
            PopOutcome::Empty => handle.finish(SpecStackResp::Empty),
        }
        got.extend(child.join());

        while let PopOutcome::Popped(v) = stack.pop(0) {
            got.push(v);
        }
        let distinct: BTreeSet<u32> = got.iter().copied().collect();
        assert_eq!(got.len(), 2, "conservation: {got:?}");
        assert_eq!(distinct, BTreeSet::from([1, 2]), "conservation: {got:?}");

        // At quiescence the aggregate must agree with lane ground
        // truth exactly.
        let lane_sum: usize = (0..stack.lanes()).map(|i| stack.lane(i).len()).sum();
        assert_eq!(stack.aggregate().len(), lane_sum);
        assert_eq!(lane_sum, 0);

        let history = recorder.finish();
        assert!(
            check_linearizable(&StackSpec::new(2), &history).is_linearizable(),
            "non-linearizable history:\n{history}"
        );
    });
    report.assert_ok();
    assert!(report.exhausted, "{report}");
    assert!(report.schedules > 1, "two threads must branch: {report}");
}

/// Exhaustive 2-thread × 2-lane **elastic relaxed** exploration with
/// the most aggressive cadence (evaluate every op, no cooldown): the
/// active prefix flips between 1 and 2 *during* the ops, stealing
/// races the merges, and in every schedule the structure must conserve
/// values, keep a sane lane count, satisfy the k-spec at its
/// advertised bound, and leave the aggregate equal to the lane sums.
#[test]
fn exhaustive_elastic_split_merge_with_stealing() {
    let report = Explorer::exhaustive().explore(|| {
        let stack: Arc<ShardedCsStack<u32>> = Arc::new(ShardedCsStack::new(
            4,
            2,
            ShardConfig::relaxed(2, 2)
                .with_elastic()
                .with_elastic_cadence(1, 0),
        ));
        let bound = stack.relaxation_bound();
        let capacity = stack.capacity();
        let recorder: Recorder<SpecStackOp, SpecStackResp> = Recorder::new();
        let child = {
            let stack = Arc::clone(&stack);
            let recorder = recorder.clone();
            spawn(move || {
                let mut got = Vec::new();
                let handle = recorder.begin(1, SpecStackOp::Push(2));
                match stack.push(1, 2) {
                    PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
                    PushOutcome::Full => handle.finish(SpecStackResp::Full),
                }
                let handle = recorder.begin(1, SpecStackOp::Pop);
                match stack.pop(1) {
                    PopOutcome::Popped(v) => {
                        got.push(v);
                        handle.finish(SpecStackResp::Popped(v));
                    }
                    PopOutcome::Empty => handle.finish(SpecStackResp::Empty),
                }
                got
            })
        };
        let mut got = Vec::new();
        let handle = recorder.begin(0, SpecStackOp::Push(1));
        match stack.push(0, 1) {
            PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
            PushOutcome::Full => handle.finish(SpecStackResp::Full),
        }
        let handle = recorder.begin(0, SpecStackOp::Pop);
        match stack.pop(0) {
            PopOutcome::Popped(v) => {
                got.push(v);
                handle.finish(SpecStackResp::Popped(v));
            }
            PopOutcome::Empty => handle.finish(SpecStackResp::Empty),
        }
        got.extend(child.join());

        // No lost lane: the active prefix stays in 1..=lanes, and
        // deactivated lanes still drain (pops probe all lanes).
        let active = stack.active_lanes();
        assert!(active >= 1 && active <= stack.lanes(), "active {active}");

        while let PopOutcome::Popped(v) = stack.pop(0) {
            got.push(v);
        }
        let distinct: BTreeSet<u32> = got.iter().copied().collect();
        assert_eq!(got.len(), 2, "conservation: {got:?}");
        assert_eq!(distinct, BTreeSet::from([1, 2]), "conservation: {got:?}");

        let lane_sum: usize = (0..stack.lanes()).map(|i| stack.lane(i).len()).sum();
        assert_eq!(stack.aggregate().len(), lane_sum, "aggregate drifted");
        assert_eq!(lane_sum, 0, "values left stranded in a merged-away lane");

        let history = recorder.finish();
        assert!(
            check_relaxed_linearizable(&KStackSpec::new(capacity, bound), &history)
                .is_linearizable(),
            "history exceeded k={bound}:\n{history}"
        );
    });
    report.assert_ok();
    assert!(report.exhausted, "{report}");
    assert!(report.schedules > 1, "{report}");
}

/// Exhaustive 2-thread strict **queue** exploration: FIFO across two
/// lanes under the order journal.
#[test]
fn exhaustive_strict_two_lane_queue_linearizes() {
    let report = Explorer::exhaustive().explore(|| {
        let queue: Arc<ShardedCsQueue<u32>> =
            Arc::new(ShardedCsQueue::new(2, 2, ShardConfig::strict(2)));
        let recorder: Recorder<SpecQueueOp, SpecQueueResp> = Recorder::new();
        let child = {
            let queue = Arc::clone(&queue);
            let recorder = recorder.clone();
            spawn(move || {
                let mut got = Vec::new();
                let handle = recorder.begin(1, SpecQueueOp::Enqueue(2));
                match queue.enqueue(1, 2) {
                    EnqueueOutcome::Enqueued => handle.finish(SpecQueueResp::Enqueued),
                    EnqueueOutcome::Full => handle.finish(SpecQueueResp::Full),
                }
                let handle = recorder.begin(1, SpecQueueOp::Dequeue);
                match queue.dequeue(1) {
                    DequeueOutcome::Dequeued(v) => {
                        got.push(v);
                        handle.finish(SpecQueueResp::Dequeued(v));
                    }
                    DequeueOutcome::Empty => handle.finish(SpecQueueResp::Empty),
                }
                got
            })
        };
        let mut got = Vec::new();
        let handle = recorder.begin(0, SpecQueueOp::Enqueue(1));
        match queue.enqueue(0, 1) {
            EnqueueOutcome::Enqueued => handle.finish(SpecQueueResp::Enqueued),
            EnqueueOutcome::Full => handle.finish(SpecQueueResp::Full),
        }
        let handle = recorder.begin(0, SpecQueueOp::Dequeue);
        match queue.dequeue(0) {
            DequeueOutcome::Dequeued(v) => {
                got.push(v);
                handle.finish(SpecQueueResp::Dequeued(v));
            }
            DequeueOutcome::Empty => handle.finish(SpecQueueResp::Empty),
        }
        got.extend(child.join());
        while let DequeueOutcome::Dequeued(v) = queue.dequeue(0) {
            got.push(v);
        }
        let distinct: BTreeSet<u32> = got.iter().copied().collect();
        assert_eq!(got.len(), 2, "conservation: {got:?}");
        assert_eq!(distinct, BTreeSet::from([1, 2]), "conservation: {got:?}");

        let history = recorder.finish();
        assert!(
            check_linearizable(&QueueSpec::new(2), &history).is_linearizable(),
            "non-linearizable history:\n{history}"
        );
    });
    report.assert_ok();
    assert!(report.exhausted, "{report}");
    assert!(report.schedules > 1, "{report}");
}

/// A seeded-random 3-thread sweep beyond the exhaustive envelope:
/// elastic relaxed sharding with the aggressive cadence, checked
/// against the k-spec at the advertised bound. Failures print the
/// schedule seed and a replay trace.
#[test]
fn random_sweep_three_thread_elastic_shard_holds() {
    let report = Explorer::random(0x0005_AA4D_5EED, 150).explore(|| {
        let stack: Arc<ShardedCsStack<u32>> = Arc::new(ShardedCsStack::new(
            6,
            3,
            ShardConfig::relaxed(2, 2)
                .with_elastic()
                .with_elastic_cadence(2, 0),
        ));
        let bound = stack.relaxation_bound();
        let capacity = stack.capacity();
        let recorder: Recorder<SpecStackOp, SpecStackResp> = Recorder::new();
        let children: Vec<_> = (1..3usize)
            .map(|proc| {
                let stack = Arc::clone(&stack);
                let recorder = recorder.clone();
                spawn(move || {
                    let v = proc as u32;
                    let handle = recorder.begin(proc, SpecStackOp::Push(v));
                    match stack.push(proc, v) {
                        PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
                        PushOutcome::Full => handle.finish(SpecStackResp::Full),
                    }
                    let handle = recorder.begin(proc, SpecStackOp::Pop);
                    match stack.pop(proc) {
                        PopOutcome::Popped(v) => handle.finish(SpecStackResp::Popped(v)),
                        PopOutcome::Empty => handle.finish(SpecStackResp::Empty),
                    }
                })
            })
            .collect();
        let handle = recorder.begin(0, SpecStackOp::Push(0));
        match stack.push(0, 0) {
            PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
            PushOutcome::Full => handle.finish(SpecStackResp::Full),
        }
        for child in children {
            child.join();
        }

        // Quiescent audit: aggregate == lane ground truth.
        let lane_sum: usize = (0..stack.lanes()).map(|i| stack.lane(i).len()).sum();
        assert_eq!(stack.aggregate().len(), lane_sum, "aggregate drifted");

        let history = recorder.finish();
        assert!(
            check_relaxed_linearizable(&KStackSpec::new(capacity, bound), &history)
                .is_linearizable(),
            "history exceeded k={bound}:\n{history}"
        );
    });
    report.assert_ok();
    assert_eq!(report.schedules, 150, "{report}");
}
