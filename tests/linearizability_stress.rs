//! Cross-crate stress: record live concurrent histories from the real
//! implementations and run them through the Wing–Gong checker.
//!
//! The recorder's mutex serializes event logging, so these runs are
//! about *correctness coverage*, not performance. Aborted (⊥)
//! operations are cancelled in the recorder — by the abortable-object
//! contract they had no effect, and an implementation violating that
//! contract would poison the remaining history and fail the check.

use cso::lincheck::checker::check_linearizable;
use cso::lincheck::recorder::Recorder;
use cso::lincheck::specs::queue::{QueueSpec, SpecQueueOp, SpecQueueResp};
use cso::lincheck::specs::stack::{SpecStackOp, SpecStackResp, StackSpec};
use cso::queue::{AbortableQueue, CsQueue, DequeueOutcome, EnqueueOutcome};
use cso::stack::{AbortableStack, CsStack, PopOutcome, PushOutcome};

const THREADS: usize = 3;
const OPS: usize = 7;

#[test]
fn abortable_stack_histories_linearize() {
    let spec = StackSpec::new(4);
    for round in 0..150 {
        let stack: AbortableStack<u32> = AbortableStack::new(4);
        let recorder: Recorder<SpecStackOp, SpecStackResp> = Recorder::new();
        std::thread::scope(|s| {
            for proc in 0..THREADS {
                let stack = &stack;
                let recorder = recorder.clone();
                s.spawn(move || {
                    for i in 0..OPS {
                        if (proc * 31 + i * 17 + round) % 3 != 0 {
                            let v = (round * 100 + proc * OPS + i) as u32;
                            recorder.invoke(proc, SpecStackOp::Push(v));
                            match stack.weak_push(v) {
                                Ok(PushOutcome::Pushed) => {
                                    recorder.ret(proc, SpecStackResp::Pushed);
                                }
                                Ok(PushOutcome::Full) => {
                                    recorder.ret(proc, SpecStackResp::Full);
                                }
                                Err(_) => recorder.cancel(proc),
                            }
                        } else {
                            recorder.invoke(proc, SpecStackOp::Pop);
                            match stack.weak_pop() {
                                Ok(PopOutcome::Popped(v)) => {
                                    recorder.ret(proc, SpecStackResp::Popped(v));
                                }
                                Ok(PopOutcome::Empty) => {
                                    recorder.ret(proc, SpecStackResp::Empty);
                                }
                                Err(_) => recorder.cancel(proc),
                            }
                        }
                        if i % 2 == round % 2 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        let history = recorder.finish();
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}:\n{history}"
        );
    }
}

#[test]
fn cs_stack_histories_linearize() {
    let spec = StackSpec::new(4);
    for round in 0..120 {
        let stack: CsStack<u32> = CsStack::new(4, THREADS);
        let recorder: Recorder<SpecStackOp, SpecStackResp> = Recorder::new();
        std::thread::scope(|s| {
            for proc in 0..THREADS {
                let stack = &stack;
                let recorder = recorder.clone();
                s.spawn(move || {
                    for i in 0..OPS {
                        if (proc + i + round) % 2 == 0 {
                            let v = (round * 100 + proc * OPS + i) as u32;
                            recorder.invoke(proc, SpecStackOp::Push(v));
                            let resp = match stack.push(proc, v) {
                                PushOutcome::Pushed => SpecStackResp::Pushed,
                                PushOutcome::Full => SpecStackResp::Full,
                            };
                            recorder.ret(proc, resp);
                        } else {
                            recorder.invoke(proc, SpecStackOp::Pop);
                            let resp = match stack.pop(proc) {
                                PopOutcome::Popped(v) => SpecStackResp::Popped(v),
                                PopOutcome::Empty => SpecStackResp::Empty,
                            };
                            recorder.ret(proc, resp);
                        }
                    }
                });
            }
        });
        let history = recorder.finish();
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}:\n{history}"
        );
    }
}

#[test]
fn abortable_queue_histories_linearize() {
    let spec = QueueSpec::new(4);
    for round in 0..150 {
        let queue: AbortableQueue<u32> = AbortableQueue::new(4);
        let recorder: Recorder<SpecQueueOp, SpecQueueResp> = Recorder::new();
        std::thread::scope(|s| {
            for proc in 0..THREADS {
                let queue = &queue;
                let recorder = recorder.clone();
                s.spawn(move || {
                    for i in 0..OPS {
                        if (proc * 13 + i * 7 + round) % 3 != 0 {
                            let v = (round * 100 + proc * OPS + i) as u32;
                            recorder.invoke(proc, SpecQueueOp::Enqueue(v));
                            match queue.weak_enqueue(v) {
                                Ok(EnqueueOutcome::Enqueued) => {
                                    recorder.ret(proc, SpecQueueResp::Enqueued);
                                }
                                Ok(EnqueueOutcome::Full) => {
                                    recorder.ret(proc, SpecQueueResp::Full);
                                }
                                Err(_) => recorder.cancel(proc),
                            }
                        } else {
                            recorder.invoke(proc, SpecQueueOp::Dequeue);
                            match queue.weak_dequeue() {
                                Ok(DequeueOutcome::Dequeued(v)) => {
                                    recorder.ret(proc, SpecQueueResp::Dequeued(v));
                                }
                                Ok(DequeueOutcome::Empty) => {
                                    recorder.ret(proc, SpecQueueResp::Empty);
                                }
                                Err(_) => recorder.cancel(proc),
                            }
                        }
                        if i % 2 == 0 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        let history = recorder.finish();
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}"
        );
    }
}

#[test]
fn cs_queue_histories_linearize() {
    let spec = QueueSpec::new(4);
    for round in 0..120 {
        let queue: CsQueue<u32> = CsQueue::new(4, THREADS);
        let recorder: Recorder<SpecQueueOp, SpecQueueResp> = Recorder::new();
        std::thread::scope(|s| {
            for proc in 0..THREADS {
                let queue = &queue;
                let recorder = recorder.clone();
                s.spawn(move || {
                    for i in 0..OPS {
                        if (proc + i + round) % 2 == 0 {
                            let v = (round * 100 + proc * OPS + i) as u32;
                            recorder.invoke(proc, SpecQueueOp::Enqueue(v));
                            let resp = match queue.enqueue(proc, v) {
                                EnqueueOutcome::Enqueued => SpecQueueResp::Enqueued,
                                EnqueueOutcome::Full => SpecQueueResp::Full,
                            };
                            recorder.ret(proc, resp);
                        } else {
                            recorder.invoke(proc, SpecQueueOp::Dequeue);
                            let resp = match queue.dequeue(proc) {
                                DequeueOutcome::Dequeued(v) => SpecQueueResp::Dequeued(v),
                                DequeueOutcome::Empty => SpecQueueResp::Empty,
                            };
                            recorder.ret(proc, resp);
                        }
                    }
                });
            }
        });
        let history = recorder.finish();
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}"
        );
    }
}
