//! End-to-end checks of the paper's stated theorems through the
//! public (umbrella) API.

use cso::core::ProgressCondition;
use cso::locks::{LamportFastLock, ProcLock, RawLock, StarvationFree, TasLock, TicketLock};
use cso::memory::counting::CountScope;
use cso::memory::registry::ProcRegistry;
use cso::queue::CsQueue;
use cso::stack::{AbortableStack, CsStack, NonBlockingStack, PopOutcome, PushOutcome};

/// Theorem 1: "any strong_push() or strong_pop() operation invoked in
/// a contention-free context is lock-free and accesses six times the
/// shared memory."
#[test]
fn theorem1_six_accesses_lock_free() {
    let stack: CsStack<u32> = CsStack::new(4096, 16);
    stack.push(0, 0); // warm-up

    for round in 0..1_000u32 {
        let scope = CountScope::start();
        assert_eq!(stack.push(round as usize % 16, round), PushOutcome::Pushed);
        assert_eq!(scope.take().total(), 6, "push, round {round}");

        let scope = CountScope::start();
        assert!(stack.pop((round as usize + 7) % 16).is_popped());
        assert_eq!(scope.take().total(), 6, "pop, round {round}");
    }
    assert_eq!(
        stack.path_stats().locked,
        0,
        "lock-free in contention-free context"
    );
}

/// §3: the weak operations are the five-access building block.
#[test]
fn figure1_five_access_weak_ops() {
    let stack: AbortableStack<i32> = AbortableStack::new(64);
    stack.weak_push(-1).unwrap();
    let scope = CountScope::start();
    stack.weak_push(-2).unwrap();
    stack.weak_pop().unwrap();
    assert_eq!(scope.take().total(), 10, "5 + 5");
}

/// §1.2 / ref [16]: Lamport's fast mutex enters and leaves the
/// critical section in seven accesses when uncontended.
#[test]
fn lamport_fast_mutex_seven_accesses() {
    let registry = ProcRegistry::new(4);
    let token = registry.register().unwrap();
    let lock = LamportFastLock::new(registry.n());
    lock.lock(token.id());
    lock.unlock(token.id());
    let scope = CountScope::start();
    lock.lock(token.id());
    lock.unlock(token.id());
    assert_eq!(scope.take().total(), 7);
}

/// The progress-condition hierarchy of §1.2, as reported by the
/// implementations themselves.
#[test]
fn progress_hierarchy_is_declared_and_ordered() {
    assert_eq!(
        NonBlockingStack::<u32>::PROGRESS,
        ProgressCondition::NonBlocking
    );
    assert_eq!(CsStack::<u32>::PROGRESS, ProgressCondition::StarvationFree);
    assert!(CsStack::<u32>::PROGRESS > NonBlockingStack::<u32>::PROGRESS);
    assert!(ProgressCondition::ObstructionFree < ProgressCondition::NonBlocking);
}

/// Lemma 1, at scale: strong operations never return ⊥ — the API makes
/// that structural (no ⊥ in the return types), so we check totality:
/// every invocation terminates with a definitive answer even at the
/// capacity boundaries.
#[test]
fn strong_ops_total_at_boundaries() {
    let stack: CsStack<u32> = CsStack::new(2, 4);
    assert_eq!(stack.pop(0), PopOutcome::Empty);
    assert_eq!(stack.push(1, 1), PushOutcome::Pushed);
    assert_eq!(stack.push(2, 2), PushOutcome::Pushed);
    assert_eq!(stack.push(3, 3), PushOutcome::Full);
    assert_eq!(stack.pop(0), PopOutcome::Popped(2));

    let queue: CsQueue<u32> = CsQueue::new(2, 4);
    assert!(queue.dequeue(0).into_option().is_none());
    assert!(queue.enqueue(1, 1).is_enqueued());
    assert!(queue.enqueue(2, 2).is_enqueued());
    assert!(!queue.enqueue(3, 3).is_enqueued());
    assert_eq!(queue.dequeue(0).into_option(), Some(1));
}

/// §4.4: the booster turns a deadlock-free lock into a starvation-free
/// one. Under a hostile workload (hoggers cycling as fast as they
/// can), a victim thread must still complete a fixed budget of
/// critical sections.
#[test]
fn section_4_4_booster_prevents_starvation() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let lock = Arc::new(StarvationFree::new(TasLock::new(), 4));
    let stop = Arc::new(AtomicBool::new(false));

    let hoggers: Vec<_> = (0..3)
        .map(|i| {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    lock.lock(i);
                    lock.unlock(i);
                }
            })
        })
        .collect();

    let victim = {
        let lock = Arc::clone(&lock);
        std::thread::spawn(move || {
            for _ in 0..300 {
                lock.lock(3);
                lock.unlock(3);
            }
        })
    };
    victim.join().expect("victim completed — starvation-free");
    stop.store(true, Ordering::Relaxed);
    for h in hoggers {
        h.join().unwrap();
    }
}

/// The booster is generic: it composes with any deadlock-free RawLock.
#[test]
fn booster_composes_with_other_locks() {
    for _ in 0..3 {
        let boosted = StarvationFree::new(TicketLock::new(), 2);
        boosted.lock(0);
        boosted.unlock(0);
        boosted.lock(1);
        boosted.unlock(1);
        let inner: &TicketLock = boosted.inner();
        assert!(inner.try_lock());
        inner.unlock();
    }
}
