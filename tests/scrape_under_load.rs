//! Scrape-under-load smoke: the metrics/profile endpoints must serve
//! consistent responses while worker threads hammer a contention-
//! sensitive stack. This is the integration seam the unit tests can't
//! cover — the HTTP server, the live aggregator, and the workload all
//! running at once.
//!
//! Works in every feature configuration: without `trace` the profile
//! endpoints serve empty-but-valid documents; with it they serve the
//! live aggregate. Either way every response must be 200 with a body
//! that parses.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cso::metrics::{Json, MetricsServer, Registry};
use cso::profile::{profile_routes, Harvester, LiveAggregator};
use cso::stack::CsStack;
use cso::watch::{watch_routes, Invariant, Watchdog};

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    (head.to_owned(), body.to_owned())
}

#[test]
fn scrapes_stay_consistent_while_workers_hammer_the_stack() {
    const WORKERS: usize = 8;
    const SCRAPES: usize = 20;

    let registry = Registry::new();
    let ops_counter = registry.counter("scrape_smoke_ops_total");
    let aggregator = Arc::new(LiveAggregator::new());
    let harvester = Harvester::start_with(Arc::clone(&aggregator), Duration::from_millis(2));
    // The watchdog rides along on the same port. Only loss-tolerant
    // invariants are armed: eight zero-think-time workers may out-emit
    // the harvester (see the conservation check at the bottom), and a
    // lossy event stream makes bypass counting approximate.
    let dog = Watchdog::builder()
        .invariant(Invariant::poison_free(&aggregator))
        .cadence(Duration::from_millis(5))
        .spawn();
    let server = MetricsServer::bind_with_routes(
        registry,
        "127.0.0.1:0",
        profile_routes(Arc::clone(&aggregator)).merge(watch_routes(&dog)),
    )
    .expect("bind scrape server");
    let addr = server.addr();

    let stack = Arc::new(CsStack::<u32>::new(65_000, WORKERS));
    for i in 0..4_096 {
        let _ = stack.push(0, i);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..WORKERS)
        .map(|proc| {
            let stack = Arc::clone(&stack);
            let stop = Arc::clone(&stop);
            let ops = ops_counter.clone();
            std::thread::spawn(move || {
                let mut i = 0u32;
                while !stop.load(Ordering::Acquire) {
                    if i % 2 == 0 {
                        let _ = stack.push(proc, i);
                    } else {
                        let _ = stack.pop(proc);
                    }
                    ops.inc();
                    i = i.wrapping_add(1);
                }
            })
        })
        .collect();

    // Interleave scrapes of every endpoint with the running workload.
    for round in 0..SCRAPES {
        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "round {round}: {head}");
        assert!(
            body.contains("scrape_smoke_ops_total"),
            "round {round}: workload counter missing from exposition"
        );

        let (head, body) = http_get(addr, "/spans.json");
        assert!(head.starts_with("HTTP/1.1 200"), "round {round}: {head}");
        assert!(head.contains("application/json"), "round {round}: {head}");
        let doc = Json::parse(&body)
            .unwrap_or_else(|e| panic!("round {round}: /spans.json unparseable: {e}\n{body}"));
        assert!(
            doc.get("harvest").is_some() && doc.get("spans").is_some(),
            "round {round}: snapshot shape"
        );

        let (head, body) = http_get(addr, "/profile");
        assert!(head.starts_with("HTTP/1.1 200"), "round {round}: {head}");
        assert!(body.contains("spans:"), "round {round}: {body}");

        let (head, _) = http_get(addr, "/flamegraph");
        assert!(head.starts_with("HTTP/1.1 200"), "round {round}: {head}");

        let (head, body) = http_get(addr, "/causal.json");
        assert!(head.starts_with("HTTP/1.1 200"), "round {round}: {head}");
        assert!(head.contains("application/json"), "round {round}: {head}");
        let doc = Json::parse(&body)
            .unwrap_or_else(|e| panic!("round {round}: /causal.json unparseable: {e}\n{body}"));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("cso-causal v1"),
            "round {round}: causal schema"
        );

        let (head, body) = http_get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "round {round}: {head}");
        assert!(head.contains("application/json"), "round {round}: {head}");
        let doc = Json::parse(&body)
            .unwrap_or_else(|e| panic!("round {round}: /health unparseable: {e}\n{body}"));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("cso-health v1"),
            "round {round}: health schema"
        );
        let status = doc.get("status").and_then(Json::as_str).unwrap_or("?");
        assert!(
            ["OK", "DEGRADED", "POISONED"].contains(&status),
            "round {round}: bogus health status {status:?}"
        );

        let (head, body) = http_get(addr, "/alerts.json");
        assert!(head.starts_with("HTTP/1.1 200"), "round {round}: {head}");
        let doc = Json::parse(&body)
            .unwrap_or_else(|e| panic!("round {round}: /alerts.json unparseable: {e}\n{body}"));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("cso-alerts v1"),
            "round {round}: alerts schema"
        );
        assert!(
            doc.get("active").is_some_and(|a| a.as_arr().is_some()),
            "round {round}: alerts shape"
        );

        // Unknown routes keep 404-ing under load.
        let (head, _) = http_get(addr, "/definitely-not-a-route");
        assert!(head.starts_with("HTTP/1.1 404"), "round {round}: {head}");
    }

    stop.store(true, Ordering::Release);
    for w in workers {
        w.join().expect("worker");
    }
    let agg = harvester.stop();

    // The final snapshot is coherent. Eight zero-think-time workers on
    // however few cores the host has can out-emit any consumer, so
    // loss is legal here (losslessness under a *paced* workload is
    // E15's claim); what must hold is conservation — every emitted
    // event was either ingested or counted lost, never silently gone.
    let snap = agg.snapshot();
    assert_eq!(
        agg.ingested() + snap.lost,
        cso::trace::probe::emitted(),
        "conservation: ingested + lost == emitted"
    );
    if cfg!(feature = "trace") {
        assert!(snap.events_ingested > 0, "trace build: events flowed");
        assert!(snap.spans > 0, "trace build: spans reconstructed");
    }
    // No lock was poisoned, so the one armed invariant never fired:
    // the scrape storm produced zero alert transitions.
    assert_eq!(dog.status(), "OK", "{:?}", dog.alerts_json());
    assert_eq!(dog.transitions(), 0, "{:?}", dog.alerts_json());
    dog.stop();
    server.shutdown();
}
