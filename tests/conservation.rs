//! Large-scale conservation under real concurrency: across every
//! implementation, nothing is lost, duplicated or invented.
//!
//! Each thread pushes a disjoint tagged value range and pops whatever
//! it finds; at the end, the union of popped values and the residue
//! must be exactly the pushed multiset (and a set — no duplicates).

use std::collections::HashSet;
use std::sync::Arc;

use cso::queue::{CsQueue, DequeueOutcome, EnqueueOutcome, MsQueue, NonBlockingQueue};
use cso::stack::{
    CsStack, EliminationStack, LockStack, NonBlockingStack, PushOutcome, TreiberStack,
};

const THREADS: u32 = 4;
const PER_THREAD: u32 = 3_000;
const TOTAL: usize = (THREADS * PER_THREAD) as usize;

fn check_conservation(all: Vec<u32>, label: &str) {
    assert_eq!(all.len(), TOTAL, "{label}: count");
    let distinct: HashSet<u32> = all.iter().copied().collect();
    assert_eq!(distinct.len(), TOTAL, "{label}: duplicates");
    assert!(
        all.iter().all(|v| (*v as usize) < TOTAL),
        "{label}: invented value"
    );
}

fn drive<P, O>(push: P, pop: O, label: &str)
where
    P: Fn(usize, u32) -> bool + Send + Sync,
    O: Fn(usize) -> Option<u32> + Send + Sync,
{
    let mut all: Vec<u32> = Vec::with_capacity(TOTAL);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let push = &push;
                let pop = &pop;
                s.spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..PER_THREAD {
                        let v = t * PER_THREAD + i;
                        while !push(t as usize, v) {
                            std::thread::yield_now();
                        }
                        if i % 2 == 1 {
                            if let Some(v) = pop(t as usize) {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            all.extend(h.join().unwrap());
        }
    });
    while let Some(v) = pop(0) {
        all.push(v);
    }
    check_conservation(all, label);
}

#[test]
fn cs_stack_conserves() {
    let stack = Arc::new(CsStack::<u32>::new(TOTAL, THREADS as usize));
    let s1 = Arc::clone(&stack);
    let s2 = Arc::clone(&stack);
    drive(
        move |p, v| s1.push(p, v) == PushOutcome::Pushed,
        move |p| s2.pop(p).into_option(),
        "cs-stack",
    );
}

#[test]
fn nb_stack_conserves() {
    let stack = Arc::new(NonBlockingStack::<u32>::new(TOTAL));
    let s1 = Arc::clone(&stack);
    let s2 = Arc::clone(&stack);
    drive(
        move |_, v| s1.push(v) == PushOutcome::Pushed,
        move |_| s2.pop().into_option(),
        "nb-stack",
    );
}

#[test]
fn treiber_conserves() {
    let stack = Arc::new(TreiberStack::<u32>::new());
    let s1 = Arc::clone(&stack);
    let s2 = Arc::clone(&stack);
    drive(
        move |_, v| {
            s1.push(v);
            true
        },
        move |_| s2.pop(),
        "treiber",
    );
}

#[test]
fn elimination_conserves() {
    let stack = Arc::new(EliminationStack::<u32>::new(4));
    let s1 = Arc::clone(&stack);
    let s2 = Arc::clone(&stack);
    drive(
        move |_, v| {
            s1.push(v);
            true
        },
        move |_| s2.pop(),
        "elimination",
    );
}

#[test]
fn lock_stack_conserves() {
    let stack = Arc::new(LockStack::<u32>::new(TOTAL));
    let s1 = Arc::clone(&stack);
    let s2 = Arc::clone(&stack);
    drive(
        move |_, v| s1.push(v) == PushOutcome::Pushed,
        move |_| s2.pop().into_option(),
        "lock-stack",
    );
}

#[test]
fn cs_queue_conserves() {
    let queue = Arc::new(CsQueue::<u32>::new(16_384, THREADS as usize));
    let q1 = Arc::clone(&queue);
    let q2 = Arc::clone(&queue);
    drive(
        move |p, v| q1.enqueue(p, v) == EnqueueOutcome::Enqueued,
        move |p| q2.dequeue(p).into_option(),
        "cs-queue",
    );
}

#[test]
fn nb_queue_conserves() {
    let queue = Arc::new(NonBlockingQueue::<u32>::new(16_384));
    let q1 = Arc::clone(&queue);
    let q2 = Arc::clone(&queue);
    drive(
        move |_, v| q1.enqueue(v) == EnqueueOutcome::Enqueued,
        move |_| q2.dequeue().into_option(),
        "nb-queue",
    );
}

#[test]
fn ms_queue_conserves() {
    let queue = Arc::new(MsQueue::<u32>::new());
    let q1 = Arc::clone(&queue);
    let q2 = Arc::clone(&queue);
    drive(
        move |_, v| {
            q1.enqueue(v);
            true
        },
        move |_| q2.dequeue(),
        "ms-queue",
    );
}

/// FIFO sanity at scale: a single producer and a single consumer on
/// the cs-queue preserve order exactly, end to end.
#[test]
fn cs_queue_is_fifo_end_to_end() {
    let queue = Arc::new(CsQueue::<u32>::new(1024, 2));
    let producer = {
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            for v in 0..50_000u32 {
                while queue.enqueue(0, v) != EnqueueOutcome::Enqueued {
                    std::thread::yield_now();
                }
            }
        })
    };
    let consumer = {
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            let mut expected = 0u32;
            while expected < 50_000 {
                match queue.dequeue(1) {
                    DequeueOutcome::Dequeued(v) => {
                        assert_eq!(v, expected);
                        expected += 1;
                    }
                    DequeueOutcome::Empty => std::thread::yield_now(),
                }
            }
        })
    };
    producer.join().unwrap();
    consumer.join().unwrap();
}
