//! Exhaustive schedule exploration of the *production* structures.
//!
//! These tests require the `model` feature:
//!
//! ```text
//! cargo test --features model --test model_explore
//! ```
//!
//! Each body runs once per explored schedule, from the top, with fresh
//! state; every counted register access inside the production
//! `CsStack`/`CsQueue`/`CsDeque` code is a scheduling decision, so the
//! depth-first explorer enumerates *every* interleaving of the real
//! fast path, escalation ladder, and combining slow path (up to the
//! preemption bound). Oracles are the same ones the stress tests use —
//! the Wing–Gong linearizability checker over owner-pinned recorded
//! histories, value conservation, and the `StepAuditor` access
//! budgets — but here a failure is deterministic: the panic message
//! carries a replay trace (see CONTRIBUTING.md, "Writing a model
//! test").
//!
//! The `chaos` feature rides along (hence `--features model,chaos`):
//! as in `step_budget.rs`, an armed fail point is the only
//! deterministic way to veto the fast path of a real stack, and the
//! ladder test below uses one to force operations down every rung.
//! The fail-point registry is process-global, so every test in this
//! file serializes behind one mutex.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use cso::core::CsConfig;
use cso::deque::{CsDeque, DequeOp, DequePopOutcome, DequePushOutcome, End, SeqDeque};
use cso::lincheck::checker::check_linearizable;
use cso::lincheck::recorder::Recorder;
use cso::lincheck::spec::SeqSpec;
use cso::lincheck::specs::queue::{QueueSpec, SpecQueueOp, SpecQueueResp};
use cso::lincheck::specs::stack::{SpecStackOp, SpecStackResp, StackSpec};
use cso::locks::TasLock;
use cso::memory::chaos::{self, Fault, Plan};
use cso::memory::runtime;
use cso::queue::{CsQueue, DequeueOutcome, EnqueueOutcome};
use cso::sched::{spawn, Explorer};
use cso::stack::{CsStack, PopOutcome, PushOutcome};
use cso::trace::audit::StepAuditor;

/// Theorem 1: a contention-free strong operation costs at most six
/// shared accesses.
const STRONG_BUDGET: u64 = 6;

/// Sanity ceiling for *contended* operations under 2-thread bounded-
/// preemption schedules: contended ops legitimately exceed the solo
/// budget (they retry and fall through to the lock), but no schedule
/// in the explored space should let one ramble past this.
const CONTENDED_CEILING: u64 = 160;

/// The chaos fail-point registry is process-global; any armed site
/// would leak into a concurrently running test.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn model_runtime_is_active() {
    assert_eq!(runtime::active_name(), "model");
}

/// Theorem 1 driven through the model runtime: with no second thread
/// every scheduling decision is forced, the single schedule is the
/// solo execution, and the strict auditor enforces the six-access
/// budget on the real `CsStack` — proving the model runtime did not
/// perturb the counted-access accounting.
#[test]
fn solo_stack_ops_stay_in_budget_under_model() {
    let _serial = serial();
    let report = Explorer::exhaustive().explore(|| {
        let stack: CsStack<u32> = CsStack::new(4, 2);
        let auditor = StepAuditor::strict(STRONG_BUDGET);
        assert!(matches!(
            auditor.audit(|| stack.push(0, 7)),
            PushOutcome::Pushed
        ));
        assert!(matches!(
            auditor.audit(|| stack.pop(0)),
            PopOutcome::Popped(7)
        ));
        assert!(auditor.report().clean());
    });
    report.assert_ok();
    assert!(report.exhausted);
    assert_eq!(report.schedules, 1, "a solo body has exactly one schedule");
}

/// Lincheck stack scenario (push/pop), exhaustively: two threads each
/// push a distinct value and pop once against the paper's Figure 3
/// configuration. Every interleaving must linearize and conserve
/// values.
#[test]
fn exhaustive_stack_push_pop_linearizes() {
    let _serial = serial();
    let report = Explorer::exhaustive().explore(|| {
        let stack: Arc<CsStack<u32>> =
            Arc::new(CsStack::with_config(2, TasLock::new(), 2, CsConfig::PAPER));
        let recorder: Recorder<SpecStackOp, SpecStackResp> = Recorder::new();
        let child = {
            let stack = Arc::clone(&stack);
            let recorder = recorder.clone();
            spawn(move || {
                let mut got = Vec::new();
                let handle = recorder.begin(1, SpecStackOp::Push(2));
                match stack.push(1, 2) {
                    PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
                    PushOutcome::Full => handle.finish(SpecStackResp::Full),
                }
                let handle = recorder.begin(1, SpecStackOp::Pop);
                match stack.pop(1) {
                    PopOutcome::Popped(v) => {
                        got.push(v);
                        handle.finish(SpecStackResp::Popped(v));
                    }
                    PopOutcome::Empty => handle.finish(SpecStackResp::Empty),
                }
                got
            })
        };
        let mut got = Vec::new();
        let handle = recorder.begin(0, SpecStackOp::Push(1));
        match stack.push(0, 1) {
            PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
            PushOutcome::Full => handle.finish(SpecStackResp::Full),
        }
        let handle = recorder.begin(0, SpecStackOp::Pop);
        match stack.pop(0) {
            PopOutcome::Popped(v) => {
                got.push(v);
                handle.finish(SpecStackResp::Popped(v));
            }
            PopOutcome::Empty => handle.finish(SpecStackResp::Empty),
        }
        got.extend(child.join());

        // Conservation: drain the residue; popped ∪ residue must be
        // exactly {1, 2}.
        while let PopOutcome::Popped(v) = stack.pop(0) {
            got.push(v);
        }
        let distinct: BTreeSet<u32> = got.iter().copied().collect();
        assert_eq!(got.len(), 2, "conservation: {got:?}");
        assert_eq!(distinct, BTreeSet::from([1, 2]), "conservation: {got:?}");

        let history = recorder.finish();
        assert!(
            check_linearizable(&StackSpec::new(2), &history).is_linearizable(),
            "non-linearizable history:\n{history}"
        );
    });
    report.assert_ok();
    assert!(report.exhausted, "{report}");
    assert!(report.schedules > 1, "two threads must branch: {report}");
}

/// The tentpole acceptance scenario: the production `CsStack` with the
/// **full escalation ladder and the combining slow path** (fast path →
/// CAS contention management → elimination → flat combining), driven
/// through every 2-thread interleaving. Linearizability, conservation,
/// and the step auditor must stay green in all of them, and the
/// exploration must visit the slow path at least once overall.
///
/// Rung 2 absorbs `CM_RETRIES` = 3 paced retries, and with only two
/// ops per thread the other thread can cause at most two CAS failures
/// — pure interleaving can never push an op past rung 2 here. So the
/// body arms a deterministic fail-point plan (`one_in: 1` draws are
/// not schedule branches) vetoing the first eight weak pushes: in
/// every schedule at least one push exhausts its retries, parks in
/// elimination, and falls through to the combining lock, while pops
/// and later pushes still travel the fast path.
#[test]
fn exhaustive_ladder_combining_stack() {
    let _serial = serial();
    let slow_completions = Arc::new(AtomicU64::new(0));
    let worst_cost = Arc::new(AtomicU64::new(0));
    let report = {
        let slow_completions = Arc::clone(&slow_completions);
        let worst_cost = Arc::clone(&worst_cost);
        // The 512-poll elimination parks cost a model step per poll;
        // give each schedule room for a few of them.
        Explorer::exhaustive()
            .with_max_steps(20_000)
            .explore(move || {
                chaos::reset();
                chaos::arm_plan(
                    "stack::push",
                    Plan {
                        fault: Fault::SpuriousAbort,
                        after: 0,
                        one_in: 1,
                        max_fires: 8,
                    },
                );
                let config = CsConfig::LADDER.with_combining().with_adaptive_gate();
                let stack: Arc<CsStack<u32>> =
                    Arc::new(CsStack::with_config(2, TasLock::new(), 2, config));
                let recorder: Recorder<SpecStackOp, SpecStackResp> = Recorder::new();
                let auditor = Arc::new(StepAuditor::recording(STRONG_BUDGET));
                let child = {
                    let stack = Arc::clone(&stack);
                    let recorder = recorder.clone();
                    let auditor = Arc::clone(&auditor);
                    spawn(move || {
                        let mut got = Vec::new();
                        let handle = recorder.begin(1, SpecStackOp::Push(2));
                        match auditor.audit(|| stack.push(1, 2)) {
                            PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
                            PushOutcome::Full => handle.finish(SpecStackResp::Full),
                        }
                        let handle = recorder.begin(1, SpecStackOp::Pop);
                        match auditor.audit(|| stack.pop(1)) {
                            PopOutcome::Popped(v) => {
                                got.push(v);
                                handle.finish(SpecStackResp::Popped(v));
                            }
                            PopOutcome::Empty => handle.finish(SpecStackResp::Empty),
                        }
                        got
                    })
                };
                let mut got = Vec::new();
                let handle = recorder.begin(0, SpecStackOp::Push(1));
                match auditor.audit(|| stack.push(0, 1)) {
                    PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
                    PushOutcome::Full => handle.finish(SpecStackResp::Full),
                }
                let handle = recorder.begin(0, SpecStackOp::Pop);
                match auditor.audit(|| stack.pop(0)) {
                    PopOutcome::Popped(v) => {
                        got.push(v);
                        handle.finish(SpecStackResp::Popped(v));
                    }
                    PopOutcome::Empty => handle.finish(SpecStackResp::Empty),
                }
                got.extend(child.join());
                while let PopOutcome::Popped(v) = stack.pop(0) {
                    got.push(v);
                }
                let distinct: BTreeSet<u32> = got.iter().copied().collect();
                assert_eq!(got.len(), 2, "conservation: {got:?}");
                assert_eq!(distinct, BTreeSet::from([1, 2]), "conservation: {got:?}");

                let audit = auditor.report();
                assert_eq!(audit.checked, 4, "every op audited");
                assert!(
                    audit.worst <= CONTENDED_CEILING,
                    "an operation spent {} accesses (ceiling {CONTENDED_CEILING})",
                    audit.worst
                );
                worst_cost.fetch_max(audit.worst, Ordering::Relaxed);

                let stats = stack.path_stats();
                slow_completions.fetch_add(stats.eliminated + stats.locked, Ordering::Relaxed);

                let history = recorder.finish();
                assert!(
                    check_linearizable(&StackSpec::new(2), &history).is_linearizable(),
                    "non-linearizable history:\n{history}"
                );
                chaos::reset();
            })
    };
    report.assert_ok();
    assert!(report.exhausted, "{report}");
    assert!(report.schedules > 1, "{report}");
    // The exploration must have pushed operations off the fast path
    // somewhere — otherwise it never exercised the ladder/combining
    // machinery it claims to verify.
    assert!(
        slow_completions.load(Ordering::Relaxed) > 0,
        "no schedule ever escalated off the fast path ({report})"
    );
    // Contended schedules must exist (worst observed above the solo
    // budget proves real interference was explored).
    assert!(
        worst_cost.load(Ordering::Relaxed) > STRONG_BUDGET,
        "no schedule ever contended"
    );
    chaos::reset();
}

/// Lincheck queue scenario (enqueue/dequeue), exhaustively.
#[test]
fn exhaustive_queue_enqueue_dequeue_linearizes() {
    let _serial = serial();
    let report = Explorer::exhaustive().explore(|| {
        let queue: Arc<CsQueue<u32>> =
            Arc::new(CsQueue::with_config(2, TasLock::new(), 2, CsConfig::PAPER));
        let recorder: Recorder<SpecQueueOp, SpecQueueResp> = Recorder::new();
        let child = {
            let queue = Arc::clone(&queue);
            let recorder = recorder.clone();
            spawn(move || {
                let mut got = Vec::new();
                let handle = recorder.begin(1, SpecQueueOp::Enqueue(2));
                match queue.enqueue(1, 2) {
                    EnqueueOutcome::Enqueued => handle.finish(SpecQueueResp::Enqueued),
                    EnqueueOutcome::Full => handle.finish(SpecQueueResp::Full),
                }
                let handle = recorder.begin(1, SpecQueueOp::Dequeue);
                match queue.dequeue(1) {
                    DequeueOutcome::Dequeued(v) => {
                        got.push(v);
                        handle.finish(SpecQueueResp::Dequeued(v));
                    }
                    DequeueOutcome::Empty => handle.finish(SpecQueueResp::Empty),
                }
                got
            })
        };
        let mut got = Vec::new();
        let handle = recorder.begin(0, SpecQueueOp::Enqueue(1));
        match queue.enqueue(0, 1) {
            EnqueueOutcome::Enqueued => handle.finish(SpecQueueResp::Enqueued),
            EnqueueOutcome::Full => handle.finish(SpecQueueResp::Full),
        }
        let handle = recorder.begin(0, SpecQueueOp::Dequeue);
        match queue.dequeue(0) {
            DequeueOutcome::Dequeued(v) => {
                got.push(v);
                handle.finish(SpecQueueResp::Dequeued(v));
            }
            DequeueOutcome::Empty => handle.finish(SpecQueueResp::Empty),
        }
        got.extend(child.join());
        while let DequeueOutcome::Dequeued(v) = queue.dequeue(0) {
            got.push(v);
        }
        let distinct: BTreeSet<u32> = got.iter().copied().collect();
        assert_eq!(got.len(), 2, "conservation: {got:?}");
        assert_eq!(distinct, BTreeSet::from([1, 2]), "conservation: {got:?}");

        let history = recorder.finish();
        assert!(
            check_linearizable(&QueueSpec::new(2), &history).is_linearizable(),
            "non-linearizable history:\n{history}"
        );
    });
    report.assert_ok();
    assert!(report.exhausted, "{report}");
    assert!(report.schedules > 1, "{report}");
}

/// Responses for the deque scenario, checker-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DequeResp {
    Pushed,
    Full,
    Popped(u32),
    Empty,
}

/// The linear-HLM deque sequential specification, as in
/// `tests/deque_lincheck.rs`, over the reference `SeqDeque`.
struct DequeSpec {
    capacity: usize,
}

impl SeqSpec for DequeSpec {
    type State = SeqDeque<u32>;
    type Op = DequeOp<u32>;
    type Resp = DequeResp;

    fn initial(&self) -> SeqDeque<u32> {
        SeqDeque::new(self.capacity)
    }

    fn apply(&self, state: &SeqDeque<u32>, op: &DequeOp<u32>) -> (SeqDeque<u32>, DequeResp) {
        let mut next = state.clone();
        let resp = match op {
            DequeOp::Push(end, v) => match next.push(*end, *v) {
                DequePushOutcome::Pushed => DequeResp::Pushed,
                DequePushOutcome::Full => DequeResp::Full,
            },
            DequeOp::Pop(end) => match next.pop(*end) {
                DequePopOutcome::Popped(v) => DequeResp::Popped(v),
                DequePopOutcome::Empty => DequeResp::Empty,
            },
        };
        (next, resp)
    }
}

/// Lincheck deque scenario (mixed ends), exhaustively: one thread
/// pushes left and pops right, the other pushes right and pops left —
/// the two-sided interleavings the HLM deque's per-side words make
/// interesting.
#[test]
fn exhaustive_deque_mixed_ends_linearizes() {
    let _serial = serial();
    let report = Explorer::exhaustive().explore(|| {
        let deque: Arc<CsDeque<u32>> =
            Arc::new(CsDeque::with_config(4, TasLock::new(), 2, CsConfig::PAPER));
        let recorder: Recorder<DequeOp<u32>, DequeResp> = Recorder::new();
        let child = {
            let deque = Arc::clone(&deque);
            let recorder = recorder.clone();
            spawn(move || {
                let mut got = Vec::new();
                recorder.invoke(1, DequeOp::Push(End::Right, 2));
                let resp = match deque.push(1, End::Right, 2) {
                    DequePushOutcome::Pushed => DequeResp::Pushed,
                    DequePushOutcome::Full => DequeResp::Full,
                };
                recorder.ret(1, resp);
                recorder.invoke(1, DequeOp::Pop(End::Left));
                let resp = match deque.pop(1, End::Left) {
                    DequePopOutcome::Popped(v) => {
                        got.push(v);
                        DequeResp::Popped(v)
                    }
                    DequePopOutcome::Empty => DequeResp::Empty,
                };
                recorder.ret(1, resp);
                got
            })
        };
        let mut got = Vec::new();
        recorder.invoke(0, DequeOp::Push(End::Left, 1));
        let resp = match deque.push(0, End::Left, 1) {
            DequePushOutcome::Pushed => DequeResp::Pushed,
            DequePushOutcome::Full => DequeResp::Full,
        };
        recorder.ret(0, resp);
        recorder.invoke(0, DequeOp::Pop(End::Right));
        let resp = match deque.pop(0, End::Right) {
            DequePopOutcome::Popped(v) => {
                got.push(v);
                DequeResp::Popped(v)
            }
            DequePopOutcome::Empty => DequeResp::Empty,
        };
        recorder.ret(0, resp);
        got.extend(child.join());

        // Conservation: drain both ends; everything pushed comes back
        // exactly once.
        while let DequePopOutcome::Popped(v) = deque.pop(0, End::Left) {
            got.push(v);
        }
        let distinct: BTreeSet<u32> = got.iter().copied().collect();
        assert_eq!(got.len(), 2, "conservation: {got:?}");
        assert_eq!(distinct, BTreeSet::from([1, 2]), "conservation: {got:?}");

        let history = recorder.finish();
        assert!(
            check_linearizable(&DequeSpec { capacity: 4 }, &history).is_linearizable(),
            "deque history not linearizable"
        );
    });
    report.assert_ok();
    assert!(report.exhausted, "{report}");
    assert!(report.schedules > 1, "{report}");
}

/// A seeded-random sweep beyond the exhaustive envelope: three threads
/// (too wide for DFS in CI time) against the combining configuration.
/// Any failure prints the schedule seed and replay trace.
#[test]
fn random_sweep_three_thread_stack_holds() {
    let _serial = serial();
    let report = Explorer::random(0xC50_5EED, 200).explore(|| {
        let stack: Arc<CsStack<u32>> = Arc::new(CsStack::with_config(
            4,
            TasLock::new(),
            3,
            CsConfig::COMBINING,
        ));
        let recorder: Recorder<SpecStackOp, SpecStackResp> = Recorder::new();
        let children: Vec<_> = (1..3usize)
            .map(|proc| {
                let stack = Arc::clone(&stack);
                let recorder = recorder.clone();
                spawn(move || {
                    let v = proc as u32;
                    let handle = recorder.begin(proc, SpecStackOp::Push(v));
                    match stack.push(proc, v) {
                        PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
                        PushOutcome::Full => handle.finish(SpecStackResp::Full),
                    }
                    let handle = recorder.begin(proc, SpecStackOp::Pop);
                    match stack.pop(proc) {
                        PopOutcome::Popped(v) => handle.finish(SpecStackResp::Popped(v)),
                        PopOutcome::Empty => handle.finish(SpecStackResp::Empty),
                    }
                })
            })
            .collect();
        let handle = recorder.begin(0, SpecStackOp::Push(0));
        match stack.push(0, 0) {
            PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
            PushOutcome::Full => handle.finish(SpecStackResp::Full),
        }
        for child in children {
            child.join();
        }
        let history = recorder.finish();
        assert!(
            check_linearizable(&StackSpec::new(4), &history).is_linearizable(),
            "non-linearizable history:\n{history}"
        );
    });
    report.assert_ok();
    assert_eq!(report.schedules, 200, "{report}");
}

/// A printed trace replays deterministically: force a trivial body
/// through an explicit trace and confirm the explorer accepts it.
/// (The failing-trace direction is covered by the mutation self-test.)
#[test]
fn replay_mode_runs_a_recorded_trace() {
    let _serial = serial();
    let body = || {
        let stack: Arc<CsStack<u32>> = Arc::new(CsStack::new(2, 2));
        let child = {
            let stack = Arc::clone(&stack);
            spawn(move || {
                let _ = stack.push(1, 2);
            })
        };
        let _ = stack.push(0, 1);
        child.join();
        let mut popped = Vec::new();
        while let PopOutcome::Popped(v) = stack.pop(0) {
            popped.push(v);
        }
        assert_eq!(popped.len(), 2);
    };
    // Empty trace = "always pick the first candidate": a valid
    // deterministic schedule for any body.
    let report = Explorer::replay("").explore(body);
    report.assert_ok();
    assert_eq!(report.schedules, 1);
}
