//! Linearizability of the flat-combining slow path.
//!
//! With combining forced on (fast path compiled out), operations are
//! frequently applied by a *different* thread than the one that
//! invoked them: the combiner serves the publication records of the
//! waiters. These stress tests record live histories with the
//! owner-pinned [`Recorder::begin`] handles — every operation is
//! attributed to its **invoking** process, which is the process whose
//! invoke/return window must contain the linearization point — and
//! run them through the Wing–Gong checker.

use cso::core::CsConfig;
use cso::lincheck::checker::check_linearizable;
use cso::lincheck::recorder::Recorder;
use cso::lincheck::specs::queue::{QueueSpec, SpecQueueOp, SpecQueueResp};
use cso::lincheck::specs::stack::{SpecStackOp, SpecStackResp, StackSpec};
use cso::locks::TasLock;
use cso::queue::{CsQueue, DequeueOutcome, EnqueueOutcome};
use cso::stack::{CsStack, PopOutcome, PushOutcome};

const THREADS: usize = 3;
const OPS: usize = 7;

fn combining_config() -> CsConfig {
    // Fast path off: every operation goes through the combining slow
    // path, maximizing combiner-applied (cross-thread) completions.
    CsConfig::PAPER.without_fast_path().with_combining()
}

#[test]
fn combining_stack_histories_linearize() {
    let spec = StackSpec::new(4);
    for round in 0..120 {
        let stack: CsStack<u32> =
            CsStack::with_config(4, TasLock::new(), THREADS, combining_config());
        let recorder: Recorder<SpecStackOp, SpecStackResp> = Recorder::new();
        std::thread::scope(|s| {
            for proc in 0..THREADS {
                let stack = &stack;
                let recorder = recorder.clone();
                s.spawn(move || {
                    for i in 0..OPS {
                        if (proc * 31 + i * 17 + round) % 3 != 0 {
                            let v = (round * 100 + proc * OPS + i) as u32;
                            let handle = recorder.begin(proc, SpecStackOp::Push(v));
                            // Strong ops never return ⊥; the handle
                            // pins attribution to `proc` even when a
                            // combiner applied the op.
                            match stack.push(proc, v) {
                                PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
                                PushOutcome::Full => handle.finish(SpecStackResp::Full),
                            }
                        } else {
                            let handle = recorder.begin(proc, SpecStackOp::Pop);
                            match stack.pop(proc) {
                                PopOutcome::Popped(v) => handle.finish(SpecStackResp::Popped(v)),
                                PopOutcome::Empty => handle.finish(SpecStackResp::Empty),
                            }
                        }
                        if i % 2 == round % 2 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        // Sanity: the run exercised the combining machinery at all.
        assert_eq!(stack.path_stats().fast, 0, "fast path must be off");
        let history = recorder.finish();
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}:\n{history}"
        );
    }
}

#[test]
fn combining_queue_histories_linearize() {
    let spec = QueueSpec::new(4);
    for round in 0..120 {
        let queue: CsQueue<u32> =
            CsQueue::with_config(4, TasLock::new(), THREADS, combining_config());
        let recorder: Recorder<SpecQueueOp, SpecQueueResp> = Recorder::new();
        std::thread::scope(|s| {
            for proc in 0..THREADS {
                let queue = &queue;
                let recorder = recorder.clone();
                s.spawn(move || {
                    for i in 0..OPS {
                        if (proc * 13 + i * 7 + round) % 3 != 0 {
                            let v = (round * 100 + proc * OPS + i) as u32;
                            let handle = recorder.begin(proc, SpecQueueOp::Enqueue(v));
                            match queue.enqueue(proc, v) {
                                EnqueueOutcome::Enqueued => {
                                    handle.finish(SpecQueueResp::Enqueued);
                                }
                                EnqueueOutcome::Full => handle.finish(SpecQueueResp::Full),
                            }
                        } else {
                            let handle = recorder.begin(proc, SpecQueueOp::Dequeue);
                            match queue.dequeue(proc) {
                                DequeueOutcome::Dequeued(v) => {
                                    handle.finish(SpecQueueResp::Dequeued(v));
                                }
                                DequeueOutcome::Empty => handle.finish(SpecQueueResp::Empty),
                            }
                        }
                        if i % 2 == round % 2 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(queue.path_stats().fast, 0, "fast path must be off");
        let history = recorder.finish();
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}:\n{history}"
        );
    }
}

/// Combining with the fast path *on* (the `COMBINING` config): mixed
/// fast-path and combiner-applied completions still linearize.
#[test]
fn combining_with_fast_path_histories_linearize() {
    let spec = StackSpec::new(4);
    for round in 0..60 {
        let stack: CsStack<u32> =
            CsStack::with_config(4, TasLock::new(), THREADS, CsConfig::COMBINING);
        let recorder: Recorder<SpecStackOp, SpecStackResp> = Recorder::new();
        std::thread::scope(|s| {
            for proc in 0..THREADS {
                let stack = &stack;
                let recorder = recorder.clone();
                s.spawn(move || {
                    for i in 0..OPS {
                        if (proc + i + round) % 2 == 0 {
                            let v = (round * 100 + proc * OPS + i) as u32;
                            let handle = recorder.begin(proc, SpecStackOp::Push(v));
                            match stack.push(proc, v) {
                                PushOutcome::Pushed => handle.finish(SpecStackResp::Pushed),
                                PushOutcome::Full => handle.finish(SpecStackResp::Full),
                            }
                        } else {
                            let handle = recorder.begin(proc, SpecStackOp::Pop);
                            match stack.pop(proc) {
                                PopOutcome::Popped(v) => handle.finish(SpecStackResp::Popped(v)),
                                PopOutcome::Empty => handle.finish(SpecStackResp::Empty),
                            }
                        }
                    }
                });
            }
        });
        let history = recorder.finish();
        assert!(
            check_linearizable(&spec, &history).is_linearizable(),
            "round {round}:\n{history}"
        );
    }
}
