//! Recording real concurrent runs and checking them for
//! linearizability.
//!
//! Demonstrates the verification workflow: wrap every operation on the
//! abortable stack with the `lincheck` recorder, run a few threads,
//! and feed the resulting history to the Wing–Gong checker. Operations
//! that returned ⊥ are *cancelled* in the recorder — the
//! abortable-object contract says they had no effect, and the check
//! would catch an implementation that lied about that (a secretly
//! effective "aborted" push would make the remaining history
//! non-linearizable). Also shows the checker rejecting a forged
//! history.
//!
//! Run with: `cargo run --example verify_linearizability`

use cso::lincheck::checker::check_linearizable;
use cso::lincheck::history::History;
use cso::lincheck::recorder::Recorder;
use cso::lincheck::specs::stack::{SpecStackOp, SpecStackResp, StackSpec};
use cso::stack::{AbortableStack, PopOutcome, PushOutcome};

const CAPACITY: usize = 8;
const THREADS: usize = 3;
const OPS_PER_THREAD: usize = 6;
const ROUNDS: usize = 300;

fn record_round(round: usize) -> (History<SpecStackOp, SpecStackResp>, usize) {
    let stack: AbortableStack<u32> = AbortableStack::new(CAPACITY);
    let recorder: Recorder<SpecStackOp, SpecStackResp> = Recorder::new();

    std::thread::scope(|s| {
        for proc in 0..THREADS {
            let stack = &stack;
            let recorder = recorder.clone();
            s.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    if (proc + i + round) % 2 == 0 {
                        let v = (proc * OPS_PER_THREAD + i) as u32;
                        recorder.invoke(proc, SpecStackOp::Push(v));
                        match stack.weak_push(v) {
                            Ok(PushOutcome::Pushed) => recorder.ret(proc, SpecStackResp::Pushed),
                            Ok(PushOutcome::Full) => recorder.ret(proc, SpecStackResp::Full),
                            Err(_) => recorder.cancel(proc), // ⊥: no effect, erase
                        }
                    } else {
                        recorder.invoke(proc, SpecStackOp::Pop);
                        match stack.weak_pop() {
                            Ok(PopOutcome::Popped(v)) => {
                                recorder.ret(proc, SpecStackResp::Popped(v));
                            }
                            Ok(PopOutcome::Empty) => recorder.ret(proc, SpecStackResp::Empty),
                            Err(_) => recorder.cancel(proc), // ⊥: no effect, erase
                        }
                    }
                    if i % 2 == 0 {
                        std::thread::yield_now(); // shake the interleaving
                    }
                }
            });
        }
    });

    let aborted = {
        let stats = stack.abort_stats();
        (stats.push_aborts + stats.pop_aborts) as usize
    };
    (recorder.finish(), aborted)
}

fn main() {
    let spec = StackSpec::new(CAPACITY);
    let mut total_aborts = 0;
    for round in 0..ROUNDS {
        let (history, aborted) = record_round(round);
        total_aborts += aborted;
        let verdict = check_linearizable(&spec, &history);
        assert!(
            verdict.is_linearizable(),
            "round {round}: history not linearizable:\n{history}"
        );
    }
    println!(
        "checked {ROUNDS} recorded concurrent rounds ({} ops each): all linearizable",
        THREADS * OPS_PER_THREAD
    );
    println!("rounds contained {total_aborts} aborted (⊥) operations, all verified effect-free");

    // The negative control: a forged history the checker must reject —
    // a pop returning a value that was never pushed.
    let mut forged: History<SpecStackOp, SpecStackResp> = History::new();
    forged.invoke(0, SpecStackOp::Push(1));
    forged.ret(0, SpecStackResp::Pushed);
    forged.invoke(1, SpecStackOp::Pop);
    forged.ret(1, SpecStackResp::Popped(99));
    assert!(!check_linearizable(&spec, &forged).is_linearizable());
    println!("forged history correctly rejected");
}
