//! A LIFO work pool on the contention-sensitive stack.
//!
//! The scenario the paper's introduction motivates: a shared object
//! accessed mostly without contention (workers pop jobs at their own
//! pace, the submitter pushes in bursts), where paying a lock on
//! every access would be waste — but starvation of a worker is
//! unacceptable. `IndirectStack` lifts arbitrary payloads (here,
//! boxed job descriptions) over the register stack via a slab of
//! 32-bit handles.
//!
//! Run with: `cargo run --example job_scheduler`

use std::sync::atomic::{AtomicU64, Ordering};

use cso::memory::registry::ProcRegistry;
use cso::stack::{CsStack, IndirectStack};

/// A unit of work: summing a range (stand-in for real computation).
struct Job {
    id: usize,
    lo: u64,
    hi: u64,
}

impl Job {
    fn run(&self) -> u64 {
        (self.lo..self.hi).sum()
    }
}

const WORKERS: usize = 3;
const JOBS: usize = 1_000;

fn main() {
    // Identities: 1 submitter + WORKERS workers.
    let registry = ProcRegistry::new(1 + WORKERS);
    let pool: IndirectStack<Job, CsStack<u32>> =
        IndirectStack::new(CsStack::new(2048, 1 + WORKERS), 1 + WORKERS);

    let completed = AtomicU64::new(0);
    let checksum = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Workers pop until they have seen all jobs collectively.
        for _ in 0..WORKERS {
            let token = registry.register().expect("identity available");
            let pool = &pool;
            let completed = &completed;
            let checksum = &checksum;
            s.spawn(move || {
                let me = token.id();
                let mut done = 0u64;
                while completed.load(Ordering::Relaxed) < JOBS as u64 {
                    match pool.pop(me) {
                        Some(job) => {
                            checksum.fetch_add(job.run() ^ job.id as u64, Ordering::Relaxed);
                            completed.fetch_add(1, Ordering::Relaxed);
                            done += 1;
                        }
                        None => std::thread::yield_now(),
                    }
                }
                println!("worker p{me} executed {done} jobs");
            });
        }

        // The submitter pushes jobs in bursts.
        let token = registry.register().expect("identity available");
        let pool = &pool;
        s.spawn(move || {
            let me = token.id();
            for id in 0..JOBS {
                let mut job = Job {
                    id,
                    lo: id as u64,
                    hi: id as u64 + 100,
                };
                loop {
                    match pool.push(me, job) {
                        Ok(()) => break,
                        Err(back) => {
                            job = back; // pool full: backpressure
                            std::thread::yield_now();
                        }
                    }
                }
                if id % 97 == 0 {
                    // A burst boundary: give workers a chance.
                    std::thread::yield_now();
                }
            }
            println!("submitter p{me} queued {JOBS} jobs");
        });
    });

    assert_eq!(completed.load(Ordering::Relaxed), JOBS as u64);
    assert!(pool.is_empty(), "all jobs consumed");

    // The expected checksum, computed sequentially.
    let expected: u64 = (0..JOBS)
        .map(|id| (id as u64..id as u64 + 100).sum::<u64>() ^ id as u64)
        .sum();
    assert_eq!(
        checksum.load(Ordering::Relaxed),
        expected,
        "every job ran exactly once"
    );
    println!("all {JOBS} jobs executed exactly once (checksum verified)");
}
