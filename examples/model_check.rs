//! Driving the model checker by hand.
//!
//! Exhaustively explores every interleaving of three processes racing
//! on the Figure 1 stack, prints the schedule-space statistics, and
//! checks each terminal execution; then samples the full Figure 3
//! machine (with its CONTENTION register, FLAG/TURN booster and TAS
//! lock) under random and fair schedulers.
//!
//! Run with: `cargo run --release --example model_check`

use std::collections::BTreeMap;

use cso::explore::algos::cs_stack::{cs_stack_layout, strong_stack_factory};
use cso::explore::algos::stack::{stack_layout, weak_stack_factory};
use cso::explore::explorer::{explore_exhaustive, explore_random, ExploreConfig};
use cso::explore::fair::run_fair;
use cso::explore::invariants::check_stack_terminal;
use cso::lincheck::specs::stack::{SpecStackOp, SpecStackResp};

fn main() {
    // ------------------------------------------------------------
    // Part 1: exhaustive DFS over Figure 1 (weak ops are loop-free).
    // ------------------------------------------------------------
    let layout = stack_layout(4);
    let scripts = vec![
        vec![SpecStackOp::Push(1)],
        vec![SpecStackOp::Push(2)],
        vec![SpecStackOp::Pop],
    ];
    let mut abort_histogram: BTreeMap<usize, usize> = BTreeMap::new();
    let stats = explore_exhaustive(
        &layout.initial_mem_with(&[7]),
        &scripts,
        weak_stack_factory(layout),
        &ExploreConfig::default(),
        |terminal| {
            *abort_histogram.entry(terminal.aborted).or_insert(0) += 1;
            check_stack_terminal(4, &[7], &layout, terminal);
        },
    );
    println!("Figure 1, 3 processes (push, push, pop on [7]):");
    println!(
        "  explored {} complete schedules exhaustively",
        stats.executions
    );
    for (aborts, count) in &abort_histogram {
        println!("  {count:>7} schedules with {aborts} aborted (⊥) operation(s)");
    }
    println!("  every schedule: linearizable, aborts effect-free, memory consistent");

    // ------------------------------------------------------------
    // Part 2: Figure 3 under random schedules (its wait loops make
    // the full tree infinite).
    // ------------------------------------------------------------
    let layout3 = cs_stack_layout(8, 3);
    let scripts3 = vec![
        vec![SpecStackOp::Push(10), SpecStackOp::Pop],
        vec![SpecStackOp::Push(20)],
        vec![SpecStackOp::Pop, SpecStackOp::Push(30)],
    ];
    let config = ExploreConfig {
        max_steps_per_op: 10_000,
        max_executions: usize::MAX,
    };
    let mut fast_ops = 0u64;
    let mut slow_ops = 0u64;
    let samples = 2_000;
    let stats = explore_random(
        &layout3.initial_mem(),
        &scripts3,
        strong_stack_factory(layout3),
        &config,
        samples,
        42,
        |terminal| {
            assert_eq!(terminal.aborted, 0, "strong ops never return ⊥");
            check_stack_terminal(8, &[], &layout3.stack, terminal);
            for op in &terminal.op_steps {
                if op.steps == 6 {
                    fast_ops += 1;
                } else {
                    slow_ops += 1;
                }
            }
        },
    );
    println!("\nFigure 3, 3 processes, {samples} random schedules:");
    println!(
        "  {} executions completed (0 exceeded the step budget)",
        stats.executions
    );
    println!("  {fast_ops} ops on the 6-access fast path, {slow_ops} via the lock");
    println!("  every sampled schedule: linearizable, never ⊥, lock & flags released");

    // ------------------------------------------------------------
    // Part 3: the bounded starvation check (Lemmas 2–3 shadow).
    // ------------------------------------------------------------
    let report = run_fair::<_, _, SpecStackResp>(
        &layout3.initial_mem(),
        &scripts3,
        strong_stack_factory(layout3),
        5_000,
    );
    let terminal = report
        .terminal
        .expect("no op may starve under fair scheduling");
    println!("\nFair (round-robin) run of the same Figure 3 scripts:");
    println!(
        "  all {} operations completed; worst per-op step count: {}",
        terminal.op_steps.len(),
        report.max_op_steps
    );
    println!("model check OK");
}
