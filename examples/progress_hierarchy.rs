//! The §1.2 progress hierarchy, one object per rung.
//!
//! obstruction-free < non-blocking < starvation-free — demonstrated
//! with the workspace's three object families and the generic
//! transformations that climb the ladder.
//!
//! Run with: `cargo run --release --example progress_hierarchy`

use cso::core::ProgressCondition;
use cso::deque::{CsDeque, DequePopOutcome, End, HlmDeque};
use cso::queue::NonBlockingQueue;
use cso::stack::{CsStack, NonBlockingStack};

fn main() {
    // ------------------------------------------------------------
    // The hierarchy itself is a first-class, ordered type.
    // ------------------------------------------------------------
    for condition in ProgressCondition::ALL {
        println!("{condition}");
    }
    assert!(ProgressCondition::ObstructionFree < ProgressCondition::StarvationFree);

    // ------------------------------------------------------------
    // Rung 1 — obstruction-free: the HLM deque (paper ref [8]). Its
    // retry loop guarantees termination only in solo windows; under
    // contention, attempts abort each other. We measure the churn.
    // ------------------------------------------------------------
    assert_eq!(
        HlmDeque::<u32>::PROGRESS,
        ProgressCondition::ObstructionFree
    );
    let deque: HlmDeque<u32> = HlmDeque::new(8);
    std::thread::scope(|s| {
        for t in 0..2 {
            let deque = &deque;
            s.spawn(move || {
                let end = if t == 0 { End::Left } else { End::Right };
                for i in 0..20_000u32 {
                    deque.push(end, i);
                    deque.pop(end);
                }
            });
        }
    });
    let (attempts, aborts) = deque.as_abortable().abort_counts();
    println!(
        "\nHLM deque (obstruction-free): {attempts} attempts, {aborts} aborts \
         ({:.4}% — each abort is a retry the progress condition does not bound)",
        aborts as f64 / attempts as f64 * 100.0
    );

    // ------------------------------------------------------------
    // Rung 2 — non-blocking: Figure 2's stack and queue. Someone
    // always finishes, but a particular thread may be the one who
    // never does.
    // ------------------------------------------------------------
    assert_eq!(
        NonBlockingStack::<u32>::PROGRESS,
        ProgressCondition::NonBlocking
    );
    assert_eq!(
        NonBlockingQueue::<u32>::PROGRESS,
        ProgressCondition::NonBlocking
    );
    println!("\nFigure 2 stack/queue: non-blocking (system-wide progress).");

    // ------------------------------------------------------------
    // Rung 3 — starvation-free: Figure 3, over any of the objects —
    // including the deque, which it lifts two rungs at once.
    // ------------------------------------------------------------
    assert_eq!(CsStack::<u32>::PROGRESS, ProgressCondition::StarvationFree);
    assert_eq!(CsDeque::<u32>::PROGRESS, ProgressCondition::StarvationFree);
    let cs: CsDeque<u32> = CsDeque::new(8, 4);
    std::thread::scope(|s| {
        for proc in 0..4 {
            let cs = &cs;
            s.spawn(move || {
                let end = if proc % 2 == 0 { End::Left } else { End::Right };
                for i in 0..10_000u32 {
                    cs.push(proc, end, i);
                    if let DequePopOutcome::Popped(_) = cs.pop(proc, end.opposite()) {}
                }
            });
        }
    });
    let stats = cs.path_stats();
    println!(
        "Figure 3 deque (starvation-free): all 80000 invocations terminated \
         ({} fast-path, {} via the fair lock).",
        stats.fast, stats.locked
    );
    println!("\nhierarchy demo OK");
}
