//! Quickstart: the paper's three stacks in five minutes.
//!
//! Run with: `cargo run --example quickstart`

use cso::core::Aborted;
use cso::memory::counting::CountScope;
use cso::stack::{AbortableStack, CsStack, NonBlockingStack, PopOutcome};

fn main() {
    // ------------------------------------------------------------
    // Layer 1 — Figure 1: the abortable stack. Solo operations
    // always succeed; under contention they may return ⊥ (Aborted)
    // with no effect. Solo cost: exactly 5 shared-memory accesses.
    // ------------------------------------------------------------
    let weak: AbortableStack<u32> = AbortableStack::new(128);

    let scope = CountScope::start();
    weak.weak_push(1).expect("solo push never aborts");
    let counts = scope.take();
    println!("Figure 1  weak_push: {counts}");
    assert_eq!(counts.total(), 5);

    assert_eq!(weak.weak_pop(), Ok(PopOutcome::Popped(1)));
    assert_eq!(weak.weak_pop(), Ok(PopOutcome::Empty)); // an answer, not an abort

    // The ⊥ value is a real error type:
    let bot: Aborted = Aborted;
    println!("the bottom value renders as: {bot}");

    // ------------------------------------------------------------
    // Layer 2 — Figure 2: retry ⊥ until a definitive answer. The
    // stack becomes non-blocking (lock-free); no process identity
    // needed.
    // ------------------------------------------------------------
    let nb: NonBlockingStack<u32> = NonBlockingStack::new(128);
    nb.push(10);
    nb.push(20);
    println!(
        "Figure 2  non-blocking pops: {:?}, {:?}",
        nb.pop(),
        nb.pop()
    );

    // ------------------------------------------------------------
    // Layer 3 — Figure 3: the contention-sensitive, starvation-free
    // stack. Each thread passes its process identity (0..n). A
    // contention-free operation costs exactly 6 accesses (Theorem 1)
    // and takes no lock; contended operations fall back to a lock
    // made starvation-free by the §4.4 FLAG/TURN booster.
    // ------------------------------------------------------------
    let stack: CsStack<u32> = CsStack::new(128, 4);

    let scope = CountScope::start();
    stack.push(0, 42);
    let counts = scope.take();
    println!("Figure 3  strong_push: {counts}");
    assert_eq!(counts.total(), 6, "Theorem 1");

    // Share it across 4 threads, each with its own identity.
    std::thread::scope(|s| {
        for proc in 0..4 {
            let stack = &stack;
            s.spawn(move || {
                for i in 0..10_000u32 {
                    stack.push(proc, i);
                    stack.pop(proc);
                }
            });
        }
    });

    let stats = stack.path_stats();
    println!(
        "Figure 3  after 80k concurrent ops: {} fast-path, {} lock-path ({:.2}% locked)",
        stats.fast,
        stats.locked,
        stats.locked_fraction() * 100.0
    );
    assert_eq!(stats.total(), 80_001);
    println!("quickstart OK");
}
