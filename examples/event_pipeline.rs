//! A bounded event pipeline on the contention-sensitive queue.
//!
//! The paper's §1.1 motivating example of *non-interfering*
//! operations: a producer enqueuing and a consumer dequeuing on a
//! non-empty queue touch opposite ends and should not slow each other
//! down. The `cso-queue` design makes that literal — enqueue CASes
//! only `TAIL`, dequeue only `HEAD` — and this example measures it:
//! after millions of paired operations the weak-operation abort count
//! between the two ends is zero.
//!
//! Run with: `cargo run --release --example event_pipeline`

use cso::queue::{CsQueue, DequeueOutcome, EnqueueOutcome};

const EVENTS: u32 = 200_000;

fn main() {
    // Capacity must be a power of two; two processes: producer=0,
    // consumer=1.
    let queue: CsQueue<u32> = CsQueue::new(1024, 2);

    // Pre-fill a little so the consumer starts warm.
    for v in 0..16 {
        assert_eq!(queue.enqueue(0, v), EnqueueOutcome::Enqueued);
    }

    std::thread::scope(|s| {
        let producer = {
            let queue = &queue;
            s.spawn(move || {
                let mut backpressure = 0u64;
                for event in 16..EVENTS {
                    loop {
                        match queue.enqueue(0, event) {
                            EnqueueOutcome::Enqueued => break,
                            EnqueueOutcome::Full => {
                                backpressure += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
                backpressure
            })
        };

        let consumer = {
            let queue = &queue;
            s.spawn(move || {
                let mut next_expected = 0u32;
                let mut idle = 0u64;
                while next_expected < EVENTS {
                    match queue.dequeue(1) {
                        DequeueOutcome::Dequeued(event) => {
                            // FIFO end to end: events arrive in order.
                            assert_eq!(event, next_expected, "pipeline must preserve order");
                            next_expected += 1;
                        }
                        DequeueOutcome::Empty => {
                            idle += 1;
                            std::thread::yield_now();
                        }
                    }
                }
                idle
            })
        };

        let backpressure = producer.join().unwrap();
        let idle = consumer.join().unwrap();
        println!("pipeline moved {EVENTS} events in order");
        println!("producer hit Full (backpressure) {backpressure} times");
        println!("consumer hit Empty (idle) {idle} times");
    });

    // The non-interference ledger: with one producer and one consumer,
    // no weak operation ever aborted — opposite ends never conflict.
    let aborts = queue.abort_stats();
    println!(
        "weak-op aborts: enqueue {} / dequeue {} (must both be 0)",
        aborts.enq_aborts, aborts.deq_aborts
    );
    assert_eq!(aborts.enq_aborts + aborts.deq_aborts, 0);

    let paths = queue.path_stats();
    println!(
        "lock path taken by {} of {} operations ({:.3}%)",
        paths.locked,
        paths.total(),
        paths.locked_fraction() * 100.0
    );
    println!("event pipeline OK");
}
